//! The sweep executor: a pool of scoped worker threads pulling jobs from a
//! shared atomic queue, with artifact sharing and checkpoint restore.
//!
//! Workers claim the next job index with a single `fetch_add` — the classic
//! shared-queue work-stealing arrangement — so a slow point (e.g. a heavily
//! compressed fabric) never idles the rest of the pool the way per-worker
//! chunking would. Every worker returns `(index, record)` pairs; the
//! aggregator writes them back into an index-addressed table, which makes
//! the final ordering (and therefore the CSV/JSON output) byte-identical
//! for any worker count.

use crate::cache::ArtifactCache;
use crate::checkpoint::{job_fingerprint, read_checkpoint_rows, Checkpoint};
use crate::results::{csv_row, JobMetrics, JobRecord, SweepResults};
use crate::spec::{JobSpec, SpecError, SweepSpec};
use rescq_sim::{simulate_prepared, SimArtifacts};
use rescq_telemetry::{Event, Heartbeat, Recorder};
use std::collections::HashMap;
use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// When the worker pool reports periodic progress to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// Report only when stderr is a terminal (the default; long sweeps in a
    /// terminal get a heartbeat, piped/CI runs stay clean).
    #[default]
    Auto,
    /// Never report (`sim sweep --quiet`).
    Off,
    /// Always report, terminal or not (useful under `tee`/log capture).
    Always,
}

/// A deterministic partition of the expanded job list for cross-process
/// sharding: shard `index` of `count` runs exactly the jobs whose global
/// job index `i` satisfies `i % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI's `i/n` spelling (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Returns a message when the syntax is not `i/n` or `i >= n`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard `{s}` (expected i/n, e.g. 0/4)"))?;
        let index: usize = i.parse().map_err(|_| format!("bad shard index in `{s}`"))?;
        let count: usize = n.parse().map_err(|_| format!("bad shard count in `{s}`"))?;
        if count == 0 || index >= count {
            return Err(format!("shard index {index} outside 0..{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Whether global job index `i` belongs to this shard.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Execution options of one sweep run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Checkpoint file for resumable execution.
    pub checkpoint: Option<PathBuf>,
    /// Progress reporting policy.
    pub progress: ProgressMode,
    /// Run only this shard of the job list (cross-process sharding).
    pub shard: Option<Shard>,
    /// Directory for the content-addressed on-disk layout cache: expensive
    /// compressed layouts persist here across sweep invocations (entries
    /// are validated on load and silently rebuilt on any mismatch).
    pub layout_cache_dir: Option<PathBuf>,
}

impl RunOptions {
    /// Options with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        RunOptions {
            threads,
            ..RunOptions::default()
        }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Harness-level failure (spec or checkpoint I/O). Job-level simulation
/// failures are recorded per job, not raised — one diverging point must not
/// discard a thousand completed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The spec failed validation.
    Spec(SpecError),
    /// The checkpoint file could not be opened.
    Io(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Spec(e) => write!(f, "{e}"),
            HarnessError::Io(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<SpecError> for HarnessError {
    fn from(e: SpecError) -> Self {
        HarnessError::Spec(e)
    }
}

/// Runs one job end to end: resolve artifacts from the cache, restore from
/// the checkpoint if possible, otherwise simulate and checkpoint.
fn run_job(
    job: &JobSpec,
    spec: &SweepSpec,
    cache: &ArtifactCache,
    checkpoint: Option<&Checkpoint>,
) -> JobRecord {
    let (circuit, dag) = match cache.circuit(&job.workload, spec.circuit_seed) {
        Ok(pair) => pair,
        Err(e) => {
            return JobRecord {
                job: job.clone(),
                outcome: Err(e),
                resumed: false,
            }
        }
    };
    let fingerprint = job_fingerprint(job, circuit.content_hash(), spec.circuit_seed);
    if let Some(metrics) = checkpoint.and_then(|c| c.lookup(fingerprint)) {
        return JobRecord {
            job: job.clone(),
            outcome: Ok(metrics.clone()),
            resumed: true,
        };
    }
    let outcome = cache
        .layout(circuit.num_qubits(), &job.config)
        .and_then(|(layout, graph)| {
            let artifacts = SimArtifacts::assemble(circuit, dag, layout, graph);
            simulate_prepared(&artifacts, &job.config).map_err(|e| e.to_string())
        })
        .map(|report| JobMetrics::from_report(&report));
    if let (Some(ckpt), Ok(metrics)) = (checkpoint, &outcome) {
        ckpt.record(fingerprint, &csv_row(job, metrics));
    }
    JobRecord {
        job: job.clone(),
        outcome,
        resumed: false,
    }
}

/// Executes a sweep spec on a worker pool with shared artifact caching.
///
/// Results come back in deterministic job order regardless of
/// `opts.threads`; see the crate docs for the determinism contract.
///
/// # Errors
///
/// Returns [`HarnessError`] for spec validation or checkpoint-open
/// failures. Individual job failures are recorded in the returned
/// [`SweepResults`] (check [`SweepResults::first_error`]).
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions) -> Result<SweepResults, HarnessError> {
    spec.validate()?;
    let started = Instant::now();
    let mut jobs = spec.expand();
    if let Some(shard) = opts.shard {
        // Deterministic index partition: every shard sees the same global
        // expansion, so merged shard outputs reproduce an unsharded run.
        jobs.retain(|j| shard.owns(j.index));
    }
    let cache = match &opts.layout_cache_dir {
        Some(dir) => ArtifactCache::with_layout_dir(dir.clone()),
        None => ArtifactCache::new(),
    };
    let checkpoint = match &opts.checkpoint {
        Some(path) => Some(Checkpoint::open(path).map_err(HarnessError::Io)?),
        None => None,
    };
    let checkpoint = checkpoint.as_ref();
    let threads = opts.resolved_threads().clamp(1, jobs.len().max(1));
    // Progress flows through the telemetry `Recorder` trait: workers time
    // each job and emit `Event::JobDone`; the `Heartbeat` recorder turns
    // that stream into throttled stderr lines. Any other recorder (a ring
    // buffer, a test stub) could observe the same events unchanged.
    let heartbeat = match opts.progress {
        ProgressMode::Off => None,
        ProgressMode::Always => Some(Heartbeat::new(jobs.len())),
        ProgressMode::Auto => std::io::stderr()
            .is_terminal()
            .then(|| Heartbeat::new(jobs.len())),
    };
    let recorder: Option<&dyn Recorder> = heartbeat.as_ref().map(|h| h as &dyn Recorder);
    let total = jobs.len() as u64;
    // Runs job `i` and reports its completion (wall-clock is 0 for
    // checkpoint-restored jobs — no simulation ran).
    let run_one = |i: usize, job: &JobSpec| -> JobRecord {
        let t0 = Instant::now();
        let record = run_job(job, spec, &cache, checkpoint);
        if let Some(r) = recorder {
            r.record(Event::JobDone {
                index: i as u64,
                total,
                wall_ns: if record.resumed {
                    0
                } else {
                    t0.elapsed().as_nanos() as u64
                },
                resumed: record.resumed,
            });
        }
        record
    };

    let mut table: Vec<Option<JobRecord>> = jobs.iter().map(|_| None).collect();
    if threads <= 1 {
        for (i, (slot, job)) in table.iter_mut().zip(&jobs).enumerate() {
            *slot = Some(run_one(i, job));
        }
    } else {
        let next = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, JobRecord)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            local.push((i, run_one(i, job)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for (i, record) in collected.into_iter().flatten() {
            table[i] = Some(record);
        }
    }

    Ok(SweepResults {
        spec: spec.clone(),
        records: table
            .into_iter()
            .map(|r| r.expect("every job slot filled"))
            .collect(),
        cache: cache.stats(),
        elapsed_secs: started.elapsed().as_secs_f64(),
    })
}

/// Merges shard checkpoint files back into one deterministic result set.
///
/// Every input row's fingerprint is validated: rows sharing a fingerprint
/// across inputs must be byte-identical (shards of one spec can never
/// disagree — the simulation is deterministic), and every row must match a
/// job of `spec` (a foreign row means the wrong spec or a stale file).
/// Jobs with no row anywhere are reported as per-job errors in the result
/// (`SweepResults::first_error`), so a partial merge is visible but still
/// produces the rows it can.
///
/// # Errors
///
/// Returns [`HarnessError`] for spec validation failures, unreadable
/// inputs, conflicting duplicate fingerprints, or foreign rows.
pub fn merge_checkpoints(
    spec: &SweepSpec,
    inputs: &[PathBuf],
) -> Result<SweepResults, HarnessError> {
    spec.validate()?;
    let started = Instant::now();
    let mut merged: HashMap<u64, (String, JobMetrics)> = HashMap::new();
    for path in inputs {
        for (fp, (row, metrics)) in read_checkpoint_rows(path).map_err(HarnessError::Io)? {
            match merged.get(&fp) {
                Some((existing, _)) if *existing != row => {
                    return Err(HarnessError::Io(format!(
                        "conflicting rows for fingerprint {fp:016x} (is {} from a different spec?)",
                        path.display()
                    )));
                }
                Some(_) => {}
                None => {
                    merged.insert(fp, (row, metrics));
                }
            }
        }
    }
    let cache = ArtifactCache::new();
    let mut matched = 0usize;
    let records: Vec<JobRecord> = spec
        .expand()
        .into_iter()
        .map(|job| {
            let circuit = match cache.circuit(&job.workload, spec.circuit_seed) {
                Ok((circuit, _)) => circuit,
                Err(e) => {
                    return JobRecord {
                        job,
                        outcome: Err(e),
                        resumed: false,
                    }
                }
            };
            let fp = job_fingerprint(&job, circuit.content_hash(), spec.circuit_seed);
            match merged.get(&fp) {
                Some((_, metrics)) => {
                    matched += 1;
                    JobRecord {
                        job,
                        outcome: Ok(metrics.clone()),
                        resumed: true,
                    }
                }
                None => JobRecord {
                    job,
                    outcome: Err("missing from the merged checkpoints".into()),
                    resumed: false,
                },
            }
        })
        .collect();
    if matched != merged.len() {
        return Err(HarnessError::Io(format!(
            "{} checkpoint row(s) match no job of this spec (wrong spec file?)",
            merged.len() - matched
        )));
    }
    Ok(SweepResults {
        spec: spec.clone(),
        records,
        cache: cache.stats(),
        elapsed_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            workloads: vec!["decoder_stress_n4".into()],
            compressions: vec![0.0, 0.5],
            seeds: 2,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn sweep_completes_every_job_in_order() {
        let spec = tiny_spec();
        let results = run_sweep(&spec, &RunOptions::with_threads(2)).unwrap();
        assert_eq!(results.records.len(), 4);
        assert!(results.first_error().is_none());
        assert!(results
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.job.index == i));
        // One circuit build serves all four jobs; one layout per compression.
        assert_eq!(results.cache.circuit_builds, 1);
        assert_eq!(results.cache.layout_builds, 2);
    }

    #[test]
    fn unknown_workload_is_recorded_not_fatal() {
        let spec = SweepSpec {
            workloads: vec!["decoder_stress_n4".into(), "nope_n0".into()],
            seeds: 1,
            ..SweepSpec::default()
        };
        let results = run_sweep(&spec, &RunOptions::with_threads(1)).unwrap();
        assert_eq!(results.records.len(), 2);
        assert!(results.records[0].outcome.is_ok());
        assert!(results.records[1].outcome.is_err());
        assert!(results.first_error().unwrap().contains("nope_n0"));
    }

    #[test]
    fn shard_parsing_and_ownership() {
        let s = Shard::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.to_string(), "1/3");
        assert!(s.owns(1) && s.owns(4) && !s.owns(0) && !s.owns(2));
        assert!(Shard::parse("3/3").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("banana").is_err());
        assert!(Shard::parse("1").is_err());
    }

    #[test]
    fn sharded_runs_partition_the_job_list_deterministically() {
        let spec = tiny_spec(); // 4 jobs
        let full = run_sweep(&spec, &RunOptions::with_threads(1)).unwrap();
        let mut rows: Vec<String> = Vec::new();
        for index in 0..2 {
            let opts = RunOptions {
                threads: 1,
                shard: Some(Shard { index, count: 2 }),
                ..RunOptions::default()
            };
            let part = run_sweep(&spec, &opts).unwrap();
            assert_eq!(part.records.len(), 2);
            assert!(part.records.iter().all(|r| r.job.index % 2 == index));
            rows.extend(
                part.ok_rows()
                    .map(|(job, m)| (job.index, csv_row(job, m)))
                    .map(|(i, row)| format!("{i} {row}")),
            );
        }
        rows.sort();
        let full_rows: Vec<String> = full
            .ok_rows()
            .map(|(job, m)| format!("{} {}", job.index, csv_row(job, m)))
            .collect();
        assert_eq!(rows, full_rows, "shard union must reproduce the full run");
    }

    #[test]
    fn merge_checkpoints_reassembles_sharded_sweeps() {
        let dir = std::env::temp_dir().join("rescq_harness_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec(); // 4 jobs
        let full = run_sweep(&spec, &RunOptions::with_threads(1)).unwrap();

        let mut paths = Vec::new();
        for index in 0..2 {
            let path = dir.join(format!("shard{index}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let opts = RunOptions {
                threads: 1,
                checkpoint: Some(path.clone()),
                shard: Some(Shard { index, count: 2 }),
                ..RunOptions::default()
            };
            run_sweep(&spec, &opts).unwrap();
            paths.push(path);
        }

        let merged = merge_checkpoints(&spec, &paths).unwrap();
        assert_eq!(merged.records.len(), 4);
        assert!(merged.first_error().is_none());
        assert_eq!(merged.resumed_count(), 4);
        assert_eq!(
            merged.to_csv(),
            full.to_csv(),
            "merged CSV must be byte-identical to the unsharded run"
        );
        // JSON carries wall-clock and cache stats; compare only the
        // deterministic lines (summaries and rows).
        let deterministic = |j: String| {
            j.lines()
                .filter(|l| !l.contains("\"cache\"") && !l.contains("\"elapsed_secs\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            deterministic(merged.to_json()),
            deterministic(full.to_json())
        );

        // A missing shard surfaces as per-job errors, not a hard failure.
        let partial = merge_checkpoints(&spec, &paths[..1]).unwrap();
        assert_eq!(partial.resumed_count(), 2);
        assert!(partial.first_error().unwrap().contains("missing"));

        // Foreign rows (a different spec's checkpoint) are rejected.
        let moved = SweepSpec {
            base_seed: 777,
            ..spec.clone()
        };
        let e = merge_checkpoints(&moved, &paths).unwrap_err();
        assert!(e.to_string().contains("no job"), "{e}");
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn checkpoint_resume_skips_completed_jobs() {
        let dir = std::env::temp_dir().join("rescq_harness_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let spec = tiny_spec();
        let opts = RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        };
        let first = run_sweep(&spec, &opts).unwrap();
        assert_eq!(first.resumed_count(), 0);
        let second = run_sweep(&spec, &opts).unwrap();
        assert_eq!(second.resumed_count(), 4, "all jobs restore from disk");
        assert_eq!(first.to_csv(), second.to_csv(), "restored rows identical");

        // A different base seed shares no fingerprints with the checkpoint.
        let moved = SweepSpec {
            base_seed: 100,
            ..spec
        };
        let third = run_sweep(&moved, &opts).unwrap();
        assert_eq!(third.resumed_count(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
