//! The cycle-accurate symbolic execution engine.
//!
//! [`simulate`] builds the fabric from the configuration (layout +
//! compression), then dispatches to the realtime RESCQ engine
//! ([`realtime`]) or the layer-synchronized static baseline engine
//! ([`static_sched`]). Time is tracked in *measurement rounds*; one
//! lattice-surgery cycle is `d` rounds (§5.2.1).

mod realtime;
mod shard;
mod static_sched;

use crate::artifacts::SimArtifacts;
use crate::fabric::Fabric;
use crate::metrics::ExecutionReport;
use crate::SimConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rescq_circuit::{Circuit, QubitId};
use rescq_core::SchedulerKind;
use rescq_telemetry::Recorder;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The circuit is empty or the layout could not host it.
    BadInput(String),
    /// A data qubit has no adjacent ancilla (over-compressed layout).
    NoAncillaForQubit(QubitId),
    /// No event is pending but gates remain — a scheduling deadlock.
    Deadlock {
        /// Round at which progress stopped.
        round: u64,
        /// Human-readable context.
        detail: String,
    },
    /// The watchdog cycle limit was exceeded.
    WatchdogExceeded {
        /// Cycles executed when the watchdog fired.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadInput(m) => write!(f, "bad input: {m}"),
            SimError::NoAncillaForQubit(q) => {
                write!(f, "data qubit {q} has no adjacent ancilla")
            }
            SimError::Deadlock { round, detail } => {
                write!(f, "scheduling deadlock at round {round}: {detail}")
            }
            SimError::WatchdogExceeded { cycles } => {
                write!(f, "watchdog exceeded after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A deterministic min-heap event queue keyed by `(round, insertion order)`.
///
/// Payload slots are recycled through a free list, so a long run's queue
/// memory plateaus at the pending-event high-water mark instead of growing
/// one slot per event ever pushed — part of the zero-allocation
/// steady-state contract of the cycle loop. The heap key carries the slot
/// alongside `(round, seq)`; `seq` is globally unique, so the slot index
/// never participates in ordering.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    payloads: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
}

impl<E> EventQueue<E> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `ev` at `round`. Ties break by insertion order, keeping the
    /// simulation deterministic.
    pub(crate) fn push(&mut self, round: u64, ev: E) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.payloads.push(None);
                (self.payloads.len() - 1) as u32
            }
        };
        self.payloads[slot as usize] = Some(ev);
        self.seq += 1;
        self.heap.push(Reverse((round, self.seq, slot)));
    }

    /// Pops the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(u64, E)> {
        loop {
            let Reverse((round, _, slot)) = self.heap.pop()?;
            if let Some(ev) = self.payloads[slot as usize].take() {
                self.free.push(slot);
                return Some((round, ev));
            }
        }
    }

    /// The round of the earliest pending event.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn peek_round(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((r, _, _))| *r)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Runs the engines over a pre-built artifact bundle (the shared path; the
/// bundle's pieces are only read, never mutated). `recorder` attaches a
/// structured trace sink: the realtime engine streams its full taxonomy;
/// the static baselines (no phase loop) stream ledger claims/wait edges
/// and ancilla occupancy so utilization analytics compare across
/// schedulers.
pub(crate) fn run_with_artifacts(
    artifacts: &SimArtifacts,
    config: &SimConfig,
    recorder: Option<&dyn Recorder>,
) -> Result<ExecutionReport, SimError> {
    run_with_artifacts_probed(artifacts, config, recorder, None)
}

/// [`run_with_artifacts`] with an optional per-cycle probe (realtime engine
/// only; see [`simulate_with_cycle_probe`]).
pub(crate) fn run_with_artifacts_probed(
    artifacts: &SimArtifacts,
    config: &SimConfig,
    recorder: Option<&dyn Recorder>,
    cycle_probe: Option<&(dyn Fn(u64) + Sync)>,
) -> Result<ExecutionReport, SimError> {
    let fabric = Fabric::new(
        artifacts.layout.clone(),
        artifacts.graph.clone(),
        config.rounds_per_cycle(),
    );
    // Separate RNG stream per (seed, scheduler) so schedulers see the same
    // seed namespace but their own draw sequences don't alias.
    let rng = ChaCha8Rng::seed_from_u64(config.seed);
    let circuit = &artifacts.circuit;
    let dag = artifacts.dag.clone();
    match config.scheduler {
        SchedulerKind::Rescq => {
            realtime::run_realtime(circuit, dag, config, fabric, rng, recorder, cycle_probe)
        }
        kind => static_sched::run_static(circuit, dag, config, kind, fabric, rng, recorder),
    }
}

/// [`simulate`] with a hook invoked once per completed fabric cycle (the
/// cycle index is passed). The probe observes only — the schedule is
/// byte-identical with or without one. Realtime scheduler only; static
/// baselines ignore it.
///
/// This exists for the allocation-regression harness (`tests/alloc_count.rs`
/// reads a counting global allocator from inside the probe to pin "zero
/// heap allocations per steady-state cycle"); it is not a stable API.
///
/// # Errors
///
/// Same as [`simulate`].
#[doc(hidden)]
pub fn simulate_with_cycle_probe(
    circuit: &Circuit,
    config: &SimConfig,
    probe: &(dyn Fn(u64) + Sync),
) -> Result<ExecutionReport, SimError> {
    let artifacts = SimArtifacts::prepare(Arc::new(circuit.clone()), config)?;
    run_with_artifacts_probed(&artifacts, config, None, Some(probe))
}

/// Runs one seeded simulation of `circuit` under `config` and returns its
/// [`ExecutionReport`].
///
/// The run is fully deterministic: the same circuit, configuration and seed
/// always produce the same report.
///
/// # Errors
///
/// Returns [`SimError`] on empty circuits, unroutable layouts, scheduling
/// deadlocks, or watchdog expiry.
///
/// # Example
///
/// ```
/// use rescq_circuit::{Angle, Circuit};
/// use rescq_sim::{simulate, SimConfig};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).rz(1, Angle::radians(0.4));
/// let report = simulate(&c, &SimConfig::default()).unwrap();
/// assert!(report.total_cycles() > 0.0);
/// ```
pub fn simulate(circuit: &Circuit, config: &SimConfig) -> Result<ExecutionReport, SimError> {
    simulate_traced(circuit, config, None)
}

/// [`simulate`] with an optional structured-trace [`Recorder`] attached.
///
/// The recorder only *observes*: the schedule — and every schedule-derived
/// field of the report — is byte-identical with or without one, at any
/// thread count (property-tested in `tests/telemetry.rs`). Tracing adds
/// per-phase wall-clock to [`ExecutionReport::phase_nanos`] and streams
/// cycle-scoped events (phases, ledger arbitration and wait edges,
/// decoder windows, route plans, stalls, ancilla occupancy) into the
/// recorder.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_traced(
    circuit: &Circuit,
    config: &SimConfig,
    recorder: Option<&dyn Recorder>,
) -> Result<ExecutionReport, SimError> {
    let artifacts = SimArtifacts::prepare(Arc::new(circuit.clone()), config)?;
    run_with_artifacts(&artifacts, config, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(10, "b");
        q.push(5, "a");
        q.push(10, "c");
        assert_eq!(q.peek_round(), Some(5));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new(0);
        let err = simulate(&c, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadInput(_)));
    }
}
