//! The sweep progress heartbeat, expressed as a [`Recorder`].
//!
//! The harness worker pool used to keep ad-hoc heartbeat state; it now
//! emits [`Event::JobDone`] into whatever recorder it was handed, and
//! [`Heartbeat`] is the recorder that turns those events into the
//! throttled stderr lines. Sweep progress, per-job wall-clock and
//! cache-hit (resume) counts all flow through this one code path — and
//! any other recorder (a [`RingRecorder`](crate::RingRecorder), a test
//! stub) can observe the same stream.

use crate::{Event, Recorder};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Formats one progress heartbeat line.
///
/// `resumed` of the `done` jobs were checkpoint restores that took
/// ~zero wall-clock; the ETA rate is estimated over the *fresh* jobs
/// only, otherwise a resume-dominated sweep reports a wildly
/// optimistic ETA for the actually-running remainder. With no fresh
/// completions yet there is no rate, hence no ETA.
pub fn progress_line(done: usize, resumed: usize, total: usize, elapsed_secs: f64) -> String {
    let fresh = done.saturating_sub(resumed);
    let eta = if fresh > 0 && done < total {
        let rate = elapsed_secs / fresh as f64;
        format!(", ETA {:.0}s", rate * (total - done) as f64)
    } else {
        String::new()
    };
    format!("sweep: {done}/{total} jobs done, {elapsed_secs:.1}s elapsed{eta}")
}

/// A [`Recorder`] that consumes [`Event::JobDone`] and prints throttled
/// progress lines to stderr: `jobs done/total, elapsed, ETA`, at most
/// one line per interval (the final job always reports). All other
/// events are ignored, so a `Heartbeat` can sit directly on an engine
/// trace stream too.
#[derive(Debug)]
pub struct Heartbeat {
    total: usize,
    done: AtomicUsize,
    resumed: AtomicUsize,
    total_wall_ns: AtomicU64,
    started: Instant,
    last_print: Mutex<Instant>,
    interval: Duration,
}

impl Heartbeat {
    /// The default reporting throttle.
    pub const INTERVAL: Duration = Duration::from_secs(2);

    /// A heartbeat over `total` jobs with the default throttle.
    pub fn new(total: usize) -> Self {
        Self::with_interval(total, Self::INTERVAL)
    }

    /// A heartbeat with an explicit throttle (tests use
    /// `Duration::ZERO`).
    pub fn with_interval(total: usize, interval: Duration) -> Self {
        let now = Instant::now();
        Heartbeat {
            total,
            done: AtomicUsize::new(0),
            resumed: AtomicUsize::new(0),
            total_wall_ns: AtomicU64::new(0),
            started: now,
            last_print: Mutex::new(now),
            interval,
        }
    }

    /// Jobs completed so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Jobs restored from a checkpoint (cache hits) so far.
    pub fn resumed(&self) -> usize {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Total per-job wall-clock nanoseconds accumulated so far (sums
    /// worker time, so it exceeds elapsed time on multi-thread pools).
    pub fn total_wall_ns(&self) -> u64 {
        self.total_wall_ns.load(Ordering::Relaxed)
    }

    /// Consumes one completion; returns the heartbeat line when the
    /// throttle says it is due.
    fn on_job_done(&self, wall_ns: u64, resumed: bool) -> Option<String> {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if resumed {
            self.resumed.fetch_add(1, Ordering::Relaxed);
        }
        self.total_wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
        let now = Instant::now();
        {
            let mut last = self.last_print.lock().expect("heartbeat lock poisoned");
            if done != self.total && now.duration_since(*last) < self.interval {
                return None;
            }
            *last = now;
        }
        Some(progress_line(
            done,
            self.resumed(),
            self.total,
            self.started.elapsed().as_secs_f64(),
        ))
    }
}

impl Recorder for Heartbeat {
    fn record(&self, ev: Event) {
        if let Event::JobDone {
            wall_ns, resumed, ..
        } = ev
        {
            if let Some(line) = self.on_job_done(wall_ns, resumed) {
                eprintln!("{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_line_reports_counts_and_eta() {
        let line = progress_line(4, 0, 16, 8.0);
        assert!(line.contains("4/16 jobs"), "{line}");
        assert!(line.contains("8.0s elapsed"), "{line}");
        assert!(line.contains("ETA 24s"), "{line}");
        // Final line has no ETA.
        assert!(!progress_line(16, 0, 16, 32.0).contains("ETA"));
    }

    #[test]
    fn eta_excludes_resumed_jobs_from_the_rate() {
        // 4 done but 3 were instant checkpoint restores: the 8s of
        // wall-clock bought ONE fresh job, so 12 remaining jobs cost
        // ~96s — not the 24s the naive done-based rate claims.
        let line = progress_line(4, 3, 16, 8.0);
        assert!(line.contains("ETA 96s"), "{line}");
        // All completions resumed so far: no rate, no ETA.
        assert!(!progress_line(4, 4, 16, 8.0).contains("ETA"));
    }

    #[test]
    fn heartbeat_counts_jobs_and_resumes() {
        let hb = Heartbeat::with_interval(3, Duration::ZERO);
        hb.record(Event::JobDone {
            index: 0,
            total: 3,
            wall_ns: 100,
            resumed: false,
        });
        hb.record(Event::JobDone {
            index: 1,
            total: 3,
            wall_ns: 0,
            resumed: true,
        });
        // Non-JobDone events are ignored.
        hb.record(Event::PhaseSpan {
            phase: crate::Phase::Commit,
            round: 1,
            dur_ns: 5,
        });
        assert_eq!(hb.done(), 2);
        assert_eq!(hb.resumed(), 1);
        assert_eq!(hb.total_wall_ns(), 100);
        let line = hb.on_job_done(50, false).expect("final job reports");
        assert!(line.starts_with("sweep: 3/3 jobs done"), "{line}");
    }

    #[test]
    fn throttle_suppresses_intermediate_lines() {
        let hb = Heartbeat::with_interval(10, Duration::from_secs(3600));
        // Far from the interval: only the final completion reports.
        for _ in 0..9 {
            assert!(hb.on_job_done(1, false).is_none());
        }
        assert!(hb.on_job_done(1, false).is_some());
    }
}
