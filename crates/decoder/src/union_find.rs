//! The real union-find syndrome decoder: seeded error channel → bit-packed
//! syndrome → DSU cluster growth → peeling → Pauli frame.
//!
//! Unlike the latency-model decoders, decode cost here is *emergent*: every
//! window samples a fresh error configuration on the tile's detector graph
//! at physical error rate `p`, and the reported latency is derived from the
//! work the decode actually performed (syndrome-word scans, cluster-growth
//! half-steps, peeled erasure edges). Error rate and code distance thereby
//! set decode latency through the decoder's own dynamics instead of through
//! an assumed throughput curve.
//!
//! Everything is deterministic: the error stream of window `w` on tile `t`
//! is a pure function of `(channel seed, t, w)`, and windows are submitted
//! by the engines in schedule order, which is itself bit-identical for any
//! engine thread count.

use crate::dsu::ClusterDsu;
use crate::graph::DetectorGraph;
use crate::pauli_frame::PauliFrame;
use crate::syndrome::SyndromeBits;
use crate::{DecoderConfig, DecoderModel};
use std::collections::BTreeMap;

/// The seeded physical error channel a union-find decoder samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorChannel {
    /// Per-edge flip probability per window (data-qubit and measurement
    /// errors alike — the phenomenological model).
    pub error_rate: f64,
    /// Base seed of the channel. Window streams are derived from
    /// `(seed, tile, window index)`, so the channel is independent of the
    /// scheduler's RNG and of engine threading.
    pub seed: u64,
}

impl Default for ErrorChannel {
    fn default() -> Self {
        ErrorChannel {
            error_rate: 1e-3,
            seed: 0xD6C0DE,
        }
    }
}

impl ErrorChannel {
    /// A channel at rate `p` seeded with `seed`.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        ErrorChannel { error_rate, seed }
    }
}

/// Work and outcome accounting of decode activity, accumulated by the
/// runtime into [`DecoderStats`](crate::DecoderStats). Latency-model
/// decoders report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeWork {
    /// Defects (flipped detectors) observed.
    pub defects: u64,
    /// Cluster-growth half-steps performed.
    pub growth_steps: u64,
    /// Cluster merges (DSU unions of distinct clusters).
    pub merges: u64,
    /// Erasure edges peeled into the correction.
    pub peeled_edges: u64,
    /// Windows whose residual (error ⊕ correction) crossed the logical cut.
    pub logical_failures: u64,
    /// Abstract work units the latency derivation charged.
    pub work_units: u64,
}

impl DecodeWork {
    /// Accumulates another window's work into this total.
    pub fn add(&mut self, other: &DecodeWork) {
        self.defects += other.defects;
        self.growth_steps += other.growth_steps;
        self.merges += other.merges;
        self.peeled_edges += other.peeled_edges;
        self.logical_failures += other.logical_failures;
        self.work_units += other.work_units;
    }
}

/// The full result of decoding one sampled window.
#[derive(Debug, Clone)]
pub struct DecodeOutcome {
    /// The correction chain the decoder produced (edge address space).
    pub correction: SyndromeBits,
    /// Defects in the observed syndrome.
    pub defects: u32,
    /// Cluster-growth half-steps performed.
    pub growth_steps: u64,
    /// DSU merges of distinct clusters during growth.
    pub merges: u64,
    /// Erasure edges peeled into the correction.
    pub peeled_edges: u64,
    /// Correction edges incident to a virtual boundary vertex (a "boundary
    /// peel": parity was absorbed by the code boundary).
    pub boundary_peels: u64,
    /// Work units charged for latency purposes.
    pub work_units: u64,
}

/// SplitMix64: the decoder's own tiny deterministic PRNG, so sampling the
/// channel never touches (or depends on) the scheduler's RNG stream.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The per-window stream seed: a SplitMix64 finalizer over channel seed,
/// tile and window index.
fn window_seed(channel: u64, tile: u32, window: u64) -> u64 {
    let mut z = channel
        ^ (tile as u64).wrapping_mul(0xA24BAED4963EE407)
        ^ window.wrapping_mul(0x9FB21C651E98DF25);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples an iid error configuration over `graph`'s edges at rate `p`
/// from the deterministic stream `seed`.
pub fn sample_error(graph: &DetectorGraph, p: f64, seed: u64) -> SyndromeBits {
    let mut error = SyndromeBits::new(graph.num_edges());
    if p <= 0.0 {
        return error;
    }
    let mut rng = SplitMix64::new(seed);
    // Saturating f64→u64 cast: p ≥ 1 flips every edge.
    let threshold = (p * 18_446_744_073_709_551_616.0) as u64;
    for e in 0..graph.num_edges() {
        let draw = rng.next_u64();
        if p >= 1.0 || draw < threshold {
            error.set(e);
        }
    }
    error
}

/// Decodes the syndrome of `error` on `graph` with union-find cluster
/// growth and peeling. Pure and deterministic: the same `(graph, error)`
/// always yields the same correction and work counts.
///
/// The produced correction always reproduces the observed syndrome
/// (`graph.syndrome_of(correction) == graph.syndrome_of(error)`); whether
/// the residual crosses the logical cut is the caller's question (see
/// [`DetectorGraph::crosses_logical_cut`]).
pub fn decode_chain(graph: &DetectorGraph, error: &SyndromeBits) -> DecodeOutcome {
    let syndrome = graph.syndrome_of(error);
    decode_syndrome(graph, &syndrome)
}

/// Decodes an explicit syndrome on `graph` (see [`decode_chain`]).
pub fn decode_syndrome(graph: &DetectorGraph, syndrome: &SyndromeBits) -> DecodeOutcome {
    debug_assert_eq!(syndrome.len(), graph.num_detectors());
    let n = graph.num_nodes();
    let mut dsu = ClusterDsu::new(n);
    dsu.set_boundary(graph.top());
    dsu.set_boundary(graph.bottom());
    let defects: Vec<u32> = syndrome.iter_ones().collect();
    for &v in &defects {
        dsu.flip_parity(v);
    }

    // Growth, smallest cluster first (the Delfosse–Nickerson rule): each
    // iteration picks the smallest still-active cluster (odd parity, no
    // boundary contact; ties broken by root id, so growth is fully
    // deterministic) and grows every edge on its boundary by one
    // half-step. Fully grown edges merge their endpoint clusters. Growing
    // one cluster at a time keeps erasures tight — a cluster that reaches
    // even parity or a boundary stops before flooding its neighborhood,
    // which is what makes peeled corrections track minimum-weight ones on
    // low-weight errors.
    //
    // Terminates: an active cluster always has an incident not-fully-grown
    // edge (a cluster closed under full-support adjacency spans the whole
    // connected graph, boundaries included, and boundary contact
    // deactivates it), so every iteration raises some edge's support and
    // total support is bounded by `2·edges`.
    let mut support = vec![0u8; graph.num_edges() as usize];
    let mut growth_steps = 0u64;
    let mut merges = 0u64;
    let mut to_union: Vec<[u32; 2]> = Vec::new();
    loop {
        let mut smallest: Option<(u32, u32)> = None;
        for &v in &defects {
            if dsu.cluster_active(v) {
                let root = dsu.find(v);
                let key = (dsu.cluster_size(root), root);
                if smallest.is_none_or(|best| key < best) {
                    smallest = Some(key);
                }
            }
        }
        let Some((_, root)) = smallest else { break };
        to_union.clear();
        for e in 0..graph.num_edges() {
            if support[e as usize] >= 2 {
                continue;
            }
            let [a, b] = graph.endpoints(e);
            if dsu.find(a) != root && dsu.find(b) != root {
                continue;
            }
            support[e as usize] += 1;
            growth_steps += 1;
            if support[e as usize] >= 2 {
                to_union.push([a, b]);
            }
        }
        for &[a, b] in &to_union {
            if dsu.union(a, b).is_some() {
                merges += 1;
            }
        }
    }

    // Peeling: build a spanning forest of the erasure (fully grown edges),
    // rooting trees at the boundary vertices first so clusters that
    // touched a boundary peel their parity into it. Then walk vertices in
    // reverse discovery order, moving each defect mark up its tree edge.
    let mut parent_edge = vec![u32::MAX; n as usize];
    let mut visited = vec![false; n as usize];
    let mut order: Vec<u32> = Vec::new();
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut erasure_visits = 0u64;
    let roots = [graph.top(), graph.bottom()];
    let starts = roots.iter().copied().chain(0..graph.num_detectors());
    for start in starts {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            erasure_visits += 1;
            for &e in graph.incident(v) {
                if support[e as usize] < 2 {
                    continue;
                }
                let [a, b] = graph.endpoints(e);
                let w = if a == v { b } else { a };
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parent_edge[w as usize] = e;
                    order.push(w);
                    queue.push_back(w);
                }
            }
        }
    }
    let mut correction = SyndromeBits::new(graph.num_edges());
    let mut marks = syndrome.clone();
    let mut peeled_edges = 0u64;
    let mut boundary_peels = 0u64;
    for &v in order.iter().rev() {
        if graph.is_boundary(v) || !marks.get(v) {
            continue;
        }
        let e = parent_edge[v as usize];
        debug_assert_ne!(e, u32::MAX, "defect {v} outside the erasure forest");
        correction.set(e);
        peeled_edges += 1;
        marks.clear(v);
        let [a, b] = graph.endpoints(e);
        let u = if a == v { b } else { a };
        if graph.is_boundary(u) {
            boundary_peels += 1;
        } else {
            marks.toggle(u);
        }
    }
    debug_assert_eq!(
        marks.popcount(),
        0,
        "peeling must consume every defect (clusters end even or boundary-attached)"
    );
    debug_assert_eq!(
        graph.syndrome_of(&correction),
        *syndrome,
        "correction must reproduce the observed syndrome"
    );

    // The latency work model: unpack the packed syndrome words
    // (O(words) + O(popcount)), then the growth and peeling work.
    let scan_words = syndrome.num_words() as u64;
    let defect_count = defects.len() as u64;
    let work_units = scan_words + 2 * defect_count + growth_steps + erasure_visits + peeled_edges;
    DecodeOutcome {
        correction,
        defects: defect_count as u32,
        growth_steps,
        merges,
        peeled_edges,
        boundary_peels,
        work_units,
    }
}

/// Per-tile decoder state.
#[derive(Debug)]
struct TileState {
    frame: PauliFrame,
    windows: u64,
    busy_until: u64,
}

/// A real union-find syndrome decoder over per-tile detector graphs.
///
/// Implements [`DecoderModel`]: each submitted window samples a seeded
/// error configuration at the channel's rate `p`, decodes it (DSU growth +
/// peeling), folds the correction into the tile's [`PauliFrame`], and
/// reports a latency derived from the work actually performed:
///
/// ```text
/// latency = base_latency + ceil(work_units / throughput)
/// work_units = syndrome words + 2·defects + growth half-steps
///            + erasure-forest visits + peeled edges
/// ```
///
/// Each tile is one sequential decode pipeline (windows on a busy tile
/// queue behind each other), so back-pressure emerges when the sampled
/// error rate produces more work than `throughput` clears per round.
/// Windows longer than `d` rounds decode as a stream of `≤ d`-round chunks
/// (Triage-style sliding windows).
#[derive(Debug)]
pub struct UnionFindDecoder {
    distance: u32,
    channel: ErrorChannel,
    base_latency: u64,
    throughput: f64,
    /// Detector graphs cached per chunk length (1..=d rounds).
    graphs: BTreeMap<u32, DetectorGraph>,
    tiles: BTreeMap<u32, TileState>,
    last_work: DecodeWork,
}

impl UnionFindDecoder {
    /// Builds the decoder for distance-`d` tiles fed by `channel`.
    /// `throughput`/`base_latency` come from the configuration and define
    /// the work→rounds conversion.
    pub fn new(config: &DecoderConfig, distance: u32, channel: ErrorChannel) -> Self {
        UnionFindDecoder {
            distance: distance.max(2),
            channel,
            base_latency: config.base_latency,
            throughput: config.throughput.max(1e-6),
            graphs: BTreeMap::new(),
            tiles: BTreeMap::new(),
            last_work: DecodeWork::default(),
        }
    }

    /// The channel this decoder samples.
    pub fn channel(&self) -> ErrorChannel {
        self.channel
    }

    /// The accumulated Pauli frame of `tile`, if it has decoded anything.
    pub fn frame(&self, tile: u32) -> Option<&PauliFrame> {
        self.tiles.get(&tile).map(|t| &t.frame)
    }

    /// Decodes one `rounds`-round window on `tile`, returning the work
    /// performed (streamed as `≤ d`-round chunks).
    fn decode_window(&mut self, tile: u32, rounds: u32) -> DecodeWork {
        let mut total = DecodeWork::default();
        let mut remaining = rounds.max(1);
        while remaining > 0 {
            let chunk = remaining.min(self.distance);
            remaining -= chunk;
            // Split borrows: the graph cache and tile map are disjoint.
            let graph = self
                .graphs
                .entry(chunk)
                .or_insert_with(|| DetectorGraph::new(self.distance, chunk));
            let tile_state = self.tiles.entry(tile).or_insert_with(|| TileState {
                frame: PauliFrame::new(graph),
                windows: 0,
                busy_until: 0,
            });
            let seed = window_seed(self.channel.seed, tile, tile_state.windows);
            tile_state.windows += 1;
            let error = sample_error(graph, self.channel.error_rate, seed);
            let outcome = decode_chain(graph, &error);
            tile_state.frame.absorb(graph, &outcome.correction);
            let mut residual = error;
            residual.xor_with(&outcome.correction);
            total.add(&DecodeWork {
                defects: outcome.defects as u64,
                growth_steps: outcome.growth_steps,
                merges: outcome.merges,
                peeled_edges: outcome.peeled_edges,
                logical_failures: graph.crosses_logical_cut(&residual) as u64,
                work_units: outcome.work_units,
            });
        }
        total
    }
}

impl DecoderModel for UnionFindDecoder {
    fn name(&self) -> &'static str {
        "union_find"
    }

    fn decode_ready_at(&mut self, tile: u32, rounds: u32, now: u64) -> u64 {
        let work = self.decode_window(tile, rounds);
        let latency = self.base_latency + (work.work_units as f64 / self.throughput).ceil() as u64;
        let tile_state = self.tiles.get_mut(&tile).expect("tile seen in decode");
        let ready = now.max(tile_state.busy_until) + latency;
        tile_state.busy_until = ready;
        self.last_work.add(&work);
        ready
    }

    fn take_work(&mut self) -> DecodeWork {
        std::mem::take(&mut self.last_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uf(d: u32, p: f64, seed: u64) -> UnionFindDecoder {
        let cfg = DecoderConfig {
            kind: crate::DecoderKind::UnionFind,
            ..DecoderConfig::default()
        };
        UnionFindDecoder::new(&cfg, d, ErrorChannel::new(p, seed))
    }

    #[test]
    fn zero_error_rate_decodes_to_identity() {
        let g = DetectorGraph::new(3, 2);
        let error = sample_error(&g, 0.0, 7);
        assert_eq!(error.popcount(), 0);
        let out = decode_chain(&g, &error);
        assert_eq!(out.correction.popcount(), 0);
        assert_eq!(out.defects, 0);
        assert_eq!(out.growth_steps, 0);
        // Work never reaches zero: the decoder still scans the packed
        // syndrome words.
        assert!(out.work_units > 0);
    }

    #[test]
    fn correction_always_reproduces_the_syndrome() {
        for seed in 0..50u64 {
            let g = DetectorGraph::new(5, 3);
            let error = sample_error(&g, 0.04, seed);
            let out = decode_chain(&g, &error);
            assert_eq!(
                g.syndrome_of(&out.correction),
                g.syndrome_of(&error),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_data_error_is_corrected_exactly() {
        let g = DetectorGraph::new(5, 1);
        // One internal vertical edge: two defects one edge apart. The
        // decoder must remove it with a weight-1 correction and no logical
        // residue.
        let e = g.distance() + 1; // an internal vertical edge (after d top edges)
        let mut error = SyndromeBits::new(g.num_edges());
        error.set(e);
        let out = decode_chain(&g, &error);
        let mut residual = error.clone();
        residual.xor_with(&out.correction);
        assert_eq!(g.syndrome_of(&residual).popcount(), 0);
        assert!(!g.crosses_logical_cut(&residual));
        assert_eq!(out.defects, 2);
        assert!(out.merges >= 1, "the two defect clusters must merge");
    }

    #[test]
    fn boundary_defect_peels_into_the_boundary() {
        let g = DetectorGraph::new(3, 1);
        // A top boundary edge error: a single defect adjacent to TOP. The
        // cluster grows into the boundary and peels its parity there.
        let mut error = SyndromeBits::new(g.num_edges());
        error.set(0);
        let out = decode_chain(&g, &error);
        assert_eq!(out.defects, 1);
        assert!(out.boundary_peels >= 1);
        let mut residual = error.clone();
        residual.xor_with(&out.correction);
        assert_eq!(g.syndrome_of(&residual).popcount(), 0);
        assert!(!g.crosses_logical_cut(&residual));
    }

    #[test]
    fn window_streams_are_deterministic_per_tile_and_window() {
        let mut a = uf(3, 0.02, 99);
        let mut b = uf(3, 0.02, 99);
        for (tile, rounds, now) in [(0, 3, 0), (1, 3, 0), (0, 5, 10), (2, 1, 11)] {
            assert_eq!(
                a.decode_ready_at(tile, rounds, now),
                b.decode_ready_at(tile, rounds, now)
            );
            assert_eq!(a.take_work(), b.take_work());
        }
        // A different channel seed produces a different stream somewhere.
        let mut c = uf(3, 0.5, 100);
        let mut d = uf(3, 0.5, 101);
        let differs = (0..20).any(|w| {
            c.decode_ready_at(0, 3, w * 100) != d.decode_ready_at(0, 3, w * 100)
                || c.take_work() != d.take_work()
        });
        assert!(differs, "seeds must matter at p = 0.5");
    }

    #[test]
    fn busy_tile_queues_windows_sequentially() {
        let mut m = uf(3, 0.0, 1);
        let r1 = m.decode_ready_at(0, 3, 100);
        let r2 = m.decode_ready_at(0, 3, 100);
        assert!(r2 > r1, "same tile decodes serially");
        let other = m.decode_ready_at(1, 3, 100);
        assert!(other <= r1, "tiles decode independently");
    }

    #[test]
    fn long_windows_decode_as_chunks() {
        let mut m = uf(3, 0.0, 1);
        m.decode_ready_at(0, 3, 0);
        let one = m.take_work();
        let mut m = uf(3, 0.0, 1);
        m.decode_ready_at(0, 9, 0);
        let three = m.take_work();
        assert_eq!(three.work_units, 3 * one.work_units);
    }

    #[test]
    fn pauli_frame_accumulates() {
        let mut m = uf(3, 0.2, 5);
        for w in 0..20 {
            m.decode_ready_at(7, 3, w * 1000);
        }
        let frame = m.frame(7).expect("tile 7 decoded");
        assert!(frame.total_flips() > 0, "p=0.2 must produce corrections");
        assert!(m.frame(3).is_none());
    }
}
