//! Resumable sweep checkpoints.
//!
//! Every completed job appends one line — `<fingerprint-hex> <csv-row>` —
//! to the checkpoint file, flushed immediately so a killed sweep loses at
//! most in-flight jobs. On restart the file is loaded into a map keyed by
//! job fingerprint; jobs whose fingerprint is present are restored instead
//! of re-run. The fingerprint covers every input that determines a job's
//! result — the workload's *content hash* (so an edited `file:` circuit
//! invalidates its old rows), the full simulation configuration and the
//! seed — making stale restores impossible without storing the whole spec.

use crate::results::{parse_csv_metrics, JobMetrics};
use crate::spec::JobSpec;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const HEADER: &str = "# rescq-harness checkpoint v1";

/// The stable fingerprint of one job given the content hash of its circuit.
///
/// Two jobs collide only if every result-determining input matches, in
/// which case their results are identical anyway (the simulation is
/// deterministic).
pub fn job_fingerprint(job: &JobSpec, circuit_hash: u64, circuit_seed: u64) -> u64 {
    let c = &job.config;
    // `engine_threads` is part of the fingerprint even though schedules are
    // thread-count invariant: the checkpoint stores the raw CSV row, whose
    // engine_threads grid column must echo the job that wrote it.
    let canonical = format!(
        "w={}|ch={circuit_hash}|cs={circuit_seed}|s={}|d={}|p={}|k={:?}|aw={}|layout={:?}|bc={:?}|comp={}|compseed={}|dec={:?}|seed={}|mc={}|tau={:?}|costs={:?}|cal={:?}|et={}|prio={}",
        job.workload,
        c.scheduler,
        c.distance,
        c.physical_error_rate.to_bits(),
        c.k_policy,
        c.activity_window,
        c.layout,
        c.block_columns,
        c.compression.to_bits(),
        c.compression_seed,
        c.decoder,
        c.seed,
        c.max_cycles,
        c.tau_model,
        c.costs,
        c.calibration,
        c.engine_threads,
        crate::spec::fmt_priority(&c.priority_classes),
    );
    rescq_circuit::fnv1a_64(canonical.bytes())
}

/// A checkpoint file: previously completed rows plus an appender for new
/// completions.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    completed: HashMap<u64, JobMetrics>,
    writer: Mutex<std::fs::File>,
}

impl Checkpoint {
    /// Opens (or creates) a checkpoint file and loads its completed rows.
    ///
    /// Malformed lines are skipped — a truncated final line from a killed
    /// run must not poison the restart.
    ///
    /// # Errors
    ///
    /// Returns an I/O error string when the file cannot be opened.
    pub fn open(path: &Path) -> Result<Self, String> {
        let mut completed = HashMap::new();
        // A kill mid-write can leave a final line without its newline; the
        // next append must not glue a fresh record onto the partial line.
        let mut needs_newline = false;
        if let Ok(text) = std::fs::read_to_string(path) {
            needs_newline = !text.is_empty() && !text.ends_with('\n');
            for (fp, (_, metrics)) in parse_checkpoint_text(&text) {
                completed.insert(fp, metrics);
            }
        }
        let fresh = !path.exists();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let ckpt = Checkpoint {
            path: path.to_path_buf(),
            completed,
            writer: Mutex::new(file),
        };
        if fresh {
            ckpt.write_line(HEADER);
        } else if needs_newline {
            ckpt.write_line("");
        }
        Ok(ckpt)
    }

    /// The metrics previously recorded for `fingerprint`, if any.
    pub fn lookup(&self, fingerprint: u64) -> Option<&JobMetrics> {
        self.completed.get(&fingerprint)
    }

    /// Number of rows loaded from disk.
    pub fn loaded(&self) -> usize {
        self.completed.len()
    }

    /// Records a completed job (flushed immediately).
    pub fn record(&self, fingerprint: u64, csv_row: &str) {
        self.write_line(&format!("{fingerprint:016x} {csv_row}"));
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("checkpoint writer poisoned");
        // Best-effort: checkpoint write failures must not kill the sweep.
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
            eprintln!(
                "warning: checkpoint write to {} failed",
                self.path.display()
            );
        }
    }
}

/// Parses checkpoint text into `fingerprint → (raw CSV row, metrics)`,
/// skipping headers and malformed lines (same tolerance as [`Checkpoint::open`]).
fn parse_checkpoint_text(text: &str) -> HashMap<u64, (String, JobMetrics)> {
    let mut rows = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let Some((fp, row)) = line.split_once(' ') else {
            continue;
        };
        let Ok(fp) = u64::from_str_radix(fp, 16) else {
            continue;
        };
        if let Ok(metrics) = parse_csv_metrics(row) {
            rows.insert(fp, (row.to_string(), metrics));
        }
    }
    rows
}

/// Reads a checkpoint file into `fingerprint → (raw CSV row, metrics)` for
/// merging ([`crate::merge_checkpoints`]). Unlike [`Checkpoint::open`] this
/// never creates or appends to the file.
///
/// # Errors
///
/// Returns a message when the file cannot be read.
pub fn read_checkpoint_rows(path: &Path) -> Result<HashMap<u64, (String, JobMetrics)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(parse_checkpoint_text(&text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    #[test]
    fn fingerprints_separate_jobs() {
        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            seeds: 2,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        let a = job_fingerprint(&jobs[0], 1234, 1);
        let b = job_fingerprint(&jobs[1], 1234, 1);
        assert_ne!(a, b, "different seeds must fingerprint differently");
        assert_eq!(a, job_fingerprint(&jobs[0], 1234, 1), "stable");
        assert_ne!(
            a,
            job_fingerprint(&jobs[0], 5678, 1),
            "circuit content is part of the fingerprint"
        );
    }

    #[test]
    fn checkpoint_round_trip() {
        let dir = std::env::temp_dir().join("rescq_harness_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);

        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            seeds: 1,
            ..SweepSpec::default()
        };
        let job = spec.expand().remove(0);
        let metrics = JobMetrics {
            seed: 1,
            total_cycles: 321.125,
            idle_fraction: 0.5,
            stall_cycles: 0.0,
            decode_windows: 3,
            peak_backlog: 1,
            injections: 9,
            injection_failures: 4,
            preps_started: 12,
            preps_cancelled: 0,
            preemptions: 0,
            preemptions_rejected: 0,
            waitgraph_peak_edges: 0,
            preemptions_class: 0,
            stall_ancilla: 0,
            stall_decoder: 0,
            stall_route: 0,
            stall_class: 0,
            cnot_p50: 0,
            cnot_p99: 0,
            decode_p99: 0,
            decode_defects: 5,
            decode_growth_steps: 40,
            decode_failures: 0,
        };
        let fp = job_fingerprint(&job, 42, 1);
        {
            let ckpt = Checkpoint::open(&path).unwrap();
            assert_eq!(ckpt.loaded(), 0);
            ckpt.record(fp, &crate::results::csv_row(&job, &metrics));
        }
        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.loaded(), 1);
        assert_eq!(reopened.lookup(fp), Some(&metrics));
        assert_eq!(reopened.lookup(fp ^ 1), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_does_not_swallow_next_record() {
        let dir = std::env::temp_dir().join("rescq_harness_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt");
        // A kill mid-write left a partial line with no trailing newline.
        std::fs::write(&path, "# header\n0000000000000abc workload,trunc").unwrap();

        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            seeds: 1,
            ..SweepSpec::default()
        };
        let job = spec.expand().remove(0);
        let metrics = JobMetrics {
            seed: 1,
            total_cycles: 10.5,
            idle_fraction: 0.25,
            stall_cycles: 0.0,
            decode_windows: 0,
            peak_backlog: 0,
            injections: 1,
            injection_failures: 0,
            preps_started: 1,
            preps_cancelled: 0,
            preemptions: 0,
            preemptions_rejected: 0,
            waitgraph_peak_edges: 0,
            preemptions_class: 0,
            stall_ancilla: 0,
            stall_decoder: 0,
            stall_route: 0,
            stall_class: 0,
            cnot_p50: 0,
            cnot_p99: 0,
            decode_p99: 0,
            decode_defects: 0,
            decode_growth_steps: 0,
            decode_failures: 0,
        };
        let fp = job_fingerprint(&job, 7, 1);
        {
            let ckpt = Checkpoint::open(&path).unwrap();
            ckpt.record(fp, &crate::results::csv_row(&job, &metrics));
        }
        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(
            reopened.lookup(fp),
            Some(&metrics),
            "the record appended after a truncated line must survive"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_skips_old_schema_rows_and_keeps_current_ones() {
        // A checkpoint written before the decode-work columns existed holds
        // 30-column rows. Resuming against it must silently drop those rows
        // (the jobs simply re-run) while current-width rows restore fine.
        let dir = std::env::temp_dir().join("rescq_harness_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schema_resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            seeds: 2,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        let metrics = JobMetrics {
            seed: 1,
            total_cycles: 55.0,
            idle_fraction: 0.1,
            stall_cycles: 2.0,
            decode_windows: 4,
            peak_backlog: 1,
            injections: 3,
            injection_failures: 0,
            preps_started: 3,
            preps_cancelled: 0,
            preemptions: 0,
            preemptions_rejected: 0,
            waitgraph_peak_edges: 0,
            preemptions_class: 0,
            stall_ancilla: 0,
            stall_decoder: 2,
            stall_route: 0,
            stall_class: 0,
            cnot_p50: 1,
            cnot_p99: 2,
            decode_p99: 3,
            decode_defects: 7,
            decode_growth_steps: 21,
            decode_failures: 0,
        };
        let current_row = crate::results::csv_row(&jobs[0], &metrics);
        // Simulate the pre-decode-work schema by stripping the three newest
        // columns off a current row.
        let old_row = current_row
            .rsplitn(4, ',')
            .nth(3)
            .expect("row has more than 3 columns")
            .to_string();
        let fp_old = job_fingerprint(&jobs[1], 42, 1);
        let fp_new = job_fingerprint(&jobs[0], 42, 1);
        std::fs::write(
            &path,
            format!("{HEADER}\n{fp_old:016x} {old_row}\n{fp_new:016x} {current_row}\n"),
        )
        .unwrap();

        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.loaded(), 1, "only the current-width row restores");
        assert_eq!(ckpt.lookup(fp_new), Some(&metrics));
        assert_eq!(ckpt.lookup(fp_old), None, "old-schema row must re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_skipped() {
        let dir = std::env::temp_dir().join("rescq_harness_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.ckpt");
        std::fs::write(&path, "# header\nnot a line\nzzzz bad,row\n").unwrap();
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.loaded(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
