//! Figure 12: sensitivity to physical error rate (d = 7, k = 25).

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 12 — sensitivity to physical error rate p",
        "all schemes relatively insensitive to p (paper §5.2.2)",
    );
    let pts = experiments::fig12(&scale).expect("fig12 experiment");
    println!(
        "{:<20} {:>10} {:>8} {:>12} {:>8}",
        "benchmark", "scheduler", "p", "cycles", "idle"
    );
    for p in &pts {
        println!(
            "{:<20} {:>10} {:>8} {:>12.0} {:>7.0}%",
            p.name,
            p.scheduler.to_string(),
            format!("1e-{:.0}", p.x),
            p.mean_cycles,
            p.idle_fraction * 100.0
        );
    }
}
