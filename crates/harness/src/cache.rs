//! Content-addressed artifact cache shared by every worker of a sweep.
//!
//! Two independent key spaces, because they have different granularity:
//!
//! - **circuits** (and their dependency DAGs) are keyed by
//!   `(workload, circuit_seed)` — every sweep point over the same workload
//!   shares one parse/transpile;
//! - **layouts** (and their ancilla routing graphs) are keyed by the fabric
//!   geometry `(kind, block_columns, qubits, compression, compression_seed)`
//!   — a layout is shared across *workloads* of the same width and across
//!   every scheduler/decoder/seed point on it.
//!
//! Each map slot holds an `Arc<OnceLock<…>>`: the map lock is only held to
//! fetch the slot, and the first worker to reach a slot builds the artifact
//! while later workers block on the `OnceLock` instead of duplicating the
//! work. Failures are cached too (a workload that does not generate fails
//! every job that needs it, once).

use rescq_circuit::{Circuit, DependencyDag};
use rescq_lattice::{AncillaGraph, Layout, LayoutKind};
use rescq_sim::{build_layout, SimConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached circuit with its dependency DAG.
pub type CircuitArtifact = Result<(Arc<Circuit>, Arc<DependencyDag>), String>;
/// A cached layout with its ancilla routing graph.
pub type LayoutArtifact = Result<(Arc<Layout>, Arc<AncillaGraph>), String>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CircuitKey {
    workload: String,
    seed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LayoutKey {
    kind: LayoutKind,
    block_columns: Option<u32>,
    qubits: u32,
    /// Bit pattern of the compression fraction (exact, hashable).
    compression_bits: u64,
    compression_seed: u64,
}

impl LayoutKey {
    fn of(qubits: u32, config: &SimConfig) -> Self {
        LayoutKey {
            kind: config.layout,
            block_columns: config.block_columns,
            qubits,
            compression_bits: config.compression.to_bits(),
            compression_seed: config.compression_seed,
        }
    }
}

/// Cache hit/build counters (one sweep's sharing factor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct circuits built.
    pub circuit_builds: u64,
    /// Circuit requests served from the cache.
    pub circuit_hits: u64,
    /// Distinct layouts built.
    pub layout_builds: u64,
    /// Layout requests served from the cache.
    pub layout_hits: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuits {} built / {} reused; layouts {} built / {} reused",
            self.circuit_builds, self.circuit_hits, self.layout_builds, self.layout_hits
        )
    }
}

/// The shared artifact cache of one sweep execution.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    circuits: Mutex<HashMap<CircuitKey, Arc<OnceLock<CircuitArtifact>>>>,
    layouts: Mutex<HashMap<LayoutKey, Arc<OnceLock<LayoutArtifact>>>>,
    circuit_builds: AtomicU64,
    circuit_hits: AtomicU64,
    layout_builds: AtomicU64,
    layout_hits: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// The circuit (and DAG) for `workload`, building it on first request.
    ///
    /// `file:<path>` workloads are read and parsed from disk; everything
    /// else resolves through [`rescq_workloads::generate`].
    ///
    /// # Errors
    ///
    /// Returns the (cached) build error for unknown workloads or unreadable
    /// files.
    pub fn circuit(&self, workload: &str, circuit_seed: u64) -> CircuitArtifact {
        let key = CircuitKey {
            workload: workload.to_string(),
            seed: circuit_seed,
        };
        let cell = {
            let mut map = self.circuits.lock().expect("circuit cache poisoned");
            match map.entry(key) {
                Entry::Occupied(e) => {
                    self.circuit_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.circuit_builds.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        cell.get_or_init(|| build_circuit(workload, circuit_seed))
            .clone()
    }

    /// The layout (and routing graph) for a configuration over a
    /// `qubits`-wide circuit, building it on first request.
    ///
    /// # Errors
    ///
    /// Returns the (cached) build error for unroutable geometries.
    pub fn layout(&self, qubits: u32, config: &SimConfig) -> LayoutArtifact {
        let key = LayoutKey::of(qubits, config);
        let cell = {
            let mut map = self.layouts.lock().expect("layout cache poisoned");
            match map.entry(key) {
                Entry::Occupied(e) => {
                    self.layout_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.layout_builds.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        cell.get_or_init(|| {
            let layout = build_layout(qubits, config).map_err(|e| e.to_string())?;
            let graph = AncillaGraph::from_grid(layout.grid());
            Ok((Arc::new(layout), Arc::new(graph)))
        })
        .clone()
    }

    /// A snapshot of the hit/build counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            circuit_builds: self.circuit_builds.load(Ordering::Relaxed),
            circuit_hits: self.circuit_hits.load(Ordering::Relaxed),
            layout_builds: self.layout_builds.load(Ordering::Relaxed),
            layout_hits: self.layout_hits.load(Ordering::Relaxed),
        }
    }
}

fn build_circuit(workload: &str, circuit_seed: u64) -> CircuitArtifact {
    let circuit = if let Some(path) = workload.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        rescq_circuit::parse_circuit(&text, None).map_err(|e| e.to_string())?
    } else {
        rescq_workloads::generate(workload, circuit_seed)
            .ok_or_else(|| format!("unknown workload `{workload}`"))?
    };
    let dag = Arc::new(DependencyDag::new(&circuit));
    Ok((Arc::new(circuit), dag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_built_once_per_key() {
        let cache = ArtifactCache::new();
        let (a, _) = cache.circuit("dnn_n16", 1).unwrap();
        let (b, _) = cache.circuit("dnn_n16", 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let (c, _) = cache.circuit("dnn_n16", 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different artifact");
        let s = cache.stats();
        assert_eq!(s.circuit_builds, 2);
        assert_eq!(s.circuit_hits, 1);
    }

    #[test]
    fn layouts_keyed_by_geometry() {
        let cache = ArtifactCache::new();
        let base = SimConfig::default();
        let (l1, g1) = cache.layout(9, &base).unwrap();
        let (l2, g2) = cache.layout(9, &base).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2) && Arc::ptr_eq(&g1, &g2));
        // Scheduler and seed do not affect the key…
        let mut other = base.clone();
        other.scheduler = rescq_core::SchedulerKind::Greedy;
        other.seed = 99;
        let (l3, _) = cache.layout(9, &other).unwrap();
        assert!(Arc::ptr_eq(&l1, &l3));
        // …but compression does.
        let mut compressed = base.clone();
        compressed.compression = 0.5;
        let (l4, _) = cache.layout(9, &compressed).unwrap();
        assert!(!Arc::ptr_eq(&l1, &l4));
        assert!(l4.compression() > 0.0);
        let s = cache.stats();
        assert_eq!(s.layout_builds, 2);
        assert_eq!(s.layout_hits, 2);
    }

    #[test]
    fn unknown_workload_error_is_cached() {
        let cache = ArtifactCache::new();
        assert!(cache.circuit("nope_n0", 1).is_err());
        assert!(cache.circuit("nope_n0", 1).is_err());
        let s = cache.stats();
        assert_eq!(s.circuit_builds, 1);
        assert_eq!(s.circuit_hits, 1);
    }
}
