//! Figure 5: histograms of CNOT and Rz completion latency after scheduling,
//! AutoBraid vs RESCQ, accumulated over benchmarks.

use rescq_bench::{experiments, print_header};
use rescq_sim::LatencyHistogram;

fn print_hist(label: &str, h: &LatencyHistogram) {
    println!(
        "  {label}: n={} mean={:.2} p50={} p90={} ≤2cy={:.0}% ≤6cy={:.0}%",
        h.count(),
        h.mean(),
        h.percentile(0.5),
        h.percentile(0.9),
        h.fraction_at_most(2) * 100.0,
        h.fraction_at_most(6) * 100.0
    );
    let max = h.iter().map(|(_, n)| n).max().unwrap_or(1);
    for (lat, n) in h.iter().take(16) {
        let bar = "#".repeat((n * 40 / max.max(1)) as usize);
        println!("    {lat:>3} cycles | {bar} {n}");
    }
}

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 5 — gate completion latency histograms",
        "expected: RESCQ CNOTs mostly 2 cycles; AutoBraid modes at 5 and 8",
    );
    let data = experiments::fig5(&scale).expect("fig5 experiment");
    for d in &data {
        println!("{}:", d.scheduler);
        print_hist("CNOT", &d.cnot);
        print_hist("Rz  ", &d.rz);
    }
}
