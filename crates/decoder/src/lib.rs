//! # rescq-decoder
//!
//! A realtime classical-decoder subsystem for continuous-angle QEC
//! architectures. RESCQ's scheduler assumes the classical control stack keeps
//! up with the quantum substrate, but continuous-angle feed-forward is gated
//! on decoding: every `|mθ⟩` injection outcome must be decoded before the
//! correction ladder can be rewritten. This crate models that pipeline as a
//! first-class subsystem the simulation engines consult before committing
//! feed-forward decisions.
//!
//! Four [`DecoderModel`] implementations are provided:
//!
//! - [`IdealDecoder`] — zero latency; reproduces the original RESCQ results
//!   bit for bit (the default everywhere);
//! - [`FixedLatencyDecoder`] — a latency model with constant reaction
//!   latency plus a per-round decode cost, one sequential pipeline per tile
//!   (backlog accumulates when throughput < 1 syndrome round per wall-clock
//!   round);
//! - [`AdaptiveDecoder`] — a Triage-style adaptive parallel-window decoder:
//!   `W` workers drain a bounded syndrome ring buffer, and decode throughput
//!   scales with ring occupancy (the fuller the ring, the larger the batched
//!   decode windows and the better the amortized cost);
//! - [`UnionFindDecoder`] — a *real* union-find syndrome decoder: every
//!   window samples a seeded error configuration on the tile's
//!   [`DetectorGraph`] at the channel's physical error rate, decodes it
//!   with [`ClusterDsu`] cluster growth + peeling, folds the correction
//!   into a [`PauliFrame`], and reports a latency derived from the work the
//!   decode actually performed. Decode latency thereby *emerges* from `p`
//!   and `d` instead of being assumed.
//!
//! The [`DecodeBacklog`] tracks in-flight windows per tile, and
//! [`DecoderRuntime`] wraps a model + backlog + statistics behind the
//! interface the engines consume: [`DecoderRuntime::submit`] returns the
//! round at which a window's decode result becomes visible, and
//! [`DecoderRuntime::retire`] records the observed latency once the engine
//! consumes it.
//!
//! Everything here is deterministic: decode latency is a pure function of
//! the submission schedule (and, for union-find, of the seeded error
//! channel — window `w` of tile `t` draws from a stream derived from
//! `(seed, t, w)`), so seeded simulations stay reproducible for any engine
//! thread count.
//!
//! For differential testing, [`min_weight_correction`] is an exhaustive
//! minimum-weight oracle over the same detector graphs.
//!
//! # Quick example
//!
//! ```
//! use rescq_decoder::{DecoderConfig, DecoderKind, DecoderRuntime};
//!
//! let mut rt = DecoderRuntime::new(&DecoderConfig::fixed(0.5), 4);
//! let (w0, ready0) = rt.submit(0, 7, 100);
//! assert!(ready0 > 100, "half-throughput decode takes time");
//! rt.retire(w0, ready0);
//! assert_eq!(rt.stats().windows_decoded, 1);
//!
//! let mut ideal = DecoderRuntime::new(&DecoderConfig::default(), 4);
//! let (_, ready) = ideal.submit(0, 7, 100);
//! assert_eq!(ready, 100, "the ideal decoder is invisible");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backlog;
mod config;
mod dsu;
mod exact;
mod graph;
mod models;
mod pauli_frame;
mod runtime;
mod syndrome;
mod union_find;

pub use backlog::{DecodeBacklog, SyndromeWindow, WindowId};
pub use config::{DecoderConfig, DecoderKind};
pub use dsu::ClusterDsu;
pub use exact::{min_weight_correction, MAX_EXACT_DEFECTS};
pub use graph::DetectorGraph;
pub use models::{AdaptiveDecoder, DecoderModel, FixedLatencyDecoder, IdealDecoder};
pub use pauli_frame::PauliFrame;
pub use runtime::{DecoderRuntime, DecoderStats};
pub use syndrome::SyndromeBits;
pub use union_find::{
    decode_chain, decode_syndrome, sample_error, DecodeOutcome, DecodeWork, ErrorChannel,
    UnionFindDecoder,
};
