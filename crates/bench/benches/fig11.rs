//! Figure 11: sensitivity to code distance (p = 1e-4, k = 25).

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 11 — sensitivity to code distance d",
        "cycles fall with d for all schedulers; RESCQ is least sensitive",
    );
    let pts = experiments::fig11(&scale).expect("fig11 experiment");
    println!(
        "{:<20} {:>10} {:>4} {:>12} {:>8}",
        "benchmark", "scheduler", "d", "cycles", "idle"
    );
    for p in &pts {
        println!(
            "{:<20} {:>10} {:>4} {:>12.0} {:>7.0}%",
            p.name,
            p.scheduler.to_string(),
            p.x,
            p.mean_cycles,
            p.idle_fraction * 100.0
        );
    }
}
