//! Decompositions into the Clifford+Rz basis and peephole rotation merging.
//!
//! The workload generators (Table 3) build circuits from higher-level gates
//! (`Ry`, `U3`, controlled-phase, Toffoli, …); this module lowers them the same
//! way Qiskit's `transpile(..., basis_gates=['rz','h','x','cx'])` does, so the
//! generated gate counts line up with the paper's table.

use crate::{Angle, Circuit, Gate, QubitId};

/// Appends `Rx(θ) = H · Rz(θ) · H` on `q`.
pub fn rx(c: &mut Circuit, q: impl Into<QubitId>, theta: Angle) {
    let q = q.into();
    c.h(q).rz(q, theta).h(q);
}

/// Appends `Ry(θ) = S · H · Rz(θ) · H · S†` on `q` (one continuous rotation
/// plus free Cliffords).
pub fn ry(c: &mut Circuit, q: impl Into<QubitId>, theta: Angle) {
    let q = q.into();
    c.s(q).h(q).rz(q, theta).h(q).sdg(q);
}

/// Appends `U3(θ, φ, λ) = Rz(φ) · Ry(θ) · Rz(λ)` on `q`: three continuous
/// rotations (for generic parameters) plus free Cliffords.
pub fn u3(c: &mut Circuit, q: impl Into<QubitId>, theta: Angle, phi: Angle, lam: Angle) {
    let q = q.into();
    c.rz(q, lam);
    ry(c, q, theta);
    c.rz(q, phi);
}

/// Appends a controlled-phase `CP(λ)` in its full 3-rotation form:
/// `Rz(λ/2) on c; CX; Rz(−λ/2) on t; CX; Rz(λ/2) on t` — 2 CNOTs + 3 Rz.
pub fn cp(c: &mut Circuit, control: impl Into<QubitId>, target: impl Into<QubitId>, lam: Angle) {
    let (ctl, tgt) = (control.into(), target.into());
    let half = halve(lam);
    let neg_half = negate(half);
    c.rz(ctl, half);
    c.cnot(ctl, tgt);
    c.rz(tgt, neg_half);
    c.cnot(ctl, tgt);
    c.rz(tgt, half);
}

/// Appends `Rzz(θ) = CX; Rz(θ) on t; CX` — the two-qubit interaction used by
/// Ising/QAOA circuits: 2 CNOTs + 1 Rz.
pub fn rzz(c: &mut Circuit, a: impl Into<QubitId>, b: impl Into<QubitId>, theta: Angle) {
    let (a, b) = (a.into(), b.into());
    c.cnot(a, b).rz(b, theta).cnot(a, b);
}

/// Appends a Toffoli (CCX) in the standard Clifford+T decomposition:
/// 6 CNOTs, 7 T/T† rotations, 2 Hadamards.
pub fn toffoli(
    c: &mut Circuit,
    a: impl Into<QubitId>,
    b: impl Into<QubitId>,
    t: impl Into<QubitId>,
) {
    let (a, b, t) = (a.into(), b.into(), t.into());
    c.h(t)
        .cnot(b, t)
        .tdg(t)
        .cnot(a, t)
        .t(t)
        .cnot(b, t)
        .tdg(t)
        .cnot(a, t)
        .t(b)
        .t(t)
        .h(t)
        .cnot(a, b)
        .t(a)
        .tdg(b)
        .cnot(a, b);
}

/// Appends a SWAP as 3 CNOTs.
pub fn swap(c: &mut Circuit, a: impl Into<QubitId>, b: impl Into<QubitId>) {
    let (a, b) = (a.into(), b.into());
    c.cnot(a, b).cnot(b, a).cnot(a, b);
}

/// Appends a controlled-`Ry(θ)`: `Ry(θ/2) t; CX; Ry(−θ/2) t; CX` —
/// 2 CNOTs + 2 continuous rotations (plus free Cliffords). W-state circuits
/// are built from these.
pub fn cry(c: &mut Circuit, control: impl Into<QubitId>, target: impl Into<QubitId>, theta: Angle) {
    let (ctl, tgt) = (control.into(), target.into());
    let half = halve(theta);
    ry(c, tgt, half);
    c.cnot(ctl, tgt);
    ry(c, tgt, negate(half));
    c.cnot(ctl, tgt);
}

/// Halves an angle exactly for dyadics (`num·π/2^k → num·π/2^(k+1)`), in
/// floating point otherwise.
pub fn halve(a: Angle) -> Angle {
    match a {
        Angle::DyadicPi { num, k } => Angle::dyadic_pi(num, k + 1),
        Angle::Radians(r) => Angle::radians(r / 2.0),
    }
}

/// Negates an angle.
pub fn negate(a: Angle) -> Angle {
    match a {
        Angle::DyadicPi { num, k } => Angle::dyadic_pi(-num, k),
        Angle::Radians(r) => Angle::radians(-r),
    }
}

/// Merges adjacent `Rz` gates on the same qubit (no intervening gate on that
/// qubit) and drops zero rotations, mimicking Qiskit's 1-qubit optimization
/// pass. Returns the optimized circuit.
///
/// # Example
///
/// ```
/// use rescq_circuit::{transpile::merge_rotations, Angle, Circuit};
///
/// let mut c = Circuit::new(1);
/// c.t(0).t(0); // two π/4 merge into π/2 (Clifford)
/// let merged = merge_rotations(&c);
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged.stats().rz, 0);
/// ```
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());
    // For each qubit, the index in `out` of a trailing Rz that is still
    // mergeable (no later gate touches that qubit).
    let mut open_rz: Vec<Option<usize>> = vec![None; circuit.num_qubits() as usize];

    for g in circuit.gates() {
        match *g {
            Gate::Rz { qubit, angle } => {
                if let Some(idx) = open_rz[qubit.index()] {
                    if let Gate::Rz { angle: prev, .. } = out[idx] {
                        let merged = prev + angle;
                        out[idx] = Gate::rz(qubit, merged);
                        continue;
                    }
                }
                out.push(*g);
                open_rz[qubit.index()] = Some(out.len() - 1);
            }
            _ => {
                for q in g.qubits() {
                    open_rz[q.index()] = None;
                }
                out.push(*g);
            }
        }
    }

    let gates: Vec<Gate> = out
        .into_iter()
        .filter(|g| !matches!(g, Gate::Rz { angle, .. } if angle.is_zero()))
        .collect();
    Circuit::from_gates(circuit.num_qubits(), gates).expect("merged gates stay in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_ry_counts() {
        let mut c = Circuit::new(1);
        rx(&mut c, 0, Angle::radians(0.5));
        assert_eq!(c.stats().rz, 1);
        assert_eq!(c.stats().h, 2);

        let mut c = Circuit::new(1);
        ry(&mut c, 0, Angle::radians(0.5));
        assert_eq!(c.stats().rz, 1);
        assert_eq!(c.stats().clifford_rz, 2);
    }

    #[test]
    fn u3_counts() {
        let mut c = Circuit::new(1);
        u3(
            &mut c,
            0,
            Angle::radians(0.1),
            Angle::radians(0.2),
            Angle::radians(0.3),
        );
        assert_eq!(c.stats().rz, 3);
    }

    #[test]
    fn cp_counts() {
        let mut c = Circuit::new(2);
        cp(&mut c, 0, 1, Angle::dyadic_pi(1, 2));
        let s = c.stats();
        assert_eq!(s.cnot, 2);
        assert_eq!(s.rz, 3); // π/8 rotations, all non-Clifford
    }

    #[test]
    fn rzz_counts() {
        let mut c = Circuit::new(2);
        rzz(&mut c, 0, 1, Angle::radians(1.0));
        assert_eq!(c.stats().cnot, 2);
        assert_eq!(c.stats().rz, 1);
    }

    #[test]
    fn toffoli_counts() {
        let mut c = Circuit::new(3);
        toffoli(&mut c, 0, 1, 2);
        let s = c.stats();
        assert_eq!(s.cnot, 6);
        assert_eq!(s.rz, 7); // T/T† are non-Clifford rotations
        assert_eq!(s.h, 2);
    }

    #[test]
    fn cry_counts() {
        let mut c = Circuit::new(2);
        cry(&mut c, 0, 1, Angle::radians(0.7));
        assert_eq!(c.stats().cnot, 2);
        assert_eq!(c.stats().rz, 2);
    }

    #[test]
    fn merge_cancels_inverse_rotations() {
        let mut c = Circuit::new(1);
        c.t(0).tdg(0);
        let m = merge_rotations(&c);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_respects_intervening_gates() {
        let mut c = Circuit::new(2);
        c.t(0).h(0).t(0).t(1).cnot(0, 1).t(1);
        let m = merge_rotations(&c);
        // t(0) and t(0)-after-h cannot merge; t(1)'s separated by cnot cannot.
        assert_eq!(m.stats().rz, 4);
    }

    #[test]
    fn merge_preserves_semantic_order() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::T).rz(0, Angle::T).cnot(0, 1);
        let m = merge_rotations(&c);
        assert_eq!(m.len(), 2);
        assert_eq!(m.gates()[0], Gate::rz(0, Angle::S));
    }

    #[test]
    fn halve_and_negate_dyadic() {
        assert_eq!(halve(Angle::S), Angle::T);
        assert_eq!(negate(Angle::T), Angle::dyadic_pi(-1, 2));
        assert!((halve(Angle::radians(1.0)).to_radians() - 0.5).abs() < 1e-15);
    }
}
