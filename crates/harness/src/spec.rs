//! The declarative sweep specification and its TOML-subset parser.
//!
//! A [`SweepSpec`] is a cartesian grid: every combination of workload,
//! scheduler, code distance, physical error rate, MST period `k`, grid
//! compression and decoder point is one *sweep point*, and every point runs
//! `seeds` seeded simulations. [`SweepSpec::expand`] flattens the grid into
//! a deterministic job list (seed innermost), which is what the executor,
//! the aggregator and the CSV writer all order by — results are therefore
//! independent of how many workers ran the sweep.
//!
//! The on-disk format is a small TOML subset (enough for `sim sweep` specs
//! without pulling a TOML dependency; the full grammar is documented on
//! [`SweepSpec::parse`]):
//!
//! ```toml
//! # 2 workloads x 2 compressions x 2 decoder points, 4 seeds each
//! [sweep]
//! workloads    = ["dnn_n16", "gcm_n13"]
//! schedulers   = ["rescq"]
//! compressions = [0.0, 0.5]
//! decoders     = ["ideal", "fixed:0.5"]
//! seeds        = 4
//! ```

use rescq_core::{ClassLattice, KPolicy, SchedulerKind};
use rescq_decoder::{DecoderConfig, DecoderKind};
use rescq_sim::SimConfig;
use std::fmt;
use std::str::FromStr;

/// One decoder configuration of a sweep grid, with a compact, CSV-safe
/// textual form: `ideal`, `fixed:<throughput>`,
/// `adaptive:<throughput>x<workers>`, or `union_find:<throughput>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderPoint(pub DecoderConfig);

impl DecoderPoint {
    /// The ideal (zero-latency) decoder point.
    pub fn ideal() -> Self {
        DecoderPoint(DecoderConfig::ideal())
    }
}

impl From<DecoderConfig> for DecoderPoint {
    fn from(config: DecoderConfig) -> Self {
        DecoderPoint(config)
    }
}

impl fmt::Display for DecoderPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.kind {
            DecoderKind::Ideal => write!(f, "ideal"),
            DecoderKind::Fixed => write!(f, "fixed:{}", self.0.throughput),
            DecoderKind::Adaptive => {
                write!(f, "adaptive:{}x{}", self.0.throughput, self.0.workers)
            }
            DecoderKind::UnionFind => write!(f, "union_find:{}", self.0.throughput),
        }
    }
}

impl FromStr for DecoderPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("ideal") {
            return Ok(DecoderPoint::ideal());
        }
        let (kind, rest) = s.split_once(':').ok_or_else(|| {
            format!("bad decoder point `{s}` (ideal | fixed:TP | adaptive:TPxW | union_find:TP)")
        })?;
        match kind.to_ascii_lowercase().as_str() {
            "fixed" => {
                let tp: f64 = rest
                    .parse()
                    .map_err(|_| format!("bad throughput in `{s}`"))?;
                Ok(DecoderPoint(DecoderConfig::fixed(tp)))
            }
            "adaptive" => {
                let (tp, workers) = rest
                    .split_once('x')
                    .ok_or_else(|| format!("bad adaptive point `{s}` (adaptive:TPxW)"))?;
                let tp: f64 = tp.parse().map_err(|_| format!("bad throughput in `{s}`"))?;
                let workers: usize = workers
                    .parse()
                    .map_err(|_| format!("bad worker count in `{s}`"))?;
                Ok(DecoderPoint(DecoderConfig::adaptive(tp, workers)))
            }
            "union_find" | "union-find" | "uf" => {
                let tp: f64 = rest
                    .parse()
                    .map_err(|_| format!("bad throughput in `{s}`"))?;
                Ok(DecoderPoint(DecoderConfig::union_find(tp)))
            }
            other => Err(format!("unknown decoder kind `{other}` in `{s}`")),
        }
    }
}

/// Formats a `k` policy the way specs and CSV columns spell it.
pub fn fmt_k(k: KPolicy) -> String {
    match k {
        KPolicy::Fixed(v) => v.to_string(),
        KPolicy::Dynamic { .. } => "dynamic".to_string(),
    }
}

/// Formats a priority-class point the way specs and CSV columns spell it
/// (`off`, or the lattice's `>`-separated spelling — CSV-safe either way).
pub fn fmt_priority(p: &Option<ClassLattice>) -> String {
    match p {
        None => "off".to_string(),
        Some(lattice) => lattice.to_string(),
    }
}

/// A declarative cartesian sweep over simulation configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Benchmark names ([`rescq_workloads::generate`] names, or
    /// `file:<path>` for a circuit file).
    pub workloads: Vec<String>,
    /// Schedulers swept.
    pub schedulers: Vec<SchedulerKind>,
    /// Code distances swept.
    pub distances: Vec<u32>,
    /// Physical error rates swept.
    pub error_rates: Vec<f64>,
    /// MST period policies swept (RESCQ only; baselines ignore it).
    pub k_values: Vec<KPolicy>,
    /// Grid compression fractions swept.
    pub compressions: Vec<f64>,
    /// Decoder points swept.
    pub decoders: Vec<DecoderPoint>,
    /// Engine worker-thread counts swept (`0` = auto). The schedule is
    /// bit-identical for every value — this axis exists so sweeps can trade
    /// job-level parallelism (harness workers) against run-level
    /// parallelism (engine shards) and measure the wall-clock frontier.
    pub engine_threads: Vec<usize>,
    /// Priority-class lattices swept (`None` = class-blind arbitration,
    /// the spelling `"off"`; a lattice like
    /// `"factory>injection>compute>speculative"` enables class-aware
    /// ledger arbitration for that point).
    pub priority: Vec<Option<ClassLattice>>,
    /// Seeded runs per sweep point.
    pub seeds: u64,
    /// First run seed.
    pub base_seed: u64,
    /// Seed for workload generation (angles; structure is fixed).
    pub circuit_seed: u64,
    /// Route preparation-verification outcomes through the decoder
    /// ([`DecoderConfig::decode_prep`]) on every point.
    pub decode_prep: bool,
    /// Watchdog override in cycles (None keeps the config default).
    pub max_cycles: Option<u64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            workloads: Vec::new(),
            schedulers: vec![SchedulerKind::Rescq],
            distances: vec![7],
            error_rates: vec![1e-4],
            k_values: vec![KPolicy::Fixed(25)],
            compressions: vec![0.0],
            decoders: vec![DecoderPoint::ideal()],
            engine_threads: vec![1],
            priority: vec![None],
            seeds: 3,
            base_seed: 1,
            circuit_seed: 1,
            decode_prep: false,
            max_cycles: None,
        }
    }
}

/// One executable job of an expanded sweep: a sweep point plus a seed.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Global job index in deterministic expansion order.
    pub index: usize,
    /// Index of the sweep point this job belongs to (`index / seeds`).
    pub point: usize,
    /// Workload name.
    pub workload: String,
    /// The decoder point (kept for compact formatting; also baked into
    /// `config.decoder`).
    pub decoder: DecoderPoint,
    /// The fully built simulation configuration, including the seed.
    pub config: SimConfig,
}

/// Error from spec parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for whole-spec validation errors).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "sweep spec: {}", self.message)
        } else {
            write!(f, "sweep spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

/// A scalar value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl Scalar {
    fn parse(token: &str, line: usize) -> Result<Scalar, SpecError> {
        let t = token.trim();
        if let Some(stripped) = t.strip_prefix('"') {
            let inner = stripped
                .strip_suffix('"')
                .ok_or_else(|| err(line, format!("unterminated string `{t}`")))?;
            return Ok(Scalar::Str(inner.to_string()));
        }
        match t {
            "true" => return Ok(Scalar::Bool(true)),
            "false" => return Ok(Scalar::Bool(false)),
            _ => {}
        }
        t.parse::<f64>().map(Scalar::Num).map_err(|_| {
            err(
                line,
                format!("bad value `{t}` (number, bool or \"string\")"),
            )
        })
    }

    fn as_str(&self, line: usize) -> Result<&str, SpecError> {
        match self {
            Scalar::Str(s) => Ok(s),
            other => Err(err(line, format!("expected a string, got `{other:?}`"))),
        }
    }

    fn as_f64(&self, line: usize) -> Result<f64, SpecError> {
        match self {
            Scalar::Num(n) => Ok(*n),
            other => Err(err(line, format!("expected a number, got `{other:?}`"))),
        }
    }

    fn as_u64(&self, line: usize) -> Result<u64, SpecError> {
        let n = self.as_f64(line)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(err(
                line,
                format!("expected a non-negative integer, got {n}"),
            ));
        }
        Ok(n as u64)
    }
}

/// Splits a single-line array body on top-level commas.
fn split_array(body: &str, line: usize) -> Result<Vec<&str>, SpecError> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, ch) in body.char_indices() {
        match ch {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth_quote {
        return Err(err(line, "unterminated string in array"));
    }
    parts.push(&body[start..]);
    Ok(parts
        .into_iter()
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect())
}

/// Strips a `#` comment that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a value: either a `[a, b, c]` array or a single scalar (treated
/// as a one-element array by the list-typed keys).
fn parse_value(raw: &str, line: usize) -> Result<Vec<Scalar>, SpecError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('[') {
        let body = stripped
            .strip_suffix(']')
            .ok_or_else(|| err(line, "arrays must open and close on one line"))?;
        return split_array(body, line)?
            .into_iter()
            .map(|t| Scalar::parse(t, line))
            .collect();
    }
    Ok(vec![Scalar::parse(raw, line)?])
}

fn one_scalar(values: &[Scalar], line: usize) -> Result<&Scalar, SpecError> {
    match values {
        [v] => Ok(v),
        _ => Err(err(line, "expected a single value, not an array")),
    }
}

fn parse_k(s: &Scalar, line: usize) -> Result<KPolicy, SpecError> {
    match s {
        Scalar::Num(_) => Ok(KPolicy::Fixed(s.as_u64(line)? as u32)),
        Scalar::Str(v) if v.eq_ignore_ascii_case("dynamic") => {
            Ok(KPolicy::Dynamic { max_concurrent: 2 })
        }
        other => Err(err(
            line,
            format!("bad k `{other:?}` (integer or \"dynamic\")"),
        )),
    }
}

impl SweepSpec {
    /// Parses a sweep spec from its TOML-subset text.
    ///
    /// Supported grammar: `#` comments; an optional `[sweep]` section
    /// header; `key = value` lines where a value is a number, `true`/`false`,
    /// a `"string"`, or a single-line `[v1, v2, …]` array of those. Keys:
    ///
    /// | key | type | default |
    /// |-----|------|---------|
    /// | `workloads` | string array (required) | — |
    /// | `schedulers` | string array | `["rescq"]` |
    /// | `distances` | integer array | `[7]` |
    /// | `error_rates` | number array | `[1e-4]` |
    /// | `k` | integer-or-`"dynamic"` array | `[25]` |
    /// | `compressions` | number array | `[0.0]` |
    /// | `decoders` | string array (`ideal`, `fixed:TP`, `adaptive:TPxW`, `union_find:TP`) | `["ideal"]` |
    /// | `engine_threads` | integer array (`0` = auto; schedule-invariant) | `[1]` |
    /// | `priority_classes` | string array (`"off"`, or a lattice like `"factory>injection>compute>speculative"`) | `["off"]` |
    /// | `seeds` | integer | `3` |
    /// | `base_seed` | integer | `1` |
    /// | `circuit_seed` | integer | `1` |
    /// | `decode_prep` | bool | `false` |
    /// | `max_cycles` | integer | engine default |
    ///
    /// Unknown keys are errors so typos surface immediately.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with the offending line number.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let mut spec = SweepSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') && !line.contains('=') {
                if line != "[sweep]" {
                    return Err(err(
                        lineno,
                        format!("unknown section `{line}` (only [sweep] is recognised)"),
                    ));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            let (key, values) = (key.trim(), parse_value(value, lineno)?);
            match key {
                "workloads" => {
                    spec.workloads = values
                        .iter()
                        .map(|v| v.as_str(lineno).map(str::to_string))
                        .collect::<Result<_, _>>()?;
                }
                "schedulers" => {
                    spec.schedulers = values
                        .iter()
                        .map(|v| {
                            v.as_str(lineno)?
                                .parse::<SchedulerKind>()
                                .map_err(|e| err(lineno, e))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "distances" => {
                    spec.distances = values
                        .iter()
                        .map(|v| v.as_u64(lineno).map(|d| d as u32))
                        .collect::<Result<_, _>>()?;
                }
                "error_rates" => {
                    spec.error_rates = values
                        .iter()
                        .map(|v| v.as_f64(lineno))
                        .collect::<Result<_, _>>()?;
                }
                "k" => {
                    spec.k_values = values
                        .iter()
                        .map(|v| parse_k(v, lineno))
                        .collect::<Result<_, _>>()?;
                }
                "compressions" => {
                    spec.compressions = values
                        .iter()
                        .map(|v| v.as_f64(lineno))
                        .collect::<Result<_, _>>()?;
                }
                "decoders" => {
                    spec.decoders = values
                        .iter()
                        .map(|v| {
                            v.as_str(lineno)?
                                .parse::<DecoderPoint>()
                                .map_err(|e| err(lineno, e))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "engine_threads" => {
                    spec.engine_threads = values
                        .iter()
                        .map(|v| v.as_u64(lineno).map(|t| t as usize))
                        .collect::<Result<_, _>>()?;
                }
                "priority_classes" => {
                    spec.priority = values
                        .iter()
                        .map(|v| {
                            ClassLattice::parse_setting(v.as_str(lineno)?)
                                .map_err(|e| err(lineno, e))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => spec.seeds = one_scalar(&values, lineno)?.as_u64(lineno)?,
                "base_seed" => spec.base_seed = one_scalar(&values, lineno)?.as_u64(lineno)?,
                "circuit_seed" => {
                    spec.circuit_seed = one_scalar(&values, lineno)?.as_u64(lineno)?
                }
                "decode_prep" => {
                    spec.decode_prep = match one_scalar(&values, lineno)? {
                        Scalar::Bool(b) => *b,
                        other => return Err(err(lineno, format!("bad bool `{other:?}`"))),
                    };
                }
                "max_cycles" => {
                    spec.max_cycles = Some(one_scalar(&values, lineno)?.as_u64(lineno)?);
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] (line 0) describing the first problem.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.workloads.is_empty() {
            return Err(err(0, "workloads must not be empty"));
        }
        // Workload names become unquoted CSV fields and checkpoint rows.
        if let Some(w) = self
            .workloads
            .iter()
            .find(|w| w.contains(',') || w.contains('"') || w.contains('\n'))
        {
            return Err(err(
                0,
                format!("workload `{w}` contains a character CSV rows cannot carry (`,`, `\"` or newline)"),
            ));
        }
        for field in [
            ("schedulers", self.schedulers.is_empty()),
            ("distances", self.distances.is_empty()),
            ("error_rates", self.error_rates.is_empty()),
            ("k", self.k_values.is_empty()),
            ("compressions", self.compressions.is_empty()),
            ("decoders", self.decoders.is_empty()),
            ("engine_threads", self.engine_threads.is_empty()),
            ("priority_classes", self.priority.is_empty()),
        ] {
            if field.1 {
                return Err(err(0, format!("{} must not be empty", field.0)));
            }
        }
        if let Some(c) = self.compressions.iter().find(|c| !(0.0..=1.0).contains(*c)) {
            return Err(err(0, format!("compression {c} outside [0, 1]")));
        }
        if self.seeds == 0 {
            return Err(err(0, "seeds must be at least 1"));
        }
        Ok(())
    }

    /// Number of sweep points (jobs = points × seeds).
    pub fn num_points(&self) -> usize {
        self.workloads.len()
            * self.schedulers.len()
            * self.distances.len()
            * self.error_rates.len()
            * self.k_values.len()
            * self.compressions.len()
            * self.decoders.len()
            * self.engine_threads.len()
            * self.priority.len()
    }

    /// Expands the grid into the deterministic job list (seed innermost;
    /// loop order workload → scheduler → distance → error rate → k →
    /// compression → decoder → engine threads → priority classes → seed).
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.num_points() * self.seeds as usize);
        let mut point = 0;
        for workload in &self.workloads {
            for &scheduler in &self.schedulers {
                for &distance in &self.distances {
                    for &error_rate in &self.error_rates {
                        for &k in &self.k_values {
                            for &compression in &self.compressions {
                                for &decoder in &self.decoders {
                                    for &threads in &self.engine_threads {
                                        for priority in &self.priority {
                                            for i in 0..self.seeds {
                                                let mut config = SimConfig::builder()
                                                    .scheduler(scheduler)
                                                    .distance(distance)
                                                    .physical_error_rate(error_rate)
                                                    .k_policy(k)
                                                    .compression(compression)
                                                    .engine_threads(threads)
                                                    .priority_classes(priority.clone())
                                                    .seed(self.base_seed + i)
                                                    .build();
                                                config.decoder = decoder.0;
                                                // Spec-level flag turns prep
                                                // decoding ON; it never
                                                // clears a point that
                                                // already opted in.
                                                config.decoder.decode_prep |= self.decode_prep;
                                                if let Some(mc) = self.max_cycles {
                                                    config.max_cycles = mc;
                                                }
                                                jobs.push(JobSpec {
                                                    index: jobs.len(),
                                                    point,
                                                    workload: workload.clone(),
                                                    decoder,
                                                    config,
                                                });
                                            }
                                            point += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_points_round_trip() {
        for s in ["ideal", "fixed:0.5", "adaptive:0.25x8", "union_find:16"] {
            let p: DecoderPoint = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("warp:1".parse::<DecoderPoint>().is_err());
        assert!("adaptive:0.5".parse::<DecoderPoint>().is_err());
        assert_eq!(
            "fixed:inf".parse::<DecoderPoint>().unwrap().0.throughput,
            f64::INFINITY
        );
    }

    #[test]
    fn parses_full_spec() {
        let text = r#"
# decoder sweep
[sweep]
workloads    = ["dnn_n16", "gcm_n13"]   # two densities
schedulers   = ["rescq", "greedy"]
distances    = [7, 9]
error_rates  = [1e-4]
k            = [25, "dynamic"]
compressions = [0.0, 0.5]
decoders     = ["ideal", "fixed:0.5"]
seeds        = 4
base_seed    = 10
decode_prep  = true
max_cycles   = 500000
"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.workloads, vec!["dnn_n16", "gcm_n13"]);
        assert_eq!(spec.schedulers.len(), 2);
        assert_eq!(spec.distances, vec![7, 9]);
        assert_eq!(spec.k_values.len(), 2);
        assert!(matches!(spec.k_values[1], KPolicy::Dynamic { .. }));
        // 2 workloads x 2 schedulers x 2 distances x 2 k x 2 comp x 2 dec.
        assert_eq!(spec.num_points(), 64);
        assert!(spec.decode_prep);
        assert_eq!(spec.max_cycles, Some(500_000));

        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.num_points() * 4);
        // Seeds innermost: first four jobs share point 0 with seeds 10..14.
        assert!(jobs[..4].iter().all(|j| j.point == 0));
        assert_eq!(
            jobs[..4].iter().map(|j| j.config.seed).collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
        assert!(jobs.iter().all(|j| j.config.decoder.decode_prep));
        assert!(jobs.iter().all(|j| j.config.max_cycles == 500_000));
        // Indices are the identity permutation.
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i));
    }

    #[test]
    fn engine_threads_axis_expands_per_point() {
        let spec =
            SweepSpec::parse("workloads = [\"dnn_n16\"]\nengine_threads = [1, 4]\nseeds = 2\n")
                .unwrap();
        assert_eq!(spec.engine_threads, vec![1, 4]);
        assert_eq!(spec.num_points(), 2);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 4);
        // Engine threads vary per point, outside the innermost seed loop.
        let axis: Vec<usize> = jobs.iter().map(|j| j.config.engine_threads).collect();
        assert_eq!(axis, vec![1, 1, 4, 4]);
        assert!(jobs[..2].iter().all(|j| j.point == 0));
        assert!(jobs[2..].iter().all(|j| j.point == 1));
        // An empty axis is a validation error, like every other axis.
        assert!(SweepSpec::parse("workloads = [\"x\"]\nengine_threads = []\n").is_err());
    }

    #[test]
    fn priority_axis_expands_per_point() {
        let spec = SweepSpec::parse(
            "workloads = [\"factory_n12\"]\npriority_classes = [\"off\", \"factory>injection>compute>speculative\"]\nseeds = 2\n",
        )
        .unwrap();
        assert_eq!(spec.priority.len(), 2);
        assert_eq!(spec.num_points(), 2);
        assert_eq!(fmt_priority(&spec.priority[0]), "off");
        assert_eq!(
            fmt_priority(&spec.priority[1]),
            "factory>injection>compute>speculative"
        );
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 4);
        // Priority varies per point, outside the innermost seed loop.
        assert!(jobs[..2]
            .iter()
            .all(|j| j.config.priority_classes.is_none()));
        assert!(jobs[2..]
            .iter()
            .all(|j| j.config.priority_classes.is_some()));
        assert!(jobs[..2].iter().all(|j| j.point == 0));
        assert!(jobs[2..].iter().all(|j| j.point == 1));
        // Empty axis and invalid lattices are spec errors.
        assert!(SweepSpec::parse("workloads = [\"x\"]\npriority_classes = []\n").is_err());
        assert!(SweepSpec::parse(
            "workloads = [\"x\"]\npriority_classes = [\"factory>compute\"]\n"
        )
        .is_err());
    }

    #[test]
    fn scalar_accepted_for_lists() {
        let spec = SweepSpec::parse("workloads = \"dnn_n16\"\ndistances = 9\n").unwrap();
        assert_eq!(spec.workloads, vec!["dnn_n16"]);
        assert_eq!(spec.distances, vec![9]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = SweepSpec::parse("workloads = [\"x\"]\nwarp = 9\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("warp"));
        let e = SweepSpec::parse("workloads = [\"x\"]\ndistances = [seven]\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn validation_rejects_empty_and_out_of_range() {
        assert!(SweepSpec::parse("").is_err()); // no workloads
        let e = SweepSpec::parse("workloads = [\"x\"]\ncompressions = [1.5]\n").unwrap_err();
        assert!(e.message.contains("outside"));
        // Comma in a file: workload would shear the 17-column CSV rows.
        let e = SweepSpec::parse("workloads = [\"file:/a,b.qasm\"]\n").unwrap_err();
        assert!(e.message.contains("CSV"));
        // seeds = 0 is an error, not a silent clamp to 1.
        let e = SweepSpec::parse("workloads = [\"x\"]\nseeds = 0\n").unwrap_err();
        assert!(e.message.contains("seeds"));
    }

    #[test]
    fn spec_flag_never_clears_point_level_prep_decoding() {
        use rescq_decoder::DecoderConfig;
        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            decoders: vec![DecoderPoint::from(
                DecoderConfig::fixed(0.5).with_prep_decoding(),
            )],
            seeds: 1,
            decode_prep: false,
            ..SweepSpec::default()
        };
        assert!(spec.expand()[0].config.decoder.decode_prep);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let spec = SweepSpec::parse("workloads = [\"a#b\"] # trailing\n").unwrap();
        assert_eq!(spec.workloads, vec!["a#b"]);
    }
}
