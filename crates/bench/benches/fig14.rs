//! Figure 14: sensitivity to grid compression (ancilla availability).

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 14 — sensitivity to grid compression",
        "RESCQ degrades mildly; baselines suffer congestion (§5.3)",
    );
    let pts = experiments::fig14(&scale).expect("fig14 experiment");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "scheduler", "requested", "achieved", "cycles"
    );
    for p in &pts {
        println!(
            "{:<20} {:>10} {:>9.0}% {:>9.0}% {:>12.0}",
            p.name,
            p.scheduler.to_string(),
            p.x,
            p.achieved_compression * 100.0,
            p.mean_cycles
        );
    }
}
