//! The sweep executor: a pool of scoped worker threads pulling jobs from a
//! shared atomic queue, with artifact sharing and checkpoint restore.
//!
//! Workers claim the next job index with a single `fetch_add` — the classic
//! shared-queue work-stealing arrangement — so a slow point (e.g. a heavily
//! compressed fabric) never idles the rest of the pool the way per-worker
//! chunking would. Every worker returns `(index, record)` pairs; the
//! aggregator writes them back into an index-addressed table, which makes
//! the final ordering (and therefore the CSV/JSON output) byte-identical
//! for any worker count.

use crate::cache::ArtifactCache;
use crate::checkpoint::{job_fingerprint, Checkpoint};
use crate::results::{csv_row, JobMetrics, JobRecord, SweepResults};
use crate::spec::{JobSpec, SpecError, SweepSpec};
use rescq_sim::{simulate_prepared, SimArtifacts};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Execution options of one sweep run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Checkpoint file for resumable execution.
    pub checkpoint: Option<PathBuf>,
}

impl RunOptions {
    /// Options with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        RunOptions {
            threads,
            ..RunOptions::default()
        }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Harness-level failure (spec or checkpoint I/O). Job-level simulation
/// failures are recorded per job, not raised — one diverging point must not
/// discard a thousand completed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The spec failed validation.
    Spec(SpecError),
    /// The checkpoint file could not be opened.
    Io(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Spec(e) => write!(f, "{e}"),
            HarnessError::Io(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<SpecError> for HarnessError {
    fn from(e: SpecError) -> Self {
        HarnessError::Spec(e)
    }
}

/// Runs one job end to end: resolve artifacts from the cache, restore from
/// the checkpoint if possible, otherwise simulate and checkpoint.
fn run_job(
    job: &JobSpec,
    spec: &SweepSpec,
    cache: &ArtifactCache,
    checkpoint: Option<&Checkpoint>,
) -> JobRecord {
    let (circuit, dag) = match cache.circuit(&job.workload, spec.circuit_seed) {
        Ok(pair) => pair,
        Err(e) => {
            return JobRecord {
                job: job.clone(),
                outcome: Err(e),
                resumed: false,
            }
        }
    };
    let fingerprint = job_fingerprint(job, circuit.content_hash(), spec.circuit_seed);
    if let Some(metrics) = checkpoint.and_then(|c| c.lookup(fingerprint)) {
        return JobRecord {
            job: job.clone(),
            outcome: Ok(metrics.clone()),
            resumed: true,
        };
    }
    let outcome = cache
        .layout(circuit.num_qubits(), &job.config)
        .and_then(|(layout, graph)| {
            let artifacts = SimArtifacts::assemble(circuit, dag, layout, graph);
            simulate_prepared(&artifacts, &job.config).map_err(|e| e.to_string())
        })
        .map(|report| JobMetrics::from_report(&report));
    if let (Some(ckpt), Ok(metrics)) = (checkpoint, &outcome) {
        ckpt.record(fingerprint, &csv_row(job, metrics));
    }
    JobRecord {
        job: job.clone(),
        outcome,
        resumed: false,
    }
}

/// Executes a sweep spec on a worker pool with shared artifact caching.
///
/// Results come back in deterministic job order regardless of
/// `opts.threads`; see the crate docs for the determinism contract.
///
/// # Errors
///
/// Returns [`HarnessError`] for spec validation or checkpoint-open
/// failures. Individual job failures are recorded in the returned
/// [`SweepResults`] (check [`SweepResults::first_error`]).
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions) -> Result<SweepResults, HarnessError> {
    spec.validate()?;
    let started = Instant::now();
    let jobs = spec.expand();
    let cache = ArtifactCache::new();
    let checkpoint = match &opts.checkpoint {
        Some(path) => Some(Checkpoint::open(path).map_err(HarnessError::Io)?),
        None => None,
    };
    let checkpoint = checkpoint.as_ref();
    let threads = opts.resolved_threads().clamp(1, jobs.len().max(1));

    let mut table: Vec<Option<JobRecord>> = jobs.iter().map(|_| None).collect();
    if threads <= 1 {
        for (slot, job) in table.iter_mut().zip(&jobs) {
            *slot = Some(run_job(job, spec, &cache, checkpoint));
        }
    } else {
        let next = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, JobRecord)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            local.push((i, run_job(job, spec, &cache, checkpoint)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for (i, record) in collected.into_iter().flatten() {
            table[i] = Some(record);
        }
    }

    Ok(SweepResults {
        spec: spec.clone(),
        records: table
            .into_iter()
            .map(|r| r.expect("every job slot filled"))
            .collect(),
        cache: cache.stats(),
        elapsed_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            workloads: vec!["decoder_stress_n4".into()],
            compressions: vec![0.0, 0.5],
            seeds: 2,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn sweep_completes_every_job_in_order() {
        let spec = tiny_spec();
        let results = run_sweep(&spec, &RunOptions::with_threads(2)).unwrap();
        assert_eq!(results.records.len(), 4);
        assert!(results.first_error().is_none());
        assert!(results
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.job.index == i));
        // One circuit build serves all four jobs; one layout per compression.
        assert_eq!(results.cache.circuit_builds, 1);
        assert_eq!(results.cache.layout_builds, 2);
    }

    #[test]
    fn unknown_workload_is_recorded_not_fatal() {
        let spec = SweepSpec {
            workloads: vec!["decoder_stress_n4".into(), "nope_n0".into()],
            seeds: 1,
            ..SweepSpec::default()
        };
        let results = run_sweep(&spec, &RunOptions::with_threads(1)).unwrap();
        assert_eq!(results.records.len(), 2);
        assert!(results.records[0].outcome.is_ok());
        assert!(results.records[1].outcome.is_err());
        assert!(results.first_error().unwrap().contains("nope_n0"));
    }

    #[test]
    fn checkpoint_resume_skips_completed_jobs() {
        let dir = std::env::temp_dir().join("rescq_harness_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let spec = tiny_spec();
        let opts = RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
        };
        let first = run_sweep(&spec, &opts).unwrap();
        assert_eq!(first.resumed_count(), 0);
        let second = run_sweep(&spec, &opts).unwrap();
        assert_eq!(second.resumed_count(), 4, "all jobs restore from disk");
        assert_eq!(first.to_csv(), second.to_csv(), "restored rows identical");

        // A different base seed shares no fingerprints with the checkpoint.
        let moved = SweepSpec {
            base_seed: 100,
            ..spec
        };
        let third = run_sweep(&moved, &opts).unwrap();
        assert_eq!(third.resumed_count(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
