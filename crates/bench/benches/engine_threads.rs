//! The sharded-engine acceptance bench (ISSUE 4): one 420-qubit realtime
//! run — the monolithic single-core loop the sharding refactor broke up —
//! executed with 1 and with 4 engine threads.
//!
//! Two assertions, with different arming rules:
//!
//! - **Byte-identity, always**: the 4-thread report must equal the 1-thread
//!   report field for field (total rounds, histograms, every counter) —
//!   the determinism contract, checked on any host.
//! - **Wall-clock, multi-core hosts only**: with at least 4 real cores the
//!   sharded run must be at least parity-plus (≥ 1.05×) against the serial
//!   engine on this fabric size. On fewer cores threads time-slice and a
//!   parallel win is physically impossible (the 1-core container precedent
//!   from the harness-sweep bench), so the assertion stays disarmed and the
//!   measured ratio is only reported.

use rescq_bench::print_header;
use rescq_sim::{simulate, ExecutionReport, SimConfig};
use std::time::Instant;

const WORKLOAD: &str = "ising_n420";
const THREADS: usize = 4;
const ITERATIONS: usize = 3;

fn run(circuit: &rescq_circuit::Circuit, threads: usize) -> (f64, ExecutionReport) {
    let config = SimConfig::builder().engine_threads(threads).seed(7).build();
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..ITERATIONS {
        let start = Instant::now();
        let report = simulate(circuit, &config).expect("run completes");
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(report);
    }
    (best, last.expect("at least one iteration"))
}

fn main() {
    print_header(
        "Engine threads — sharded realtime engine vs the serial loop",
        "one 420-qubit run; byte-identical schedule required, speedup on real cores",
    );
    let circuit = rescq_workloads::generate(WORKLOAD, 1).expect("workload generates");

    let (serial_secs, serial) = run(&circuit, 1);
    let (sharded_secs, sharded) = run(&circuit, THREADS);

    // Byte-identity: everything except the reported thread count itself.
    let mut normalised = sharded.clone();
    normalised.engine_threads = serial.engine_threads;
    assert_eq!(
        normalised, serial,
        "sharded schedule must be byte-identical to the serial engine"
    );

    let speedup = serial_secs / sharded_secs.max(1e-9);
    println!("serial (1 thread):      {serial_secs:>8.3}s  (best of {ITERATIONS})");
    println!("sharded ({THREADS} threads):    {sharded_secs:>8.3}s  (best of {ITERATIONS})");
    println!("speedup:                {speedup:>8.2}x");
    println!(
        "run: {} rounds, {} cross-shard claims, {} cross-shard preemptions",
        serial.total_rounds,
        serial.counters.claims_cross_shard,
        serial.counters.preemptions_cross_shard
    );
    println!("byte-identical schedule: PASS");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= THREADS {
        assert!(
            speedup >= 1.05,
            "acceptance: sharded engine must beat the serial loop on {cores} cores \
             (got {speedup:.2}x)"
        );
        println!("acceptance (>= 1.05x wall-clock on {cores} cores): PASS");
    } else {
        println!(
            "acceptance (>= 1.05x wall-clock): SKIPPED — {cores} core(s) cannot host {THREADS} \
             workers concurrently; byte-identity verified above"
        );
    }
}
