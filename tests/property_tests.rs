//! Property-based tests spanning crates: parser round-trips, DAG ordering,
//! compression safety, engine determinism on random circuits, decode-backlog
//! conservation, and ideal-decoder equivalence.
//!
//! The container builds offline, so instead of `proptest` these use a small
//! seeded-case harness: every property runs against `CASES` randomly
//! generated inputs drawn from a fixed-seed ChaCha8 stream, making failures
//! reproducible by case index.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rescq_decoder::{DecodeBacklog, DecoderConfig};
use rescq_repro::circuit::{parse_circuit, write_circuit, Angle, Circuit, DependencyDag, Gate};
use rescq_repro::core::SchedulerKind;
use rescq_repro::lattice::{Layout, LayoutKind};
use rescq_repro::sim::{simulate, SimConfig};

const CASES: u64 = 24;

/// Runs `body` once per case with a per-case RNG; panics name the case seed
/// so failures replay exactly.
fn for_each_case(name: &str, body: impl Fn(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0000 ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn arb_gate(rng: &mut ChaCha8Rng, num_qubits: u32) -> Gate {
    let q = rng.gen_range(0..num_qubits);
    match rng.gen_range(0..6u32) {
        0 => Gate::h(q),
        1 => Gate::x(q),
        2 => Gate::z(q),
        3 => Gate::rz(q, Angle::radians(rng.gen_range(0.01f64..3.0))),
        4 => Gate::rz(
            q,
            Angle::dyadic_pi(rng.gen_range(1i64..16), rng.gen_range(0u32..6)),
        ),
        _ => {
            let c = rng.gen_range(0..num_qubits);
            let mut t = rng.gen_range(0..num_qubits - 1);
            if t >= c {
                t += 1;
            }
            Gate::cnot(c, t)
        }
    }
}

fn arb_circuit(rng: &mut ChaCha8Rng) -> Circuit {
    let n = rng.gen_range(2u32..8);
    let len = rng.gen_range(1usize..40);
    let gates: Vec<Gate> = (0..len).map(|_| arb_gate(rng, n)).collect();
    Circuit::from_gates(n, gates).unwrap()
}

#[test]
fn text_format_round_trips() {
    for_each_case("text_format_round_trips", |rng| {
        let circuit = arb_circuit(rng);
        let text = write_circuit(&circuit);
        let parsed = parse_circuit(&text, Some(circuit.num_qubits())).unwrap();
        assert_eq!(parsed.gates(), circuit.gates());
    });
}

#[test]
fn dag_layers_respect_dependencies() {
    for_each_case("dag_layers_respect_dependencies", |rng| {
        let circuit = arb_circuit(rng);
        let dag = DependencyDag::new(&circuit);
        let order: Vec<_> = dag.layers().iter().flatten().copied().collect();
        assert!(dag.respects_dependencies(&order));
    });
}

#[test]
fn compression_preserves_routability() {
    for_each_case("compression_preserves_routability", |rng| {
        let n = rng.gen_range(2u32..20);
        let fraction = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0u64..1000);
        let mut layout = Layout::new(LayoutKind::Star2x2, n).unwrap();
        layout.compress(fraction, seed);
        assert!(layout.is_routable());
    });
}

#[test]
fn engines_are_deterministic() {
    for_each_case("engines_are_deterministic", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        for scheduler in [SchedulerKind::Rescq, SchedulerKind::Greedy] {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let a = simulate(&circuit, &config).unwrap();
            let b = simulate(&circuit, &config).unwrap();
            assert_eq!(a.total_rounds, b.total_rounds);
            assert_eq!(a.gates_executed, circuit.len());
        }
    });
}

#[test]
fn doubling_ladder_always_terminates_for_dyadics() {
    for_each_case("doubling_ladder_always_terminates_for_dyadics", |rng| {
        let mut a = Angle::dyadic_pi(rng.gen_range(1i64..1000), rng.gen_range(0u32..40));
        let mut steps = 0;
        while !a.is_clifford() {
            a = a.double();
            steps += 1;
            assert!(steps <= 40, "ladder failed to terminate");
        }
    });
}

/// Decode-backlog conservation: under random interleavings of enqueues and
/// retirements, `enqueued == decoded + in-flight` at every step.
#[test]
fn decode_backlog_conserves_windows() {
    for_each_case("decode_backlog_conserves_windows", |rng| {
        let mut backlog = DecodeBacklog::new();
        let mut live = Vec::new();
        for step in 0..rng.gen_range(10u32..200) {
            let retire = !live.is_empty() && rng.gen_bool(0.4);
            if retire {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                backlog.retire(id);
            } else {
                let tile = rng.gen_range(0u32..8);
                let rounds = rng.gen_range(1u32..64);
                let id = backlog.enqueue(tile, rounds, step as u64, step as u64 + 5);
                live.push(id);
            }
            assert!(backlog.is_conserved(), "conservation broken at step {step}");
            assert_eq!(backlog.in_flight(), live.len());
        }
        for id in live {
            backlog.retire(id);
        }
        assert!(backlog.is_conserved());
        assert_eq!(backlog.total_enqueued(), backlog.total_decoded());
    });
}

/// The engines keep the backlog conserved end to end: every window submitted
/// during a run is decoded by the time the run completes.
#[test]
fn simulated_runs_drain_the_decode_backlog() {
    for_each_case("simulated_runs_drain_the_decode_backlog", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        let decoder = match rng.gen_range(0u32..3) {
            0 => DecoderConfig::fixed(rng.gen_range(0.25f64..2.0)),
            1 => DecoderConfig::adaptive(rng.gen_range(0.25f64..2.0), rng.gen_range(1usize..5)),
            _ => DecoderConfig::union_find(rng.gen_range(2.0f64..16.0)),
        };
        for scheduler in [SchedulerKind::Rescq, SchedulerKind::Greedy] {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .decoder(decoder)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let r = simulate(&circuit, &config).unwrap();
            assert_eq!(
                r.counters.decode_windows,
                r.decode_latency.count(),
                "{scheduler}: every submitted window must be decoded and consumed"
            );
            assert_eq!(r.counters.decode_windows, r.counters.injections);
        }
    });
}

/// The tentpole invariant of the reservation-ledger scheduling core: with
/// preemption enabled on constrained (compressed) fabrics, every run
/// terminates with all gates executed — no deadlock — and the wait-for
/// graph stays acyclic throughout (the engine `debug_assert`s
/// `ReservationLedger::is_acyclic()` after every applied preemption, so in
/// these debug-profile runs a violation aborts the case). 104 seeded cases
/// of random rotation+CNOT workloads across compression levels, plus the
/// preemption counters accumulated to prove the mechanism is exercised.
#[test]
fn constrained_preemption_terminates_and_stays_acyclic() {
    let mut preemption_activity: u64 = 0;
    for case in 0..104u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xACE5_0000 ^ case);
        let n = rng.gen_range(4u32..10);
        let len = rng.gen_range(10usize..60);
        let gates: Vec<Gate> = (0..len).map(|_| arb_gate(&mut rng, n)).collect();
        let circuit = Circuit::from_gates(n, gates).unwrap();
        let compression = [0.5, 0.75, 1.0][(case % 3) as usize];
        let config = SimConfig::builder()
            .scheduler(SchedulerKind::Rescq)
            .compression(compression)
            .seed(rng.gen_range(0u64..1000))
            .max_cycles(500_000)
            .build();
        let report = simulate(&circuit, &config).unwrap_or_else(|e| {
            panic!("case {case} (compression {compression}) did not terminate: {e}")
        });
        assert_eq!(
            report.gates_executed,
            circuit.len(),
            "case {case}: gates lost"
        );
        preemption_activity +=
            report.counters.preemptions + report.counters.preemptions_rejected_cycle;
    }
    // Small random circuits rarely pile routes behind preparations, so the
    // corpus ends with structured benchmark workloads whose compressed
    // fabrics are known to provoke preemption attempts (both applied and
    // cycle-rejected ones); the same termination/completeness assertions
    // apply.
    for (name, compression, seed) in [
        ("qft_n18", 0.75, 60u64),
        ("qft_n18", 0.5, 62),
        ("gcm_n13", 0.75, 60),
    ] {
        let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
        let config = SimConfig::builder()
            .scheduler(SchedulerKind::Rescq)
            .compression(compression)
            .seed(seed)
            .max_cycles(500_000)
            .build();
        let report = simulate(&circuit, &config)
            .unwrap_or_else(|e| panic!("{name}@{compression}: did not terminate: {e}"));
        assert_eq!(report.gates_executed, circuit.len());
        preemption_activity +=
            report.counters.preemptions + report.counters.preemptions_rejected_cycle;
    }
    assert!(
        preemption_activity > 0,
        "the corpus must exercise the preemption machinery at least once"
    );
}

/// The sharded-engine determinism contract: for random shard counts ×
/// constrained workloads, every run terminates with every gate executed,
/// the ledger stays acyclic across cross-shard preemptions (the engine
/// `debug_assert`s `ReservationLedger::is_acyclic()` after every applied
/// preemption, so these debug-profile runs abort on a violation), and the
/// schedule is **byte-identical to the 1-thread run** — total rounds,
/// latency histograms, RNG-dependent failure counts, every counter. The
/// `engine_threads` report field is the one legitimate difference, so it is
/// normalised before comparison. Thread counts above the region count
/// exercise the executor clamp; `0` exercises auto-detection.
#[test]
fn sharded_engine_is_thread_count_invariant() {
    let mut cross_shard_activity = 0u64;
    for case in 0..20u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5AAD_0000 ^ case);
        let n = rng.gen_range(4u32..12);
        let len = rng.gen_range(10usize..50);
        let gates: Vec<Gate> = (0..len).map(|_| arb_gate(&mut rng, n)).collect();
        let circuit = Circuit::from_gates(n, gates).unwrap();
        let compression = [0.0, 0.5, 0.75, 1.0][(case % 4) as usize];
        let seed = rng.gen_range(0u64..1000);
        let threads = [2usize, 3, 4, 8, 0][(case % 5) as usize];
        let build = |t: usize| {
            SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .compression(compression)
                .engine_threads(t)
                .seed(seed)
                .max_cycles(500_000)
                .build()
        };
        let reference = simulate(&circuit, &build(1))
            .unwrap_or_else(|e| panic!("case {case}: 1-thread run failed: {e}"));
        assert_eq!(reference.gates_executed, circuit.len(), "case {case}");
        let sharded = simulate(&circuit, &build(threads))
            .unwrap_or_else(|e| panic!("case {case} ({threads} threads): {e}"));
        let mut normalised = sharded.clone();
        normalised.engine_threads = reference.engine_threads;
        assert_eq!(
            normalised, reference,
            "case {case}: {threads}-thread schedule diverged from the 1-thread run"
        );
        cross_shard_activity +=
            reference.counters.claims_cross_shard + reference.counters.preemptions_cross_shard;
    }
    // Structured benchmarks whose paths are known to span several regions,
    // so the corpus provably exercises cross-shard arbitration.
    for (name, compression, seed) in [("qft_n18", 0.5, 7u64), ("wstate_n27", 0.0, 7)] {
        let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
        let build = |t: usize| {
            SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .compression(compression)
                .engine_threads(t)
                .seed(seed)
                .max_cycles(500_000)
                .build()
        };
        let reference = simulate(&circuit, &build(1)).unwrap();
        for threads in [2usize, 4] {
            let mut sharded = simulate(&circuit, &build(threads)).unwrap();
            sharded.engine_threads = reference.engine_threads;
            assert_eq!(sharded, reference, "{name}@{compression} x{threads}");
        }
        cross_shard_activity +=
            reference.counters.claims_cross_shard + reference.counters.preemptions_cross_shard;
    }
    assert!(
        cross_shard_activity > 0,
        "the corpus must cross shard boundaries at least once"
    );
    // Class-aware runs obey the same contract: classification, region
    // overrides and class preemptions are pure functions of circuit +
    // fabric, so a lattice-enabled schedule is thread-count invariant too —
    // and the factory workload provably exercises class preemptions.
    {
        use rescq_repro::core::ClassLattice;
        let circuit = rescq_repro::workloads::generate("factory_n12", 1).unwrap();
        let build = |t: usize| {
            SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .compression(0.25)
                .priority_classes(Some(ClassLattice::default()))
                .engine_threads(t)
                .seed(5)
                .max_cycles(500_000)
                .build()
        };
        let reference = simulate(&circuit, &build(1)).unwrap();
        assert!(
            reference.counters.preemptions_class > 0,
            "the priority case must exercise class preemption"
        );
        for threads in [2usize, 4] {
            let mut sharded = simulate(&circuit, &build(threads)).unwrap();
            sharded.engine_threads = reference.engine_threads;
            assert_eq!(sharded, reference, "factory_n12 priority x{threads}");
        }
    }
}

/// Seeded stress for the lock-free proposal-ring handoff: congested
/// compressed fabrics run at 2 and 4 threads for thousands of dispatch
/// passes. The ring's capacity is the ancilla count rounded up to a power
/// of two and its head index only ever grows (slots recycle by masking),
/// so a run whose committed actions outnumber the fabric's ancillas — every
/// one of these, by orders of magnitude — wraps the ring repeatedly; the
/// wrap mechanics themselves are unit-pinned in `shard.rs`
/// (`proposal_ring_wraps_across_passes`). On top of that the corpus must
/// exercise cross-shard preemption, and every sharded schedule must stay
/// byte-identical to the serial engine's.
#[test]
fn proposal_ring_stress_wraps_and_preserves_bit_identity() {
    let mut cross_shard_preemptions = 0u64;
    for (name, compression, seed) in [
        ("qft_n18", 0.5, 7u64),
        ("qft_n18", 0.75, 11),
        ("factory_n12", 0.25, 5),
        ("wstate_n27", 0.5, 3),
    ] {
        let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
        let build = |t: usize| {
            SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .compression(compression)
                .engine_threads(t)
                .seed(seed)
                .max_cycles(500_000)
                .build()
        };
        let reference = simulate(&circuit, &build(1))
            .unwrap_or_else(|e| panic!("{name}@{compression} serial: {e}"));
        assert_eq!(
            reference.gates_executed,
            circuit.len(),
            "{name}@{compression}"
        );
        // Far more committed proposals than any ring capacity for these
        // fabrics (the largest here is 54 ancillas → 64 slots): the pooled
        // runs below cannot avoid wrapping. Injections (RUS attempts) are
        // the proposal count's dominant term — factory circuits have few
        // gates but every rotation retries ~2 injections.
        assert!(
            reference.counters.injections > 128,
            "{name}@{compression}: {} injections is too few to force a ring wrap",
            reference.counters.injections
        );
        for threads in [2usize, 4] {
            let mut sharded = simulate(&circuit, &build(threads))
                .unwrap_or_else(|e| panic!("{name}@{compression} x{threads}: {e}"));
            sharded.engine_threads = reference.engine_threads;
            assert_eq!(
                sharded, reference,
                "{name}@{compression}: ring handoff diverged at {threads} threads"
            );
        }
        cross_shard_preemptions += reference.counters.preemptions_cross_shard;
    }
    assert!(
        cross_shard_preemptions > 0,
        "the stress corpus must exercise cross-shard preemption"
    );
}

/// Regression: the naive move-top-entry-to-back yield that was tried before
/// the ledger existed deadlocks on exactly this shape — one task's route
/// entries re-planned behind another task's preparations on two ancillas.
/// Reordering either queue alone would leave `1 → 2` on one ancilla and
/// `2 → 1` on the other: a wait-for cycle. The ledger must refuse both
/// reorders, and must allow the preemption again once the cross-queue
/// conflict is gone.
#[test]
fn ledger_rejects_naive_yield_deadlock_counterexample() {
    use rescq_repro::circuit::Angle as A;
    use rescq_repro::core::{Preemption, QueueEntry, ReservationLedger, Role, TaskId};
    let mut ledger = ReservationLedger::new(2);
    for a in 0..2u32 {
        ledger.push(a, QueueEntry::new(TaskId(2), Role::PrepZz, A::T));
        ledger.push(a, QueueEntry::new(TaskId(1), Role::Route, A::ZERO));
    }
    assert_eq!(ledger.try_preempt(TaskId(1), 0), Preemption::RejectedCycle);
    assert_eq!(ledger.try_preempt(TaskId(1), 1), Preemption::RejectedCycle);
    assert!(
        ledger.is_acyclic(),
        "rejected preemptions must change nothing"
    );
    assert_eq!(ledger.stats().preemptions_rejected_cycle, 2);
    // Once task 2's prep leaves the other ancilla, the same reorder is safe.
    ledger.remove_task(1, TaskId(2));
    assert!(matches!(
        ledger.try_preempt(TaskId(1), 0),
        Preemption::Applied { .. }
    ));
    assert!(ledger.is_acyclic());
    assert_eq!(ledger.stats().preemptions, 1);
}

/// The class-lattice degeneracy contract: when every entry carries the SAME
/// class — whichever class that is — the class-aware arbitration behaves
/// exactly like the seed (class-blind) ledger. Random op sequences (pushes,
/// pops, removals, preemption attempts with the default seniority test) are
/// replayed against one ledger per uniform class and against the default
/// ledger; every preemption outcome and every queue order must match, and
/// no class-granted preemption may ever be counted.
#[test]
fn uniform_class_ledgers_reproduce_the_seed_arbitration() {
    use rescq_repro::core::{QueueEntry, ReservationLedger, Role, TaskClass, TaskId};

    const ANCILLAS: usize = 4;
    let classes = [
        None, // the seed ledger: entries keep their default class
        Some(TaskClass::SPECULATIVE),
        Some(TaskClass::COMPUTE),
        Some(TaskClass::INJECTION),
        Some(TaskClass::FACTORY),
    ];
    for_each_case(
        "uniform_class_ledgers_reproduce_the_seed_arbitration",
        |rng| {
            // One RNG drives one op sequence, replayed against every ledger.
            let ops: Vec<(u32, u32, u32)> = (0..rng.gen_range(20usize..80))
                .map(|_| {
                    (
                        rng.gen_range(0u32..4),
                        rng.gen_range(0u32..ANCILLAS as u32),
                        rng.gen_range(0u32..12),
                    )
                })
                .collect();
            let mut ledgers: Vec<ReservationLedger> = classes
                .iter()
                .map(|_| ReservationLedger::new(ANCILLAS))
                .collect();
            for &(op, a, task) in &ops {
                let mut outcomes = Vec::new();
                for (ledger, class) in ledgers.iter_mut().zip(&classes) {
                    match op {
                        0 => {
                            let role = if task % 3 == 0 {
                                Role::Route
                            } else {
                                Role::PrepZz
                            };
                            let angle = rescq_repro::circuit::Angle::T;
                            let mut entry = QueueEntry::new(TaskId(task), role, angle);
                            if let Some(c) = class {
                                entry = entry.with_class(*c);
                            }
                            ledger.push(a, entry);
                        }
                        1 => {
                            ledger.pop(a);
                        }
                        2 => {
                            ledger.remove_task(a, TaskId(task));
                        }
                        _ => {
                            outcomes.push(ledger.try_preempt(TaskId(task), a));
                        }
                    }
                }
                assert!(
                    outcomes.windows(2).all(|w| w[0] == w[1]),
                    "uniform-class preemption outcomes diverged: {outcomes:?}"
                );
            }
            // Every ledger ends in the same queue state with the same counters.
            let reference = &ledgers[0];
            for (ledger, class) in ledgers.iter().zip(&classes).skip(1) {
                for a in 0..ANCILLAS as u32 {
                    let got: Vec<_> = ledger.queue(a).iter().map(|e| e.task).collect();
                    let want: Vec<_> = reference.queue(a).iter().map(|e| e.task).collect();
                    assert_eq!(got, want, "queue {a} diverged under {class:?}");
                }
                assert_eq!(ledger.stats().preemptions, reference.stats().preemptions);
                assert_eq!(
                    ledger.stats().preemptions_rejected_cycle,
                    reference.stats().preemptions_rejected_cycle
                );
                assert_eq!(
                    ledger.stats().preemptions_class,
                    0,
                    "uniform classes must never grant a class preemption ({class:?})"
                );
            }
        },
    );
}

/// The union-find decoder is thread-count invariant: its sampled error
/// stream, cluster-growth work and emergent window latencies are keyed on
/// (channel seed, tile, per-tile window index), all functions of the
/// schedule — so a sharded run's report, decode-work counters included,
/// is byte-identical to the 1-thread run. The corpus must provably
/// exercise the real decoder (nonzero defects and growth steps).
#[test]
fn union_find_decoder_is_thread_count_invariant() {
    let mut decode_activity = 0u64;
    for case in 0..12u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x0F1D_0000 ^ case);
        let n = rng.gen_range(4u32..10);
        let len = rng.gen_range(10usize..40);
        let gates: Vec<Gate> = (0..len).map(|_| arb_gate(&mut rng, n)).collect();
        let circuit = Circuit::from_gates(n, gates).unwrap();
        // High physical error rates make every window carry defects, so the
        // invariance claim covers real cluster growth, not empty syndromes.
        let p = [1e-4, 0.02, 0.05][(case % 3) as usize];
        let seed = rng.gen_range(0u64..1000);
        let build = |t: usize| {
            SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .decoder(DecoderConfig::union_find(rng_free_throughput(case)))
                .physical_error_rate(p)
                .engine_threads(t)
                .seed(seed)
                .max_cycles(500_000)
                .build()
        };
        let reference = simulate(&circuit, &build(1))
            .unwrap_or_else(|e| panic!("case {case}: 1-thread run failed: {e}"));
        assert_eq!(reference.gates_executed, circuit.len(), "case {case}");
        decode_activity +=
            reference.counters.decode_defects + reference.counters.decode_growth_steps;
        for threads in [2usize, 4] {
            let mut sharded = simulate(&circuit, &build(threads))
                .unwrap_or_else(|e| panic!("case {case} ({threads} threads): {e}"));
            sharded.engine_threads = reference.engine_threads;
            assert_eq!(
                sharded, reference,
                "case {case}: {threads}-thread union-find schedule diverged"
            );
        }
    }
    assert!(
        decode_activity > 0,
        "the corpus must exercise real decode work at least once"
    );
}

/// Deterministic per-case throughput for the union-find invariance corpus
/// (kept outside the closure so every thread count sees the same value).
fn rng_free_throughput(case: u64) -> f64 {
    [2.0, 4.0, 8.0, 16.0][(case % 4) as usize]
}

/// The union-find decoder's latency is emergent, so it must respond to the
/// physics: mean window decode latency is monotone non-decreasing in the
/// physical error rate (more defects → more growth/peeling work) and in
/// the code distance (bigger detector graphs → more syndrome words and
/// longer windows). This is the honesty check on the whole
/// emergent-latency design — a hardcoded latency table would fail it.
#[test]
fn union_find_window_latency_is_monotone_in_p_and_d() {
    let circuit = rescq_repro::workloads::generate("dnn_n16", 1).unwrap();
    let mean_latency = |p: f64, d: u32| {
        let config = SimConfig::builder()
            .scheduler(SchedulerKind::Rescq)
            .decoder(DecoderConfig::union_find(4.0))
            .physical_error_rate(p)
            .distance(d)
            .seed(3)
            .max_cycles(500_000)
            .build();
        let r = simulate(&circuit, &config).unwrap();
        assert!(
            r.counters.decode_windows > 0,
            "p={p} d={d}: run must decode windows"
        );
        r.decode_latency.mean()
    };
    let by_p: Vec<f64> = [1e-4, 0.01, 0.05]
        .iter()
        .map(|&p| mean_latency(p, 5))
        .collect();
    for w in by_p.windows(2) {
        assert!(
            w[0] <= w[1],
            "mean window latency must not decrease with p: {by_p:?}"
        );
    }
    assert!(
        by_p[0] < by_p[2],
        "the p sweep must actually move the latency: {by_p:?}"
    );
    let by_d: Vec<f64> = [3u32, 5, 7]
        .iter()
        .map(|&d| mean_latency(0.02, d))
        .collect();
    for w in by_d.windows(2) {
        assert!(
            w[0] <= w[1],
            "mean window latency must not decrease with d: {by_d:?}"
        );
    }
    assert!(
        by_d[0] < by_d[2],
        "the d sweep must actually move the latency: {by_d:?}"
    );
}

/// The ideal decoder is invisible: explicitly configuring it reproduces the
/// default configuration's reports bit for bit, with zero stall rounds.
#[test]
fn ideal_decoder_reproduces_existing_results_exactly() {
    for_each_case("ideal_decoder_reproduces_existing_results_exactly", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        for scheduler in [
            SchedulerKind::Rescq,
            SchedulerKind::Greedy,
            SchedulerKind::Autobraid,
        ] {
            let base = SimConfig::builder()
                .scheduler(scheduler)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let explicit = SimConfig::builder()
                .scheduler(scheduler)
                .decoder(DecoderConfig::ideal())
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let a = simulate(&circuit, &base).unwrap();
            let b = simulate(&circuit, &explicit).unwrap();
            assert_eq!(a, b, "{scheduler}: ideal decoder must be invisible");
            assert_eq!(a.counters.decoder_stall_rounds, 0);
            assert_eq!(a.decoder_stall_cycles(), 0.0);
        }
    });
}
