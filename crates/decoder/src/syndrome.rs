//! Bit-packed syndrome words: the decoder's working representation of
//! detector outcomes and error/correction chains.
//!
//! A [`SyndromeBits`] is a fixed-length bit vector stored as `u64` words —
//! the same layout the firmware reference pushes through its SPMC ring
//! (syndrome packets are unpacked with `O(popcount)` work, touching set bits
//! only). Indices address detector nodes when the vector holds a syndrome
//! and graph edges when it holds an error or correction chain; the decoder
//! never mixes the two address spaces in one vector.

/// A fixed-length bit vector packed into `u64` words.
///
/// Cleared on construction; every operation is bounds-checked against the
/// declared length in debug builds. XOR (`^=` via [`SyndromeBits::xor_with`])
/// is the chain-composition operator: error ⊕ correction = residual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeBits {
    words: Vec<u64>,
    len: u32,
}

impl SyndromeBits {
    /// An all-zero vector of `len` bits.
    pub fn new(len: u32) -> Self {
        SyndromeBits {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the vector has zero addressable bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing `u64` words (the unit of decoder scan work).
    pub fn num_words(&self) -> u32 {
        self.words.len() as u32
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Toggles bit `i` and returns its new value.
    pub fn toggle(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Reads bit `i`.
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Number of set bits (word-parallel popcount).
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Parity of the whole vector (popcount mod 2).
    pub fn parity(&self) -> bool {
        self.popcount() % 2 == 1
    }

    /// Resets every bit to zero, keeping the allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// XORs `other` into `self` (chain composition). Lengths must match.
    pub fn xor_with(&mut self, other: &SyndromeBits) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// Iterates the indices of set bits in ascending order, `O(popcount)`
    /// per the unpack stage of the decoder pipeline: whole zero words are
    /// skipped and set bits are extracted with `trailing_zeros`.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Deterministic model-based check: every set/clear/toggle sequence on
    /// the packed words must round-trip against a naive `HashSet` model.
    #[test]
    fn packed_words_match_hashset_model() {
        let len = 203u32; // straddles word boundaries, last word partial
        let mut bits = SyndromeBits::new(len);
        let mut model: HashSet<u32> = HashSet::new();
        // SplitMix64-driven op sequence: index and op derived from the
        // stream so the case list is stable.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as u32 % len;
            match state % 3 {
                0 => {
                    bits.set(i);
                    model.insert(i);
                }
                1 => {
                    bits.clear(i);
                    model.remove(&i);
                }
                _ => {
                    let now = bits.toggle(i);
                    if now {
                        model.insert(i);
                    } else {
                        model.remove(&i);
                    }
                    assert_eq!(now, model.contains(&i));
                }
            }
            assert_eq!(bits.popcount() as usize, model.len());
        }
        for i in 0..len {
            assert_eq!(bits.get(i), model.contains(&i), "bit {i}");
        }
        let mut ones: Vec<u32> = model.iter().copied().collect();
        ones.sort_unstable();
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), ones);
        assert_eq!(bits.parity(), model.len() % 2 == 1);
    }

    #[test]
    fn xor_composes_chains() {
        let mut a = SyndromeBits::new(130);
        let mut b = SyndromeBits::new(130);
        for i in [0, 63, 64, 129] {
            a.set(i);
        }
        for i in [63, 64, 100] {
            b.set(i);
        }
        a.xor_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 100, 129]);
        // Self-inverse: XORing again restores the original.
        a.xor_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn clear_all_keeps_length() {
        let mut a = SyndromeBits::new(65);
        a.set(64);
        assert_eq!(a.num_words(), 2);
        a.clear_all();
        assert_eq!(a.popcount(), 0);
        assert_eq!(a.len(), 65);
    }
}
