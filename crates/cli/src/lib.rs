//! # rescq-cli
//!
//! Library side of the `sim` binary: the config-file dialect
//! ([`config_file`]) and the output helpers. The binary mirrors the paper
//! artifact's workflow: a config file (or a Table 3 benchmark name) in, a
//! summary plus optional CSV out, with subcommands regenerating each figure.

#![warn(missing_docs)]

pub mod config_file;
pub mod output;

pub use config_file::{parse_config, write_config, ConfigError, RunSpec};
