//! # rescq-workloads
//!
//! Regenerated benchmark circuits for every row of the RESCQ paper's Table 3
//! (QASMBench medium/large and SupermarQ families), compiled to the
//! Clifford+Rz basis `{rz, h, x, cx}`. Most families reproduce the paper's
//! `#Rz` / `#CNOT` counts exactly; see [`ALL_BENCHMARKS`] for the registry
//! and the per-family modules in [`families`] for the constructions.
//!
//! # Quick example
//!
//! ```
//! use rescq_workloads::{generate, ALL_BENCHMARKS};
//!
//! let qft = generate("qft_n29", 1).unwrap();
//! assert_eq!(qft.stats().cnot, 680); // Table 3, exactly
//! assert_eq!(ALL_BENCHMARKS.len(), 23);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
pub mod families;
mod suite;

pub use common::AngleStream;
pub use families::{
    decoder_stress, dnn, factory, gcm, hamiltonian_simulation, ising, multiplier,
    qaoa_fermionic_swap, qaoa_vanilla, qft, qugan, vqe, wstate,
};
pub use suite::{find, generate, BenchmarkSpec, Family, Suite, ALL_BENCHMARKS, REPRESENTATIVE};
