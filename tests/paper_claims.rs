//! The paper's qualitative claims, asserted end-to-end.

use rescq_repro::core::SchedulerKind;
use rescq_repro::rus::{clifford_t_overhead, PreparationModel, RusParams, TFactoryModel};
use rescq_repro::sim::runner::{geomean, run_seeds};
use rescq_repro::sim::SimConfig;

fn mean_cycles(name: &str, scheduler: SchedulerKind, seeds: u64) -> f64 {
    let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
    let config = SimConfig::builder().scheduler(scheduler).build();
    run_seeds(&circuit, &config, 1, seeds, 4)
        .unwrap()
        .mean_cycles()
}

fn compressed_mean_cycles(name: &str, scheduler: SchedulerKind, seeds: u64) -> f64 {
    let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
    let config = SimConfig::builder()
        .scheduler(scheduler)
        .compression(0.5)
        .build();
    run_seeds(&circuit, &config, 1, seeds, 4)
        .unwrap()
        .mean_cycles()
}

#[test]
fn rescq_wins_on_compressed_fabrics() {
    // Contribution 3 / Fig 9: "Even in the most constrained architectures,
    // RESCQ results in an average 1.65× improvement in cycle time." Until
    // the reservation-ledger scheduling core landed, this assertion was
    // pinned at near-parity (rescq ≤ 1.05× greedy) because the constrained
    // throttles of PR 1 forfeited eager correction preparation; with
    // ledger-mediated preemption the win is real. Pin: ≥ 1.15× per
    // representative benchmark at 50% grid compression, ratios printed so
    // the CI release gate can surface them.
    let mut speedups = Vec::new();
    for name in ["gcm_n13", "qft_n18", "wstate_n27"] {
        let greedy = compressed_mean_cycles(name, SchedulerKind::Greedy, 3);
        let rescq = compressed_mean_cycles(name, SchedulerKind::Rescq, 3);
        let ratio = greedy / rescq;
        println!(
            "compressed-fabric speedup {name}: {ratio:.2}x (rescq {rescq:.0} vs greedy {greedy:.0} cycles)"
        );
        assert!(
            ratio >= 1.15,
            "{name}: rescq must beat greedy by >=1.15x at 50% compression, got {ratio:.2}x"
        );
        speedups.push(ratio);
    }
    let gm = geomean(&speedups);
    println!("compressed-fabric geomean speedup: {gm:.2}x");
    assert!(gm >= 1.3, "geomean speedup {gm:.2} too small");
}

#[test]
fn class_aware_scheduling_beats_class_blind_on_factory_workload() {
    // The priority-class lattice's headline: on the `factory_nN` family
    // (T-gate factory tiles feeding a logical compute block), enabling the
    // class lattice (factory > injection > compute > speculative) beats the
    // class-blind ledger by ≥ 1.1× mean makespan at 25% grid compression —
    // factory rotations and their delivery CNOTs overtake lower-class
    // compute claims on the shared ancilla queues (cycle-checked reorders
    // only), keeping the |mθ⟩ pipelines on the critical path fed. Triage
    // (arXiv:2605.04459) motivates the same criticality-class split for
    // decode work.
    use rescq_repro::core::ClassLattice;
    let circuit = rescq_repro::workloads::generate("factory_n12", 1).unwrap();
    let mean = |lattice: Option<ClassLattice>| -> f64 {
        let config = SimConfig::builder()
            .compression(0.25)
            .priority_classes(lattice)
            .build();
        run_seeds(&circuit, &config, 1, 10, 4)
            .unwrap()
            .mean_cycles()
    };
    let blind = mean(None);
    let aware = mean(Some(ClassLattice::default()));
    let ratio = blind / aware;
    println!(
        "factory-workload class speedup: {ratio:.2}x (class-aware {aware:.0} vs class-blind {blind:.0} cycles)"
    );
    assert!(
        ratio >= 1.1,
        "class-aware scheduling must beat class-blind by >=1.1x on factory_n12 \
         at 25% compression, got {ratio:.2}x"
    );
}

#[test]
fn rescq_beats_baselines_on_representative_set() {
    // Fig 10's core claim on the §5.2 representative benchmarks.
    let mut speedups = Vec::new();
    for name in ["dnn_n16", "gcm_n13", "qft_n18"] {
        let greedy = mean_cycles(name, SchedulerKind::Greedy, 3);
        let autobraid = mean_cycles(name, SchedulerKind::Autobraid, 3);
        let rescq = mean_cycles(name, SchedulerKind::Rescq, 3);
        assert!(
            rescq < greedy,
            "{name}: rescq {rescq:.0} vs greedy {greedy:.0}"
        );
        assert!(
            rescq < autobraid,
            "{name}: rescq {rescq:.0} vs autobraid {autobraid:.0}"
        );
        speedups.push(greedy.min(autobraid) / rescq);
    }
    let gm = geomean(&speedups);
    assert!(gm > 1.5, "geomean speedup {gm:.2} too small");
}

#[test]
fn rz_dense_benchmarks_gain_most() {
    // dnn (≈6.3 Rz/CNOT) should gain more than qft (≈1 Rz/CNOT).
    let dnn = mean_cycles("dnn_n16", SchedulerKind::Greedy, 2)
        / mean_cycles("dnn_n16", SchedulerKind::Rescq, 2);
    let qft = mean_cycles("qft_n18", SchedulerKind::Greedy, 2)
        / mean_cycles("qft_n18", SchedulerKind::Rescq, 2);
    assert!(dnn > qft, "dnn speedup {dnn:.2} vs qft {qft:.2}");
}

#[test]
fn fig16_shape_holds() {
    // Appendix A.1: cycles fall with d, attempts rise with d; both worsen
    // with p.
    let mut last_cycles = f64::INFINITY;
    let mut last_attempts = 0.0;
    for d in [3, 5, 7, 9, 11, 13] {
        let m = PreparationModel::new(RusParams::new(d, 1e-4));
        assert!(m.expected_cycles() < last_cycles);
        assert!(m.expected_attempts() > last_attempts);
        last_cycles = m.expected_cycles();
        last_attempts = m.expected_attempts();
    }
}

#[test]
fn appendix_a2_overhead_in_paper_range() {
    let prep = PreparationModel::new(RusParams::new(3, 1e-3));
    let (lo, hi) = clifford_t_overhead(&prep, &TFactoryModel::default());
    // Paper: 20–150×; allow modelling slack at the edges.
    assert!(lo > 10.0 && lo < 40.0, "low {lo:.0}");
    assert!(hi > 100.0 && hi < 250.0, "high {hi:.0}");
}

#[test]
fn rescq_latency_distribution_is_continuous_and_bounded() {
    // Fig 5: RESCQ's latency distribution is continuous (queue waits) with a
    // strong mass at low cycle counts. Our reproduction concentrates less
    // sharply at exactly 2 cycles than the paper (our baselines need fewer
    // edge rotations; see EXPERIMENTS.md), so we assert the robust half of
    // the claim: a solid fraction completes in ≤2 cycles and the bulk within
    // ≤8, with the distribution spread over many distinct latencies.
    let circuit = rescq_repro::workloads::generate("qft_n18", 1).unwrap();
    let config = SimConfig::builder().build();
    let summary = run_seeds(&circuit, &config, 1, 3, 3).unwrap();
    let hist = summary.merged_cnot_latency();
    assert!(
        hist.fraction_at_most(2) > 0.10,
        "only {:.0}% of RESCQ CNOTs completed within 2 cycles",
        hist.fraction_at_most(2) * 100.0
    );
    assert!(
        hist.fraction_at_most(8) > 0.5,
        "only {:.0}% within 8 cycles",
        hist.fraction_at_most(8) * 100.0
    );
    let distinct = hist.iter().count();
    assert!(
        distinct > 5,
        "distribution too discrete: {distinct} buckets"
    );
}

#[test]
fn k_insensitivity() {
    // §5.2.3: performance deteriorates only negligibly as k grows.
    use rescq_repro::core::KPolicy;
    let circuit = rescq_repro::workloads::generate("wstate_n27", 1).unwrap();
    let run = |k: u32| {
        let config = SimConfig::builder().k_policy(KPolicy::Fixed(k)).build();
        run_seeds(&circuit, &config, 1, 3, 3).unwrap().mean_cycles()
    };
    let k25 = run(25);
    let k200 = run(200);
    assert!(
        k200 < k25 * 1.5,
        "k=200 ({k200:.0}) should stay near k=25 ({k25:.0})"
    );
}
