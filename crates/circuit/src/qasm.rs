//! Minimal OpenQASM 2.0 subset: enough to ingest QASMBench-style files that
//! are already in (or near) the Clifford+Rz basis, and to emit circuits for
//! consumption by external toolchains.
//!
//! Supported statements: `OPENQASM 2.0;`, `include "qelib1.inc";`,
//! `qreg name[n];`, `creg name[n];` (ignored), `barrier …;` (ignored),
//! `measure …;` (ignored), and the gates `h`, `x`, `z`, `s`, `sdg`, `t`,
//! `tdg`, `rz(expr)`, `u1(expr)`, `cx`, `swap` (expanded to 3 CNOTs).
//! Angle expressions accept floats and `±a*pi/b` forms with power-of-two `b`.

use crate::parser::parse_angle;
use crate::{Angle, Circuit, Gate};
use std::fmt;

/// Error from parsing OpenQASM text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line,
        message: message.into(),
    }
}

/// Parses a QASM angle expression: float, or `a*pi/b`-style with
/// power-of-two `b` (kept exact), or generic `a*pi/b` (evaluated to radians).
fn parse_qasm_angle(expr: &str, line: usize) -> Result<Angle, ParseQasmError> {
    let e = expr.trim();
    if let Ok(a) = parse_angle(e) {
        return Ok(a);
    }
    // Generic m*pi/n with non-power-of-two n → radians.
    let (neg, e2) = match e.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, e),
    };
    if let Some((num_part, den_part)) = e2.split_once('/') {
        let num: f64 = if num_part == "pi" {
            std::f64::consts::PI
        } else if let Some(n) = num_part.strip_suffix("*pi") {
            n.parse::<f64>()
                .map_err(|_| err(line, format!("bad angle `{e}`")))?
                * std::f64::consts::PI
        } else {
            num_part
                .parse()
                .map_err(|_| err(line, format!("bad angle `{e}`")))?
        };
        let den: f64 = den_part
            .parse()
            .map_err(|_| err(line, format!("bad angle `{e}`")))?;
        let v = num / den;
        return Ok(Angle::radians(if neg { -v } else { v }));
    }
    Err(err(line, format!("bad angle `{e}`")))
}

/// Parses a register operand `name[idx]` and returns the global qubit index.
fn resolve_operand(
    op: &str,
    regs: &[(String, u32, u32)],
    line: usize,
) -> Result<u32, ParseQasmError> {
    let op = op.trim();
    let (name, rest) = op
        .split_once('[')
        .ok_or_else(|| err(line, format!("operand `{op}` must be indexed like q[0]")))?;
    let idx: u32 = rest
        .trim_end_matches(']')
        .parse()
        .map_err(|_| err(line, format!("bad index in `{op}`")))?;
    for (rname, base, size) in regs {
        if rname == name.trim() {
            if idx >= *size {
                return Err(err(line, format!("index {idx} out of range for `{rname}`")));
            }
            return Ok(base + idx);
        }
    }
    Err(err(line, format!("unknown register `{name}`")))
}

/// Parses an OpenQASM 2.0 program (the supported subset) into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unsupported gates, unknown registers or
/// malformed syntax.
///
/// # Example
///
/// ```
/// let src = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// h q[0];
/// cx q[0],q[1];
/// rz(pi/4) q[1];
/// "#;
/// let c = rescq_circuit::qasm::parse_qasm(src).unwrap();
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.stats().cnot, 1);
/// ```
pub fn parse_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut regs: Vec<(String, u32, u32)> = Vec::new();
    let mut total_qubits = 0u32;
    let mut gates: Vec<Gate> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let (name, size_part) = rest
                    .split_once('[')
                    .ok_or_else(|| err(lineno, "malformed qreg"))?;
                let size: u32 = size_part
                    .trim_end_matches(']')
                    .parse()
                    .map_err(|_| err(lineno, "malformed qreg size"))?;
                regs.push((name.trim().to_string(), total_qubits, size));
                total_qubits += size;
                continue;
            }
            if stmt.starts_with("creg")
                || stmt.starts_with("barrier")
                || stmt.starts_with("measure")
            {
                continue;
            }

            // Gate application: `name(params)? ops`.
            let (head, ops_str) = match stmt.find(|c: char| c.is_whitespace()) {
                Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
                    (&stmt[..pos], &stmt[pos..])
                }
                _ => {
                    // Parameterized with space inside parens is unusual; split
                    // at the closing paren instead.
                    match stmt.find(')') {
                        Some(p) => (&stmt[..=p], &stmt[p + 1..]),
                        None => return Err(err(lineno, format!("malformed statement `{stmt}`"))),
                    }
                }
            };
            let (gname, param) = match head.split_once('(') {
                Some((g, p)) => (g.trim(), Some(p.trim_end_matches(')').trim())),
                None => (head.trim(), None),
            };
            let ops: Vec<&str> = ops_str.split(',').map(str::trim).collect();
            let q = |i: usize| -> Result<u32, ParseQasmError> {
                resolve_operand(
                    ops.get(i)
                        .ok_or_else(|| err(lineno, format!("missing operand for `{gname}`")))?,
                    &regs,
                    lineno,
                )
            };
            match gname {
                "h" => gates.push(Gate::h(q(0)?)),
                "x" => gates.push(Gate::x(q(0)?)),
                "z" => gates.push(Gate::z(q(0)?)),
                "s" => gates.push(Gate::rz(q(0)?, Angle::S)),
                "sdg" => gates.push(Gate::rz(q(0)?, Angle::dyadic_pi(-1, 1))),
                "t" => gates.push(Gate::rz(q(0)?, Angle::T)),
                "tdg" => gates.push(Gate::rz(q(0)?, Angle::dyadic_pi(-1, 2))),
                "rz" | "u1" | "p" => {
                    let p =
                        param.ok_or_else(|| err(lineno, format!("`{gname}` needs a parameter")))?;
                    gates.push(Gate::rz(q(0)?, parse_qasm_angle(p, lineno)?));
                }
                "cx" | "CX" => gates.push(Gate::cnot(q(0)?, q(1)?)),
                "swap" => {
                    let (a, b) = (q(0)?, q(1)?);
                    gates.push(Gate::cnot(a, b));
                    gates.push(Gate::cnot(b, a));
                    gates.push(Gate::cnot(a, b));
                }
                other => return Err(err(lineno, format!("unsupported gate `{other}`"))),
            }
        }
    }

    Circuit::from_gates(total_qubits, gates).map_err(|e| err(0, e.to_string()))
}

/// Emits a circuit as an OpenQASM 2.0 program with a single register `q`.
pub fn write_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for g in circuit.gates() {
        match g {
            Gate::Rz { qubit, angle } => {
                out.push_str(&format!("rz({}) q[{}];\n", angle, qubit.0));
            }
            Gate::H { qubit } => out.push_str(&format!("h q[{}];\n", qubit.0)),
            Gate::X { qubit } => out.push_str(&format!("x q[{}];\n", qubit.0)),
            Gate::Z { qubit } => out.push_str(&format!("z q[{}];\n", qubit.0)),
            Gate::Cnot { control, target } => {
                out.push_str(&format!("cx q[{}],q[{}];\n", control.0, target.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/8) q[2];
t q[1]; sdg q[0];
barrier q;
measure q[0] -> c[0];
"#;
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.stats().cnot, 1);
        assert_eq!(c.stats().rz, 2); // pi/8 and t
        assert_eq!(c.stats().clifford_rz, 1); // sdg
    }

    #[test]
    fn multiple_registers_are_offset() {
        let src = "qreg a[2];\nqreg b[2];\ncx a[1],b[0];\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.gates()[0], Gate::cnot(1, 2));
    }

    #[test]
    fn swap_expands() {
        let c = parse_qasm("qreg q[2];\nswap q[0],q[1];\n").unwrap();
        assert_eq!(c.stats().cnot, 3);
    }

    #[test]
    fn generic_pi_fraction_becomes_radians() {
        let c = parse_qasm("qreg q[1];\nrz(2*pi/3) q[0];\n").unwrap();
        let a = c.gates()[0].angle().unwrap();
        assert!(!a.is_dyadic());
        assert!((a.to_radians() - 2.0 * std::f64::consts::PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_through_qasm() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, Angle::T).x(0);
        let qasm = write_qasm(&c);
        let back = parse_qasm(&qasm).unwrap();
        assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn unsupported_gate_errors() {
        let e = parse_qasm("qreg q[3];\nccx q[0],q[1],q[2];\n").unwrap_err();
        assert!(e.message.contains("ccx"));
    }

    #[test]
    fn out_of_range_index_errors() {
        let e = parse_qasm("qreg q[2];\nh q[2];\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
