//! Decoder-subsystem micro-benchmark: raw model submission throughput and
//! the full runtime submit/retire cycle, for each decoder kind.

use criterion::{criterion_group, criterion_main, Criterion};
use rescq_decoder::{
    AdaptiveDecoder, DecoderConfig, DecoderModel, DecoderRuntime, FixedLatencyDecoder, IdealDecoder,
};

const WINDOWS: u32 = 1024;
const TILES: u32 = 64;

fn drive_model(model: &mut dyn DecoderModel) -> u64 {
    let mut last = 0;
    for i in 0..WINDOWS {
        last = model.decode_ready_at(i % TILES, 7 + (i % 3) * 7, (i as u64) * 2);
    }
    last
}

fn benches(c: &mut Criterion) {
    c.bench_function("model_ideal_1k_windows", |b| {
        b.iter(|| drive_model(&mut IdealDecoder))
    });

    c.bench_function("model_fixed_1k_windows", |b| {
        b.iter(|| drive_model(&mut FixedLatencyDecoder::new(&DecoderConfig::fixed(0.5))))
    });

    c.bench_function("model_adaptive_1k_windows", |b| {
        b.iter(|| drive_model(&mut AdaptiveDecoder::new(&DecoderConfig::adaptive(0.5, 4))))
    });

    c.bench_function("runtime_submit_retire_1k_windows", |b| {
        b.iter(|| {
            let mut rt = DecoderRuntime::new(&DecoderConfig::adaptive(0.5, 4), 7);
            let mut consumed = 0u64;
            for i in 0..WINDOWS {
                let (id, ready) = rt.submit(i % TILES, 14, (i as u64) * 2);
                consumed += rt.retire(id, ready);
            }
            consumed
        })
    });
}

criterion_group! {
    name = decoder;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(decoder);
