//! The non-deterministic `|mθ⟩` preparation model (paper §2.2, Appendix A.1,
//! Fig 16).
//!
//! One ancilla patch embeds `(d²−1)/2` `[[4,1,1,2]]` subsystem codes that all
//! attempt to inject the rotation state in parallel (round 1). When any slot
//! passes its error-detection post-selection, the state is expanded to the
//! full distance-`d` patch and a second detection round is applied (round 2).
//! Both rounds must pass; an *attempt* = round 1 (repeated until a slot
//! passes) + one round-2 expansion. Round-2 failure restarts everything.
//!
//! The model exposes analytic expectations (for Fig 16 and for the
//! expected-free-time estimates in the scheduler) and seeded sampling (for the
//! engine).

use crate::{PrepCalibration, RusParams};
use rand::Rng;

/// Stochastic model of `|mθ⟩` preparation inside a single ancilla patch.
///
/// # Example
///
/// ```
/// use rescq_rus::{PreparationModel, RusParams};
///
/// let m = PreparationModel::new(RusParams::new(7, 1e-4));
/// assert!(m.expected_attempts() >= 1.0);
/// // Larger distance ⇒ more attempts but fewer cycles (Fig 16).
/// let m13 = PreparationModel::new(RusParams::new(13, 1e-4));
/// assert!(m13.expected_attempts() > m.expected_attempts());
/// assert!(m13.expected_cycles() < m.expected_cycles());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparationModel {
    params: RusParams,
    calibration: PrepCalibration,
    /// Per-slot round-1 success probability.
    q1: f64,
    /// Probability at least one slot passes round 1.
    p_any: f64,
    /// Round-2 expansion success probability.
    q2: f64,
}

impl PreparationModel {
    /// Builds the model with the default calibration (see `DESIGN.md`).
    pub fn new(params: RusParams) -> Self {
        Self::with_calibration(params, PrepCalibration::default())
    }

    /// Builds the model with explicit calibration constants.
    pub fn with_calibration(params: RusParams, calibration: PrepCalibration) -> Self {
        let p = params.physical_error_rate;
        let q1 = (1.0 - p).powf(calibration.c1);
        let slots = params.subsystem_slots() as f64;
        let p_any = 1.0 - (1.0 - q1).powf(slots);
        let d2 = (params.distance * params.distance) as f64;
        let q2 = (1.0 - p).powf(calibration.c2 * d2);
        PreparationModel {
            params,
            calibration,
            q1,
            p_any,
            q2,
        }
    }

    /// The substrate parameters.
    pub fn params(&self) -> RusParams {
        self.params
    }

    /// Per-slot round-1 success probability.
    pub fn slot_success(&self) -> f64 {
        self.q1
    }

    /// Probability that one attempt (round 1 pass + round 2 pass) succeeds.
    pub fn attempt_success(&self) -> f64 {
        // Round 1 is repeated until a slot passes, so an attempt's success is
        // governed by round 2 alone; `p_any` only affects attempt *duration*.
        self.q2
    }

    /// Expected number of attempts until success (Fig 16, right axis).
    pub fn expected_attempts(&self) -> f64 {
        1.0 / self.q2
    }

    /// Expected measurement rounds of a single attempt.
    pub fn expected_rounds_per_attempt(&self) -> f64 {
        self.calibration.rounds_round1 as f64 / self.p_any + self.calibration.rounds_round2 as f64
    }

    /// Expected measurement rounds until successful preparation.
    pub fn expected_rounds(&self) -> f64 {
        self.expected_attempts() * self.expected_rounds_per_attempt()
    }

    /// Expected lattice-surgery cycles until successful preparation
    /// (Fig 16, left axis): `O(α/d)` per attempt, so this *falls* as `d`
    /// grows even though attempts rise.
    pub fn expected_cycles(&self) -> f64 {
        self.expected_rounds() / self.params.distance as f64
    }

    /// Samples the number of round-1 trials until some slot passes.
    fn sample_round1_trials(&self, rng: &mut impl Rng) -> u64 {
        sample_geometric(rng, self.p_any)
    }

    /// Samples the total measurement rounds until preparation succeeds.
    ///
    /// The engine schedules a completion event this many rounds after the
    /// preparation starts; cancelled preparations simply discard the sample.
    pub fn sample_prep_rounds(&self, rng: &mut impl Rng) -> u64 {
        let mut rounds = 0u64;
        loop {
            rounds += self.sample_round1_trials(rng) * self.calibration.rounds_round1 as u64;
            rounds += self.calibration.rounds_round2 as u64;
            if rng.gen_bool(self.q2) {
                return rounds;
            }
        }
    }

    /// Samples the number of attempts until success (for Fig 16 Monte-Carlo
    /// validation).
    pub fn sample_attempts(&self, rng: &mut impl Rng) -> u64 {
        sample_geometric(rng, self.q2)
    }
}

/// Samples a geometric random variable: the number of Bernoulli(`p`) trials
/// up to and including the first success. Returns `u64::MAX`-capped values
/// for pathological `p`.
fn sample_geometric(rng: &mut impl Rng, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 1;
    }
    // Inverse-transform sampling keeps this O(1) regardless of p.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let trials = (u.ln() / (1.0 - p).ln()).ceil();
    (trials as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn attempts_increase_with_distance() {
        let p = 1e-4;
        let mut last = 0.0;
        for d in [3, 5, 7, 9, 11, 13] {
            let m = PreparationModel::new(RusParams::new(d, p));
            let a = m.expected_attempts();
            assert!(a >= 1.0);
            assert!(a > last, "attempts must rise with d: {a} at d={d}");
            last = a;
        }
    }

    #[test]
    fn cycles_decrease_with_distance() {
        let p = 1e-4;
        let mut last = f64::INFINITY;
        for d in [3, 5, 7, 9, 11, 13] {
            let m = PreparationModel::new(RusParams::new(d, p));
            let c = m.expected_cycles();
            assert!(c < last, "cycles must fall with d: {c} at d={d}");
            last = c;
        }
    }

    #[test]
    fn cycles_increase_with_error_rate() {
        let d = 7;
        let mut last = 0.0;
        for p in [1e-6, 1e-5, 1e-4, 1e-3] {
            let m = PreparationModel::new(RusParams::new(d, p));
            let c = m.expected_cycles();
            assert!(c > last, "cycles must rise with p: {c} at p={p}");
            last = c;
        }
    }

    #[test]
    fn attempts_near_one_for_typical_params() {
        // Appendix A.1: "expected attempts are close to 1 for most
        // combinations of d and p".
        let m = PreparationModel::new(RusParams::new(7, 1e-4));
        assert!(m.expected_attempts() < 1.1);
    }

    #[test]
    fn worst_case_prep_near_paper_estimate() {
        // Appendix A.2 uses ≈ 2.2 cycles as the worst-case preparation time
        // over the Fig 16 sweep (d = 3, p = 10⁻³ corner).
        let m = PreparationModel::new(RusParams::new(3, 1e-3));
        let c = m.expected_cycles();
        assert!((1.5..3.0).contains(&c), "worst-case cycles = {c}");
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let m = PreparationModel::new(RusParams::new(5, 1e-3));
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mut total_rounds = 0u64;
        let mut total_attempts = 0u64;
        for _ in 0..n {
            total_rounds += m.sample_prep_rounds(&mut rng);
            total_attempts += m.sample_attempts(&mut rng);
        }
        let mean_rounds = total_rounds as f64 / n as f64;
        let mean_attempts = total_attempts as f64 / n as f64;
        assert!(
            (mean_rounds - m.expected_rounds()).abs() / m.expected_rounds() < 0.05,
            "rounds: sampled {mean_rounds}, analytic {}",
            m.expected_rounds()
        );
        assert!(
            (mean_attempts - m.expected_attempts()).abs() / m.expected_attempts() < 0.05,
            "attempts: sampled {mean_attempts}, analytic {}",
            m.expected_attempts()
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let m = PreparationModel::new(RusParams::default());
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let sa: Vec<u64> = (0..50).map(|_| m.sample_prep_rounds(&mut a)).collect();
        let sb: Vec<u64> = (0..50).map(|_| m.sample_prep_rounds(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn geometric_sampler_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| sample_geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(sample_geometric(&mut rng, 1.0), 1);
    }
}
