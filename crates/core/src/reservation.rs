//! The reservation ledger: an explicit, checkable wait-for graph over the
//! per-ancilla queues, with seniority-safe preemption.
//!
//! RESCQ's per-ancilla FIFO queues (§4.1) keep the task-level wait-for
//! relation acyclic by construction: tasks are enqueued atomically in
//! scheduling order, so every queue agrees on the relative order of any two
//! tasks and every wait-for edge points from a younger task to an older one.
//! That invariant is also what made the scheduler fragile: *any* reordering
//! (yielding a speculative preparation to an older stalled CNOT, re-planning
//! a route into fresh queue positions) risks creating inconsistent orders
//! across ancillas — two tasks each waiting behind the other — and a naive
//! move-top-entry-to-back yield deadlocks exactly that way.
//!
//! [`ReservationLedger`] makes the relation first-class. It owns every
//! [`AncillaQueue`], assigns each entry a [`ReservationId`], and maintains
//! the wait-for multigraph incrementally as entries are pushed, popped,
//! removed and reordered: queue `[e₀, e₁, …]` contributes one `task(eⱼ) →
//! task(eᵢ)` edge for every `i < j` with distinct tasks ("`eⱼ` waits for
//! `eᵢ`"). [`ReservationLedger::try_preempt`] reorders an older stalled
//! task ahead of the younger speculative preparations blocking it **only
//! when an incremental cycle check proves the reversed edges keep the graph
//! acyclic** — the mechanism the naive yield lacked. Rejected preemptions
//! leave the ledger untouched and are counted, so schedulers can observe
//! how often the safety check bites.
//!
//! # The priority-class lattice
//!
//! Arbitration is two-layered. The *safety* layer never changes: a reorder
//! happens only when every displaced entry can structurally yield (a
//! preparation that is not executing and holds no finished state, or an
//! unused helper claim) **and** the incremental cycle check proves the
//! wait-for graph stays acyclic. Above it sits a *policy* layer: every
//! [`QueueEntry`] carries a [`TaskClass`] drawn from a small ordered
//! lattice ([`ClassLattice`], `factory > injection > compute > speculative`
//! by default, user-extensible), and [`ReservationLedger::try_preempt_with`]
//! applies one class-aware rule:
//!
//! - a **strictly higher** class may reorder ahead of a strictly lower one
//!   (seniority notwithstanding) — iff the cycle check passes;
//! - **equal** classes fall back to the caller's speculation test (strict
//!   seniority for [`ReservationLedger::try_preempt`]), exactly the
//!   pre-lattice behaviour, so runs where every entry carries the default
//!   class are bit-identical to the class-blind ledger;
//! - a **lower** class never displaces a higher one.
//!
//! This is how a T-gate factory region outranks logical compute without
//! touching the acyclicity machinery: urgency is expressed entirely in the
//! policy layer, and every reorder — class-driven or seniority-driven —
//! still goes through the same structural and cycle proofs.
//!
//! # Invariants
//!
//! 1. **Acyclicity** — the task wait-for graph is acyclic after every
//!    public mutation; [`ReservationLedger::is_acyclic`] checks it in
//!    O(V + E) for property tests and engine debug assertions.
//! 2. **Seniority** — plain pushes append in arrival order, and equal-class
//!    arbitration only ever lets *older* tasks overtake (or whatever the
//!    caller's stricter test allows), so FIFO runs are reorder-free.
//! 3. **Determinism** — the ledger holds no clocks, no randomness and no
//!    thread identity: the same op sequence yields the same queues, ids,
//!    graph and counters, which is what lets a sharded engine commit
//!    through it at a barrier and stay bit-identical for any thread count.

use crate::queue::{AncillaQueue, EntryStatus, QueueEntry, Role};
use crate::types::TaskId;
use rescq_circuit::Angle;
use std::collections::HashMap;
use std::str::FromStr;

/// Identifier of one queue reservation (unique within a ledger's lifetime).
///
/// Entries pushed through a [`ReservationLedger`] carry the id of the
/// reservation that backs them; entries constructed standalone carry
/// [`ReservationId::UNREGISTERED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReservationId(pub u64);

impl ReservationId {
    /// Placeholder for entries not (yet) registered with a ledger.
    pub const UNREGISTERED: ReservationId = ReservationId(0);
}

/// Identifier of one scheduling shard: a contiguous region of the ancilla
/// network served by one scheduling worker (the partition itself lives with
/// the engine; the ledger only tags claims and preemptions with the shards
/// involved so cross-shard arbitration is observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Priority class of one queue reservation: the rank of a task in the
/// [`ClassLattice`]. Higher ranks outrank lower ones in ledger arbitration
/// (see the module docs); equal ranks keep the seniority rule.
///
/// The named constants are the ranks of the **default** lattice. A custom
/// lattice re-maps names to ranks via [`ClassLattice::class_of`]; the
/// arbitration rule only ever compares ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskClass(pub u8);

impl TaskClass {
    /// Speculative work (e.g. a preemptively enqueued rotation whose
    /// predecessor gates are incomplete): yields to everything.
    pub const SPECULATIVE: TaskClass = TaskClass(0);
    /// Ordinary logical compute (CNOT surgeries, Hadamards) — the default
    /// class of every entry, so class-blind runs are uniform-`COMPUTE`.
    pub const COMPUTE: TaskClass = TaskClass(1);
    /// A ready continuous-angle injection (`|mθ⟩` consumption is the
    /// latency-critical feed-forward step).
    pub const INJECTION: TaskClass = TaskClass(2);
    /// T-gate factory work: rotation pipelines whose output feeds the
    /// compute block; outranks everything by default.
    pub const FACTORY: TaskClass = TaskClass(3);

    /// The number of per-class counter buckets tracked by [`LedgerStats`]
    /// (custom lattices deeper than this clamp into the top bucket).
    pub const TRACKED: usize = 4;

    /// The rank within the lattice (0 = lowest priority).
    pub fn rank(self) -> u8 {
        self.0
    }

    /// The [`LedgerStats::preemptions_by_class`] bucket of this class.
    pub fn bucket(self) -> usize {
        (self.0 as usize).min(Self::TRACKED - 1)
    }
}

impl Default for TaskClass {
    fn default() -> Self {
        TaskClass::COMPUTE
    }
}

impl std::fmt::Display for TaskClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// An ordered set of task classes: the priority lattice ledger arbitration
/// ranks reservations by.
///
/// The textual form lists class names from **highest to lowest** priority,
/// separated by `>` — the default lattice is
/// `factory>injection>compute>speculative`. Users may extend the lattice
/// with additional named classes (e.g.
/// `magic_state_cache>factory>injection>compute>speculative`) as long as
/// the four canonical names stay present: the scheduler maps its internal
/// task kinds onto those names via [`ClassLattice::factory`] & co, and a
/// region urgency override may name any class in the lattice.
///
/// # Example
///
/// ```
/// use rescq_core::{ClassLattice, TaskClass};
///
/// let lattice = ClassLattice::default();
/// assert_eq!(lattice.factory(), TaskClass::FACTORY);
/// assert!(lattice.factory() > lattice.compute());
/// assert_eq!(lattice.to_string(), "factory>injection>compute>speculative");
///
/// // User-extensible: extra classes slot anywhere in the order.
/// let custom: ClassLattice = "cache>factory>injection>compute>speculative"
///     .parse()
///     .unwrap();
/// assert!(custom.class_of("cache").unwrap() > custom.factory());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLattice {
    /// Class names in ascending rank order (index = rank).
    names: Vec<String>,
}

impl Default for ClassLattice {
    fn default() -> Self {
        ClassLattice {
            names: ["speculative", "compute", "injection", "factory"]
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

impl ClassLattice {
    /// The rank of the named class, if present.
    pub fn class_of(&self, name: &str) -> Option<TaskClass> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| TaskClass(i as u8))
    }

    /// Class names in ascending rank order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Number of classes in the lattice.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice is empty (never true for a parsed lattice).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn canonical(&self, name: &str) -> TaskClass {
        self.class_of(name)
            .expect("canonical classes are validated at parse time")
    }

    /// Rank of the canonical `speculative` class.
    pub fn speculative(&self) -> TaskClass {
        self.canonical("speculative")
    }

    /// Rank of the canonical `compute` class.
    pub fn compute(&self) -> TaskClass {
        self.canonical("compute")
    }

    /// Rank of the canonical `injection` class.
    pub fn injection(&self) -> TaskClass {
        self.canonical("injection")
    }

    /// Rank of the canonical `factory` class.
    pub fn factory(&self) -> TaskClass {
        self.canonical("factory")
    }

    /// Parses the shared configuration spelling used by every surface
    /// (CLI flag, config-file key, harness axis): `off` (case-insensitive)
    /// means class-blind arbitration (`None`), anything else must be a
    /// valid lattice.
    ///
    /// # Errors
    ///
    /// Returns the [`FromStr`] error message for an invalid lattice.
    pub fn parse_setting(s: &str) -> Result<Option<ClassLattice>, String> {
        if s.trim().eq_ignore_ascii_case("off") {
            return Ok(None);
        }
        s.parse::<ClassLattice>().map(Some)
    }

    /// The rank → canonical-counter-bucket map for this lattice
    /// ([`ReservationLedger::set_class_buckets`]): rank `r` counts toward
    /// the **highest canonical class at or below it**, so custom classes
    /// slotted between canonical ones attribute to their canonical floor
    /// and classes above `factory` clamp into the factory bucket — the
    /// named per-class counters stay truthful for any lattice.
    pub fn canonical_buckets(&self) -> Vec<u8> {
        let mut canonical: Vec<u8> = [
            self.speculative(),
            self.compute(),
            self.injection(),
            self.factory(),
        ]
        .iter()
        .map(|c| c.rank())
        .collect();
        canonical.sort_unstable();
        (0..self.len() as u8)
            .map(|rank| {
                let at_or_below = canonical.iter().filter(|&&c| c <= rank).count();
                (at_or_below.max(1) - 1).min(TaskClass::TRACKED - 1) as u8
            })
            .collect()
    }
}

impl std::fmt::Display for ClassLattice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, name) in self.names.iter().rev().enumerate() {
            if i > 0 {
                f.write_str(">")?;
            }
            f.write_str(name)?;
        }
        Ok(())
    }
}

impl FromStr for ClassLattice {
    type Err = String;

    /// Parses the `highest>…>lowest` spelling. Every name must be a
    /// non-empty `[a-z0-9_]` identifier, names must be unique, at most
    /// [`TaskClass`]`(u8)` many, and the four canonical names
    /// (`factory`, `injection`, `compute`, `speculative`) must all appear.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut names: Vec<String> = Vec::new();
        for part in s.split('>') {
            let name = part.trim().to_ascii_lowercase();
            if name.is_empty() {
                return Err(format!("empty class name in `{s}`"));
            }
            if !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                return Err(format!("bad class name `{name}` (use [a-z0-9_])"));
            }
            if names.contains(&name) {
                return Err(format!("duplicate class `{name}` in `{s}`"));
            }
            names.push(name);
        }
        if names.len() > u8::MAX as usize {
            return Err(format!("too many classes ({})", names.len()));
        }
        // Input is highest-first; store ascending (index = rank).
        names.reverse();
        let lattice = ClassLattice { names };
        for canonical in ["factory", "injection", "compute", "speculative"] {
            if lattice.class_of(canonical).is_none() {
                return Err(format!(
                    "lattice `{s}` is missing the canonical class `{canonical}`"
                ));
            }
        }
        Ok(lattice)
    }
}

/// Counters describing a ledger's preemption and wait-graph history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Preemptions applied (an older task reordered ahead of younger
    /// speculative preparations).
    pub preemptions: u64,
    /// Preemptions rejected because the reversed wait-for edges would have
    /// created a cycle (the naive-yield deadlock, caught).
    pub preemptions_rejected_cycle: u64,
    /// Applied preemptions whose target ancilla lay outside the preempting
    /// task's home shard ([`ReservationLedger::try_preempt_across`]).
    pub preemptions_cross_shard: u64,
    /// Claims registered on an ancilla hosted outside the claiming task's
    /// home shard ([`ReservationLedger::push_claim`]).
    pub claims_cross_shard: u64,
    /// Applied preemptions where the preemptor's [`TaskClass`] strictly
    /// outranked at least one displaced entry — reorders that seniority (or
    /// the caller's equal-class test) alone would not have granted. Always 0
    /// when every entry carries the same class (class-blind runs).
    pub preemptions_class: u64,
    /// Applied preemptions bucketed by the preemptor's class. With a
    /// bucket map installed ([`ReservationLedger::set_class_buckets`],
    /// built from [`ClassLattice::canonical_buckets`]) the four buckets
    /// are the canonical classes — `speculative, compute, injection,
    /// factory` — whatever ranks a custom lattice assigns them; without
    /// one, the raw rank clamps via [`TaskClass::bucket`]. Class-blind
    /// runs land everything in the default [`TaskClass::COMPUTE`] bucket.
    pub preemptions_by_class: [u64; TaskClass::TRACKED],
    /// Applied preemptions by the preemptor's **raw rank** — one bucket per
    /// lattice class, however deep the lattice, so custom classes beyond
    /// the canonical four are individually visible instead of collapsing
    /// into the clamped [`LedgerStats::preemptions_by_class`] top bucket.
    /// Pre-sized by [`ReservationLedger::set_class_buckets`] and grown on
    /// demand; index = rank.
    pub preemptions_by_rank: Vec<u64>,
    /// Largest number of distinct edges the wait-for graph ever held.
    pub waitgraph_peak_edges: u64,
}

/// One ledger arbitration event, recorded while the event log is enabled
/// ([`ReservationLedger::enable_event_log`]). The ledger has no clock;
/// consumers (the engine's telemetry drain) stamp events with simulation
/// time when they collect them via [`ReservationLedger::take_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerEvent {
    /// A reservation was registered on an ancilla queue.
    Claim {
        /// The claiming task.
        task: TaskId,
        /// The claimed ancilla.
        ancilla: u32,
        /// The ancilla lies outside the claiming task's home shard.
        cross_shard: bool,
    },
    /// A preemption was applied (queue reorder; graph proven acyclic).
    Preempted {
        /// The preempting task.
        task: TaskId,
        /// The reordered ancilla queue.
        ancilla: u32,
        /// The reorder was granted by the class lattice (see
        /// [`Preemption::Applied`]'s `class_won`).
        class_won: bool,
    },
    /// A preemption was rejected by the incremental acyclicity check.
    Rejected {
        /// The task whose reorder was refused.
        task: TaskId,
        /// The ancilla whose queue would have been reordered.
        ancilla: u32,
    },
    /// A wait-for edge was inserted: `waiter` enqueued behind `holder`
    /// on `ancilla`. Only *claim-time* edges are logged (one per
    /// distinct task ahead of the new entry) — enough to reconstruct
    /// blocking chains downstream without replaying queue mechanics.
    WaitEdge {
        /// The task that now waits.
        waiter: TaskId,
        /// The task it queued behind.
        holder: TaskId,
        /// The ancilla queue carrying the edge.
        ancilla: u32,
    },
}

/// Outcome of a [`ReservationLedger::try_preempt`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preemption {
    /// The reorder was applied; the graph is still acyclic. Carries the task
    /// whose entry was displaced from the queue top (its in-flight
    /// preparation, if any, must be cancelled by the caller).
    Applied {
        /// Task whose entry sat at the top before the reorder.
        displaced_top: TaskId,
        /// The reorder was granted by the priority-class lattice: the
        /// preemptor strictly outranked at least one displaced entry, so
        /// seniority (or the caller's equal-class test) alone would have
        /// refused it. Mirrors the [`LedgerStats::preemptions_class`]
        /// increment, per call.
        class_won: bool,
    },
    /// The reorder would have made the wait-for graph cyclic; nothing
    /// changed.
    RejectedCycle,
    /// The task has no entry here, is already at the top, or something ahead
    /// of it is not a preemptible speculative preparation (wrong role,
    /// already executing or holding a state, or not younger); nothing
    /// changed.
    NotEligible,
}

/// The reservation ledger: every ancilla queue plus the task-level wait-for
/// graph they imply, kept in sync incrementally.
///
/// # Example
///
/// ```
/// use rescq_circuit::Angle;
/// use rescq_core::{Preemption, QueueEntry, ReservationLedger, Role, TaskId};
///
/// let mut ledger = ReservationLedger::new(2);
/// // Task 1's speculative prep reached ancilla 0 first; task 0's CNOT
/// // route entry queued behind it.
/// ledger.push(0, QueueEntry::new(TaskId(1), Role::PrepZz, Angle::T));
/// ledger.push(0, QueueEntry::new(TaskId(0), Role::Route, Angle::ZERO));
/// // The older CNOT preempts: the reorder is provably cycle-free.
/// assert_eq!(
///     ledger.try_preempt(TaskId(0), 0),
///     Preemption::Applied { displaced_top: TaskId(1), class_won: false }
/// );
/// assert_eq!(ledger.queue(0).top().unwrap().task, TaskId(0));
/// assert!(ledger.is_acyclic());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReservationLedger {
    queues: Vec<AncillaQueue>,
    next_id: u64,
    /// Wait-for adjacency indexed by the waiter's raw task id: a flat
    /// `(holder, multiplicity)` list per waiter. An edge exists while any
    /// queue holds an entry of `waiter` behind one of `holder`. Lists are
    /// short (bounded by queue fan-out), so linear upsert beats a nested
    /// `HashMap` on the hot path and — together with `spare_edge_lists` —
    /// never churns the allocator at steady state.
    edges: Vec<Vec<(TaskId, u32)>>,
    /// Capacity-retaining edge lists recycled from completed tasks
    /// ([`Self::recycle_task`]); popped before a slot's first allocation.
    spare_edge_lists: Vec<Vec<(TaskId, u32)>>,
    /// Current number of distinct (waiter, holder) pairs.
    edge_count: u64,
    /// Bit `a` set iff ancilla `a`'s queue is non-empty — the §4.2 packed
    /// busy words. Engines scan these with word-parallel iteration instead
    /// of probing every (mostly empty) queue.
    nonempty: Vec<u64>,
    /// Bit `a` set iff ancilla `a` was touched since the consumer's last
    /// [`Self::clear_dirty`] — by any ledger mutation, or explicitly via
    /// [`Self::mark_dirty`] for state the ledger cannot see (fabric holds,
    /// preparation completions). Engines use this as the incremental
    /// dispatch frontier: an unmarked ancilla provably proposes the same
    /// (empty) action it proposed last pass, so only marked words need
    /// rescanning.
    dirty: Vec<u64>,
    /// Scratch buffers reused across calls so the steady-state ledger makes
    /// zero heap allocations (see `arena` module docs).
    scratch_tasks: Vec<TaskId>,
    scratch_pairs_old: Vec<(TaskId, TaskId)>,
    scratch_pairs_new: Vec<(TaskId, TaskId)>,
    scratch_displaced: Vec<(TaskId, u32)>,
    scratch_stack: Vec<TaskId>,
    scratch_seen: crate::arena::Bitset,
    /// Rank → counter-bucket map for [`LedgerStats::preemptions_by_class`]
    /// (empty = raw-rank clamping via [`TaskClass::bucket`]). Affects
    /// counters only, never arbitration.
    class_buckets: Vec<u8>,
    /// Arbitration event log, `None` (and cost-free) unless a consumer
    /// called [`Self::enable_event_log`].
    event_log: Option<Vec<LedgerEvent>>,
    stats: LedgerStats,
}

impl ReservationLedger {
    /// Creates a ledger over `num_ancillas` empty queues.
    pub fn new(num_ancillas: usize) -> Self {
        ReservationLedger {
            queues: vec![AncillaQueue::new(); num_ancillas],
            nonempty: vec![0u64; num_ancillas.div_ceil(64)],
            // Everything starts dirty: the first dispatch pass must examine
            // every ancilla once before the incremental frontier takes over.
            dirty: vec![u64::MAX; num_ancillas.div_ceil(64)],
            ..Default::default()
        }
    }

    /// Pre-sizes the per-task structures for task ids `0..n` so steady-state
    /// pushes and preemption checks never grow them. Engines call this once
    /// with the circuit's gate count.
    pub fn reserve_tasks(&mut self, n: usize) {
        if self.edges.len() < n {
            self.edges.resize_with(n, Vec::new);
        }
        self.scratch_seen.reserve(n);
        // Pre-size the mutation scratch to generous queue-depth bounds so
        // the buffers never grow mid-run: their high-water marks otherwise
        // arrive late (deep queues form only under congestion) and each
        // growth step would break the zero-allocation steady state.
        let depth = 64.min(n);
        self.scratch_tasks.reserve(depth);
        self.scratch_pairs_old.reserve(depth);
        self.scratch_pairs_new.reserve(depth);
        self.scratch_displaced.reserve(depth);
        self.scratch_stack.reserve(depth);
    }

    /// Returns `task`'s (drained) edge list to the recycling pool. Engines
    /// call this when a task completes, after its last queue entry is
    /// removed; the freed capacity is handed to the next task that needs
    /// one, so the edge map's footprint plateaus at the live-task high-water
    /// mark.
    pub fn recycle_task(&mut self, task: TaskId) {
        if let Some(list) = self.edges.get_mut(task.0 as usize) {
            if list.capacity() > 0 && list.is_empty() {
                self.spare_edge_lists.push(std::mem::take(list));
            }
        }
    }

    /// The packed queue-occupancy words: bit `a` of word `a / 64` is set iff
    /// ancilla `a`'s queue is non-empty. Stays exactly in sync with every
    /// push/pop/removal, letting dispatch scans skip empty queues 64 at a
    /// time.
    pub fn nonempty_words(&self) -> &[u64] {
        &self.nonempty
    }

    /// Marks ancilla `a` dirty: its dispatch-relevant state may have
    /// changed, so the next incremental scan must re-evaluate it. Every
    /// ledger mutation marks automatically; engines call this for changes
    /// the ledger cannot observe (fabric occupancy expiring, a preparation
    /// finishing, a held state being consumed).
    pub fn mark_dirty(&mut self, a: u32) {
        let w = (a / 64) as usize;
        if w >= self.dirty.len() {
            self.dirty.resize(w + 1, 0);
        }
        self.dirty[w] |= 1u64 << (a % 64);
    }

    /// The packed dirty words (bit `a` of word `a / 64`); same layout as
    /// [`Self::nonempty_words`].
    pub fn dirty_words(&self) -> &[u64] {
        &self.dirty
    }

    /// Clears the dirty set. Callers snapshot (or intersect) the words
    /// first, then clear, so mutations made while acting on the snapshot
    /// re-mark for the next pass.
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    fn set_nonempty_bit(&mut self, a: u32) {
        let w = (a / 64) as usize;
        if w >= self.nonempty.len() {
            self.nonempty.resize(w + 1, 0);
        }
        let bit = 1u64 << (a % 64);
        if self.queues[a as usize].is_empty() {
            self.nonempty[w] &= !bit;
        } else {
            self.nonempty[w] |= bit;
        }
    }

    /// Enables the arbitration event log: claims, applied preemptions and
    /// cycle-rejected reorders are appended to an internal buffer the
    /// consumer drains with [`Self::take_events`]. Counters and arbitration
    /// are unaffected — the log is observation only.
    pub fn enable_event_log(&mut self) {
        self.event_log.get_or_insert_with(Vec::new);
    }

    /// Drains the arbitration event log (empty when logging is disabled or
    /// nothing happened since the last drain). The internal buffer's
    /// allocation is handed to the caller; logging continues into a fresh
    /// one.
    pub fn take_events(&mut self) -> Vec<LedgerEvent> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    #[inline]
    fn log_event(&mut self, ev: LedgerEvent) {
        if let Some(log) = &mut self.event_log {
            log.push(ev);
        }
    }

    /// Installs the rank → bucket map used to attribute
    /// [`LedgerStats::preemptions_by_class`] (typically
    /// [`ClassLattice::canonical_buckets`], so the named buckets stay
    /// truthful for custom lattices). Counters only — arbitration always
    /// compares raw ranks.
    pub fn set_class_buckets(&mut self, buckets: Vec<u8>) {
        // One dynamic per-rank counter per lattice class, so deep custom
        // lattices report every rank individually (the canonical 4-bucket
        // array still clamps for CSV-compatible columns).
        if self.stats.preemptions_by_rank.len() < buckets.len() {
            self.stats.preemptions_by_rank.resize(buckets.len(), 0);
        }
        self.class_buckets = buckets;
    }

    /// The counter bucket of `class` under the installed map (falling back
    /// to raw-rank clamping).
    fn bucket_of(&self, class: TaskClass) -> usize {
        match self.class_buckets.get(class.rank() as usize) {
            Some(&b) => (b as usize).min(TaskClass::TRACKED - 1),
            None => class.bucket(),
        }
    }

    /// Number of ancilla queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Read access to ancilla `a`'s queue.
    pub fn queue(&self, a: u32) -> &AncillaQueue {
        &self.queues[a as usize]
    }

    /// Iterates `(ancilla, queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (u32, &AncillaQueue)> {
        self.queues.iter().enumerate().map(|(i, q)| (i as u32, q))
    }

    /// Ledger counters.
    pub fn stats(&self) -> LedgerStats {
        self.stats.clone()
    }

    /// Current number of distinct wait-for edges.
    pub fn current_edges(&self) -> u64 {
        self.edge_count
    }

    /// Appends `entry` to ancilla `a`'s queue, assigning it a fresh
    /// reservation id and inserting its wait-for edges. Returns the id.
    pub fn push(&mut self, a: u32, entry: QueueEntry) -> ReservationId {
        self.push_inner(a, entry, false)
    }

    fn push_inner(&mut self, a: u32, mut entry: QueueEntry, cross_shard: bool) -> ReservationId {
        self.mark_dirty(a);
        self.log_event(LedgerEvent::Claim {
            task: entry.task,
            ancilla: a,
            cross_shard,
        });
        self.next_id += 1;
        let id = ReservationId(self.next_id);
        entry.reservation = id;
        // Incremental edge insertion: the new back entry waits for every
        // distinct task already queued ahead of it.
        let mut waiters = std::mem::take(&mut self.scratch_tasks);
        waiters.clear();
        waiters.extend(
            self.queues[a as usize]
                .iter()
                .map(|e| e.task)
                .filter(|&t| t != entry.task),
        );
        for &holder in &waiters {
            self.log_event(LedgerEvent::WaitEdge {
                waiter: entry.task,
                holder,
                ancilla: a,
            });
            self.add_edge(entry.task, holder);
        }
        self.scratch_tasks = waiters;
        self.queues[a as usize].push(entry);
        self.set_nonempty_bit(a);
        id
    }

    /// [`Self::push`] tagged with the shards involved: `owner` is the home
    /// shard of the claiming task, `host` the shard hosting ancilla `a`.
    /// The claim itself is identical to a plain push — arbitration is by
    /// queue seniority and the wait-for graph, never by shard — but
    /// cross-shard claims are counted so a sharded engine can observe how
    /// often work crosses region boundaries (e.g. a CNOT route leaving its
    /// home region).
    pub fn push_claim(
        &mut self,
        a: u32,
        entry: QueueEntry,
        owner: ShardId,
        host: ShardId,
    ) -> ReservationId {
        let cross_shard = owner != host;
        if cross_shard {
            self.stats.claims_cross_shard += 1;
        }
        self.push_inner(a, entry, cross_shard)
    }

    /// Pops the top entry of ancilla `a`, releasing the edges it held.
    pub fn pop(&mut self, a: u32) -> Option<QueueEntry> {
        self.mutate(a, |q| q.pop())
    }

    /// Removes every entry of `task` from ancilla `a`'s queue, releasing the
    /// edges. Returns how many entries were removed.
    pub fn remove_task(&mut self, a: u32, task: TaskId) -> usize {
        if !self.queues[a as usize].contains_task(task) {
            return 0;
        }
        self.mutate(a, |q| q.remove_task(task))
    }

    /// Rewrites the ladder angle of `task`'s entry on ancilla `a` in place
    /// (§4.1's `Rθ → R2θ` update; queue position — and therefore the wait
    /// graph — is untouched).
    pub fn update_angle(&mut self, a: u32, task: TaskId, angle: Angle) -> bool {
        self.mark_dirty(a);
        self.queues[a as usize].update_angle(task, angle)
    }

    /// Rewrites the priority class of `task`'s entries on ancilla `a` in
    /// place (class *promotion* — e.g. a speculative rotation becoming
    /// runnable). Queue position and the wait graph are untouched; only
    /// future arbitration sees the new class.
    pub fn update_class(&mut self, a: u32, task: TaskId, class: TaskClass) -> bool {
        self.mark_dirty(a);
        self.queues[a as usize].update_class(task, class)
    }

    /// Sets the status of ancilla `a`'s top entry, if any.
    pub fn set_top_status(&mut self, a: u32, status: EntryStatus) {
        self.mark_dirty(a);
        self.queues[a as usize].set_status_at(0, status);
    }

    /// Sets the status of ancilla `a`'s top entry only when it belongs to
    /// `task`.
    pub fn set_top_status_if(&mut self, a: u32, task: TaskId, status: EntryStatus) {
        self.mark_dirty(a);
        if self.queues[a as usize]
            .top()
            .is_some_and(|e| e.task == task)
        {
            self.queues[a as usize].set_status_at(0, status);
        }
    }

    /// Attempts to reorder `task`'s entry on ancilla `a` to the top, ahead
    /// of the speculative preparations currently blocking it.
    ///
    /// Eligibility (checked first; failures return
    /// [`Preemption::NotEligible`] and change nothing): `task` must have an
    /// entry that is not already the top, and **every** entry ahead of it
    /// must be a speculative preparation of a strictly *younger* task that
    /// is not executing and not holding a finished state — seniority-safe
    /// means only older work may overtake, and only work that can actually
    /// yield.
    ///
    /// The reorder reverses wait-for edges (each displaced preparation now
    /// waits for `task`). Those insertions are committed only if an
    /// incremental cycle check proves the graph stays acyclic; otherwise the
    /// queue is restored and [`Preemption::RejectedCycle`] is returned —
    /// this is precisely the case where a naive yield would have deadlocked.
    pub fn try_preempt(&mut self, task: TaskId, a: u32) -> Preemption {
        self.try_preempt_with(task, a, |e| e.task > task)
    }

    /// [`Self::try_preempt_with`] tagged with the shards involved: `owner`
    /// is the preempting task's home shard, `host` the shard hosting
    /// ancilla `a`.
    ///
    /// Cross-shard preemptions go through exactly the same ledger-level
    /// arbitration — the structural eligibility check and the incremental
    /// acyclicity proof are shard-agnostic, which is what makes them safe
    /// regardless of which scheduling worker proposed the reorder — but
    /// applied reorders that crossed a shard boundary are counted in
    /// [`LedgerStats::preemptions_cross_shard`].
    pub fn try_preempt_across(
        &mut self,
        task: TaskId,
        a: u32,
        owner: ShardId,
        host: ShardId,
        may_displace: impl Fn(&QueueEntry) -> bool,
    ) -> Preemption {
        let outcome = self.try_preempt_with(task, a, may_displace);
        if owner != host {
            if let Preemption::Applied { .. } = outcome {
                self.stats.preemptions_cross_shard += 1;
            }
        }
        outcome
    }

    /// [`Self::try_preempt`] with a caller-supplied *equal-class*
    /// speculation test — the single class-aware arbitration rule every
    /// preemption entry point shares.
    ///
    /// The ledger always enforces the structural half of eligibility (every
    /// entry ahead is a preparation that is not executing and not holding a
    /// state, or an unused helper claim) and the acyclicity check. Above
    /// that, each displaced entry is judged by the [`TaskClass`] lattice:
    ///
    /// - the preemptor's class **strictly outranks** the entry's → the
    ///   entry yields (this is the reorder seniority alone would refuse —
    ///   counted in [`LedgerStats::preemptions_class`]);
    /// - **equal** classes → `may_displace` decides, exactly the
    ///   pre-lattice behaviour. The default [`Self::try_preempt`] passes
    ///   strict seniority (`prep.task > task`); an engine that knows more —
    ///   e.g. that a preparation's owner cannot inject yet because its
    ///   predecessor gates are incomplete — can widen the test without
    ///   touching the safety invariant;
    /// - the entry's class **outranks** the preemptor's → never displaced.
    ///
    /// The preemptor's class is read from its own entry in this queue, so
    /// class policy travels with the reservation; when every entry carries
    /// the default class the rule degenerates to the class-blind ledger
    /// bit for bit.
    pub fn try_preempt_with(
        &mut self,
        task: TaskId,
        a: u32,
        may_displace: impl Fn(&QueueEntry) -> bool,
    ) -> Preemption {
        let q = &self.queues[a as usize];
        let Some(pos) = q.position(task) else {
            return Preemption::NotEligible;
        };
        if pos == 0 {
            return Preemption::NotEligible;
        }
        let class = q.entry(task).expect("position implies entry").class;
        let mut class_win = false;
        for e in q.iter().take(pos) {
            // Preparations may yield while not yet done (no state is lost);
            // helper entries are pure claims and may always structurally
            // yield. Executing or state-holding entries never yield.
            let structurally_yields = (e.role.is_prep()
                && matches!(e.status, EntryStatus::Ready | EntryStatus::Preparing))
                || (e.role == Role::Helper && e.status == EntryStatus::Ready);
            let may_reorder = match class.cmp(&e.class) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => may_displace(e),
                std::cmp::Ordering::Less => false,
            };
            if !structurally_yields || !may_reorder {
                return Preemption::NotEligible;
            }
            class_win |= class > e.class;
        }
        let displaced_top = q.top().expect("pos > 0").task;
        // Incremental cycle check. The reorder changes exactly one set of
        // edges: each `task → p` pair this queue contributed (for every
        // entry `p` ahead of `task`) reverses into `p → task`. Adding
        // `p → task` closes a cycle iff `task` already reaches `p` without
        // the removed pairs — so one targeted reachability walk from `task`
        // (skipping this queue's doomed `task → p` multiplicities) decides
        // the whole reorder, touching only the reachable subgraph and
        // mutating nothing on rejection. This is the check whose absence
        // made the naive yield deadlock on inconsistent cross-ancilla
        // orders.
        let mut displaced = std::mem::take(&mut self.scratch_displaced);
        displaced.clear();
        for e in self.queues[a as usize].iter().take(pos) {
            match displaced.iter_mut().find(|d| d.0 == e.task) {
                Some(d) => d.1 += 1,
                None => displaced.push((e.task, 1)),
            }
        }
        let mut stack = std::mem::take(&mut self.scratch_stack);
        let mut seen = std::mem::take(&mut self.scratch_seen);
        let cyclic =
            Self::reaches_any_without(&self.edges, task, &displaced, &mut stack, &mut seen);
        self.scratch_stack = stack;
        self.scratch_seen = seen;
        self.scratch_displaced = displaced;
        if cyclic {
            self.stats.preemptions_rejected_cycle += 1;
            self.log_event(LedgerEvent::Rejected { task, ancilla: a });
            return Preemption::RejectedCycle;
        }
        self.mutate(a, |q| q.move_to_front(pos));
        debug_assert!(self.is_acyclic(), "accepted preemption broke acyclicity");
        // Displaced preparations restart from Ready when they return to
        // the top (their in-flight preparation is cancelled by the
        // caller via the returned `displaced_top`).
        for i in 1..=pos {
            self.queues[a as usize].set_status_at(i, EntryStatus::Ready);
        }
        self.stats.preemptions += 1;
        self.stats.preemptions_by_class[self.bucket_of(class)] += 1;
        let rank = class.rank() as usize;
        if self.stats.preemptions_by_rank.len() <= rank {
            self.stats.preemptions_by_rank.resize(rank + 1, 0);
        }
        self.stats.preemptions_by_rank[rank] += 1;
        if class_win {
            self.stats.preemptions_class += 1;
        }
        self.log_event(LedgerEvent::Preempted {
            task,
            ancilla: a,
            class_won: class_win,
        });
        Preemption::Applied {
            displaced_top,
            class_won: class_win,
        }
    }

    /// Whether `from` reaches any key of `doomed` in the wait-for graph
    /// *minus* the about-to-be-removed `from → key` multiplicities (the
    /// value is how many of that pair's edges the reorder deletes). Edges
    /// between other nodes — including this queue's surviving pairs — stay
    /// traversable. `stack`/`seen` are caller-recycled scratch.
    fn reaches_any_without(
        edges: &[Vec<(TaskId, u32)>],
        from: TaskId,
        doomed: &[(TaskId, u32)],
        stack: &mut Vec<TaskId>,
        seen: &mut crate::arena::Bitset,
    ) -> bool {
        stack.clear();
        seen.clear();
        stack.push(from);
        seen.insert(from.0 as usize);
        while let Some(u) = stack.pop() {
            let Some(succs) = edges.get(u.0 as usize) else {
                continue;
            };
            for &(v, count) in succs {
                let removed = if u == from {
                    doomed.iter().find(|d| d.0 == v).map_or(0, |d| d.1)
                } else {
                    0
                };
                if count <= removed {
                    continue; // every such edge disappears with the reorder
                }
                if doomed.iter().any(|d| d.0 == v) {
                    return true;
                }
                if !seen.contains(v.0 as usize) {
                    seen.insert(v.0 as usize);
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Whether the wait-for graph is acyclic (it always is after any public
    /// mutation; exposed for property tests and debug assertions).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-colour DFS over the adjacency map.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<TaskId, Colour> = HashMap::new();
        let starts: Vec<TaskId> = (0..self.edges.len())
            .filter(|&i| !self.edges[i].is_empty())
            .map(|i| TaskId(i as u32))
            .collect();
        for start in starts {
            if *colour.get(&start).unwrap_or(&Colour::White) != Colour::White {
                continue;
            }
            // Stack of (node, next-neighbour cursor).
            let mut stack: Vec<(TaskId, Vec<TaskId>)> = vec![(start, self.successors(start))];
            colour.insert(start, Colour::Grey);
            while let Some((node, succs)) = stack.last_mut() {
                if let Some(next) = succs.pop() {
                    match *colour.get(&next).unwrap_or(&Colour::White) {
                        Colour::Grey => return false,
                        Colour::Black => {}
                        Colour::White => {
                            colour.insert(next, Colour::Grey);
                            let s = self.successors(next);
                            stack.push((next, s));
                        }
                    }
                } else {
                    colour.insert(*node, Colour::Black);
                    stack.pop();
                }
            }
        }
        true
    }

    /// Ordered successor list of `task` (deterministic iteration).
    fn successors(&self, task: TaskId) -> Vec<TaskId> {
        let mut s: Vec<TaskId> = self
            .edges
            .get(task.0 as usize)
            .map(|l| l.iter().map(|e| e.0).collect())
            .unwrap_or_default();
        s.sort_unstable();
        s
    }

    /// Applies `f` to queue `a` and reconciles the wait-for graph with the
    /// queue's new contents (remove old contribution, insert new one).
    fn mutate<R>(&mut self, a: u32, f: impl FnOnce(&mut AncillaQueue) -> R) -> R {
        self.mark_dirty(a);
        let mut tasks = std::mem::take(&mut self.scratch_tasks);
        let mut old = std::mem::take(&mut self.scratch_pairs_old);
        let mut new = std::mem::take(&mut self.scratch_pairs_new);
        Self::queue_pairs_into(&self.queues[a as usize], &mut tasks, &mut old);
        let r = f(&mut self.queues[a as usize]);
        Self::queue_pairs_into(&self.queues[a as usize], &mut tasks, &mut new);
        if old != new {
            for &(w, h) in &old {
                self.remove_edge(w, h);
            }
            for &(w, h) in &new {
                self.add_edge(w, h);
            }
        }
        self.scratch_tasks = tasks;
        self.scratch_pairs_old = old;
        self.scratch_pairs_new = new;
        self.set_nonempty_bit(a);
        r
    }

    /// The (waiter, holder) pairs a queue contributes: entry `j` waits for
    /// every distinct-task entry `i < j`. Fills caller-recycled scratch.
    fn queue_pairs_into(
        q: &AncillaQueue,
        tasks: &mut Vec<TaskId>,
        out: &mut Vec<(TaskId, TaskId)>,
    ) {
        tasks.clear();
        tasks.extend(q.iter().map(|e| e.task));
        out.clear();
        for j in 1..tasks.len() {
            for i in 0..j {
                if tasks[i] != tasks[j] {
                    out.push((tasks[j], tasks[i]));
                }
            }
        }
    }

    fn add_edge(&mut self, waiter: TaskId, holder: TaskId) {
        let idx = waiter.0 as usize;
        if idx >= self.edges.len() {
            self.edges.resize_with(idx + 1, Vec::new);
        }
        let list = &mut self.edges[idx];
        if list.capacity() == 0 {
            match self.spare_edge_lists.pop() {
                Some(spare) => *list = spare,
                // Floor the first allocation at a typical fan-out bound so
                // lists rarely regrow; recycled lists keep whatever larger
                // capacity they reached.
                None => list.reserve(16),
            }
        }
        if list.len() == list.capacity() {
            // Jump straight to the floor instead of doubling through 2/4/8:
            // one amortizing step, then the capacity recycles forever.
            list.reserve(16.max(list.len()));
        }
        match list.iter_mut().find(|e| e.0 == holder) {
            Some(e) => e.1 += 1,
            None => {
                list.push((holder, 1));
                self.edge_count += 1;
                self.stats.waitgraph_peak_edges =
                    self.stats.waitgraph_peak_edges.max(self.edge_count);
            }
        }
    }

    fn remove_edge(&mut self, waiter: TaskId, holder: TaskId) {
        let Some(list) = self.edges.get_mut(waiter.0 as usize) else {
            debug_assert!(false, "removing unknown edge {waiter}->{holder}");
            return;
        };
        let Some(pos) = list.iter().position(|e| e.0 == holder) else {
            debug_assert!(false, "removing unknown edge {waiter}->{holder}");
            return;
        };
        list[pos].1 -= 1;
        if list[pos].1 == 0 {
            // Order within a list is irrelevant (reachability + sorted
            // `successors` are the only consumers), so `swap_remove` keeps
            // removal O(1) and never releases capacity.
            list.swap_remove(pos);
            self.edge_count -= 1;
        }
    }
}

// Send/Sync audit: a sharded engine hands read-only views of the ledger and
// its queues to scheduling workers on other threads, so every type on that
// path must be `Send + Sync`. Asserted at compile time — a field change that
// introduces interior mutability or a thread-bound type fails the build
// here, not in a data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReservationLedger>();
    assert_send_sync::<AncillaQueue>();
    assert_send_sync::<QueueEntry>();
    assert_send_sync::<EntryStatus>();
    assert_send_sync::<ReservationId>();
    assert_send_sync::<ShardId>();
    assert_send_sync::<TaskClass>();
    assert_send_sync::<ClassLattice>();
    assert_send_sync::<Preemption>();
    assert_send_sync::<LedgerStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Role;

    fn prep(task: u32) -> QueueEntry {
        QueueEntry::new(TaskId(task), Role::PrepZz, Angle::T)
    }

    fn route(task: u32) -> QueueEntry {
        QueueEntry::new(TaskId(task), Role::Route, Angle::ZERO)
    }

    #[test]
    fn push_assigns_fresh_reservation_ids() {
        let mut l = ReservationLedger::new(2);
        let a = l.push(0, route(0));
        let b = l.push(1, route(0));
        assert_ne!(a, b);
        assert_ne!(a, ReservationId::UNREGISTERED);
        assert_eq!(l.queue(0).top().unwrap().reservation, a);
    }

    #[test]
    fn fifo_pushes_keep_edges_younger_to_older() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(0));
        l.push(0, route(1));
        l.push(0, route(2));
        // Edges 1->0, 2->0, 2->1.
        assert_eq!(l.current_edges(), 3);
        assert!(l.is_acyclic());
        l.pop(0);
        assert_eq!(l.current_edges(), 1);
        l.remove_task(0, TaskId(2));
        assert_eq!(l.current_edges(), 0);
        assert_eq!(l.stats().waitgraph_peak_edges, 3);
    }

    #[test]
    fn duplicate_task_entries_contribute_no_self_edges() {
        let mut l = ReservationLedger::new(1);
        l.push(0, route(5));
        l.push(0, QueueEntry::new(TaskId(5), Role::EdgeRotate, Angle::ZERO));
        assert_eq!(l.current_edges(), 0);
        assert_eq!(l.remove_task(0, TaskId(5)), 2);
    }

    #[test]
    fn preempt_applies_when_cycle_free() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(3));
        l.push(0, prep(4));
        l.push(0, route(1));
        let got = l.try_preempt(TaskId(1), 0);
        assert_eq!(
            got,
            Preemption::Applied {
                displaced_top: TaskId(3),
                class_won: false
            }
        );
        let order: Vec<u32> = l.queue(0).iter().map(|e| e.task.0).collect();
        assert_eq!(order, vec![1, 3, 4]);
        assert!(l.is_acyclic());
        assert_eq!(l.stats().preemptions, 1);
        // Displaced preparations are reset to Ready.
        assert!(l
            .queue(0)
            .iter()
            .skip(1)
            .all(|e| e.status == EntryStatus::Ready));
    }

    #[test]
    fn preempt_requires_strict_seniority() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(1));
        l.push(0, route(2));
        // Task 2 is younger than the prep ahead of it: not eligible.
        assert_eq!(l.try_preempt(TaskId(2), 0), Preemption::NotEligible);
    }

    #[test]
    fn preempt_refuses_executing_and_holding_preps() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(5));
        l.push(0, route(1));
        l.set_top_status(0, EntryStatus::DonePreparing);
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::NotEligible);
        l.set_top_status(0, EntryStatus::Executing);
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::NotEligible);
        l.set_top_status(0, EntryStatus::Preparing);
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
    }

    #[test]
    fn preempt_rejects_the_naive_yield_deadlock() {
        // The counterexample that sank the naive move-top-to-back yield:
        // after a re-plan, task 1's route entries sit behind task 2's preps
        // on BOTH ancillas. Reordering either queue alone reverses only one
        // of the two `1 → 2` waits, leaving `1 → 2` (other queue) and
        // `2 → 1` (this queue) — a cycle, i.e. the naive yield's deadlock.
        let mut l = ReservationLedger::new(2);
        l.push(0, prep(2));
        l.push(0, route(1));
        l.push(1, prep(2));
        l.push(1, route(1));
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::RejectedCycle);
        assert_eq!(l.try_preempt(TaskId(1), 1), Preemption::RejectedCycle);
        assert_eq!(l.stats().preemptions_rejected_cycle, 2);
        // The ledger is untouched: still acyclic, original order intact.
        assert!(l.is_acyclic());
        let order: Vec<u32> = l.queue(0).iter().map(|e| e.task.0).collect();
        assert_eq!(order, vec![2, 1]);
        // Once task 2's prep on the *other* ancilla completes and its entry
        // leaves, the same preemption becomes safe.
        l.remove_task(1, TaskId(2));
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
        assert!(l.is_acyclic());
    }

    #[test]
    fn preempt_missing_or_top_entry_is_not_eligible() {
        let mut l = ReservationLedger::new(1);
        assert_eq!(l.try_preempt(TaskId(0), 0), Preemption::NotEligible);
        l.push(0, route(0));
        assert_eq!(l.try_preempt(TaskId(0), 0), Preemption::NotEligible);
    }

    #[test]
    fn cross_shard_preemptions_are_counted_but_arbitrated_identically() {
        // The same reorder, once within a shard and once across shards:
        // identical queue outcome, the cross-shard one counted.
        let mut l = ReservationLedger::new(2);
        l.push(0, prep(3));
        l.push(0, route(1));
        l.push(1, prep(4));
        l.push(1, route(2));
        let same =
            l.try_preempt_across(TaskId(1), 0, ShardId(0), ShardId(0), |e| e.task > TaskId(1));
        assert!(matches!(same, Preemption::Applied { .. }));
        let cross =
            l.try_preempt_across(TaskId(2), 1, ShardId(0), ShardId(1), |e| e.task > TaskId(2));
        assert!(matches!(cross, Preemption::Applied { .. }));
        assert_eq!(l.stats().preemptions, 2);
        assert_eq!(l.stats().preemptions_cross_shard, 1);
        // Rejections never count as cross-shard applications.
        let mut l2 = ReservationLedger::new(2);
        for a in 0..2u32 {
            l2.push(a, prep(2));
            l2.push(a, route(1));
        }
        let out =
            l2.try_preempt_across(TaskId(1), 0, ShardId(0), ShardId(1), |e| e.task > TaskId(1));
        assert_eq!(out, Preemption::RejectedCycle);
        assert_eq!(l2.stats().preemptions_cross_shard, 0);
    }

    #[test]
    fn cross_shard_claims_are_counted() {
        let mut l = ReservationLedger::new(2);
        let id = l.push_claim(0, route(0), ShardId(0), ShardId(0));
        assert_ne!(id, ReservationId::UNREGISTERED);
        l.push_claim(1, route(0), ShardId(0), ShardId(1));
        assert_eq!(l.stats().claims_cross_shard, 1);
        assert_eq!(l.queue(1).top().unwrap().task, TaskId(0));
    }

    #[test]
    fn lattice_parses_displays_and_validates() {
        let default = ClassLattice::default();
        assert_eq!(default.to_string(), "factory>injection>compute>speculative");
        assert_eq!(
            "factory>injection>compute>speculative"
                .parse::<ClassLattice>()
                .unwrap(),
            default
        );
        assert_eq!(default.speculative(), TaskClass::SPECULATIVE);
        assert_eq!(default.compute(), TaskClass::COMPUTE);
        assert_eq!(default.injection(), TaskClass::INJECTION);
        assert_eq!(default.factory(), TaskClass::FACTORY);
        assert_eq!(default.compute(), TaskClass::default());
        // User-extensible: extra classes may outrank factory.
        let custom: ClassLattice = "cache>factory>injection>compute>speculative"
            .parse()
            .unwrap();
        assert_eq!(custom.len(), 5);
        assert!(custom.class_of("cache").unwrap() > custom.factory());
        assert_eq!(custom.class_of("cache").unwrap().bucket(), 3, "clamped");
        // Round trip through Display.
        assert_eq!(custom.to_string().parse::<ClassLattice>().unwrap(), custom);
        // The shared config spelling: `off` (any case) = class-blind.
        assert_eq!(ClassLattice::parse_setting("off"), Ok(None));
        assert_eq!(ClassLattice::parse_setting(" OFF "), Ok(None));
        assert_eq!(
            ClassLattice::parse_setting("factory>injection>compute>speculative"),
            Ok(Some(default.clone()))
        );
        assert!(ClassLattice::parse_setting("nonsense").is_err());
        // Canonical names are mandatory; duplicates and bad names rejected.
        assert!("factory>compute>speculative"
            .parse::<ClassLattice>()
            .is_err());
        assert!("factory>factory>injection>compute>speculative"
            .parse::<ClassLattice>()
            .is_err());
        assert!("fac tory>injection>compute>speculative"
            .parse::<ClassLattice>()
            .is_err());
        assert!(">factory".parse::<ClassLattice>().is_err());
    }

    #[test]
    fn factory_class_preempts_where_seniority_would_refuse() {
        // An OLDER speculative prep sits ahead of a YOUNGER factory task.
        // Strict seniority rejects the reorder (the entry ahead is not
        // younger); the class lattice grants it — and the structural +
        // acyclicity machinery still runs unchanged underneath.
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(1).with_class(TaskClass::SPECULATIVE));
        l.push(0, prep(2).with_class(TaskClass::FACTORY));
        // Seniority-only (both entries forced to one class): refused.
        let mut blind = ReservationLedger::new(1);
        blind.push(0, prep(1));
        blind.push(0, prep(2));
        assert_eq!(blind.try_preempt(TaskId(2), 0), Preemption::NotEligible);
        // Class-aware: the factory entry overtakes the speculative claim.
        assert_eq!(
            l.try_preempt(TaskId(2), 0),
            Preemption::Applied {
                displaced_top: TaskId(1),
                class_won: true
            }
        );
        let order: Vec<u32> = l.queue(0).iter().map(|e| e.task.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert!(l.is_acyclic());
        assert_eq!(l.stats().preemptions, 1);
        assert_eq!(l.stats().preemptions_class, 1);
        assert_eq!(
            l.stats().preemptions_by_class,
            [0, 0, 0, 1],
            "bucketed under the factory rank"
        );
    }

    #[test]
    fn lower_class_never_displaces_higher() {
        // An older compute route behind a younger FACTORY prep: seniority
        // alone would grant the reorder, the lattice refuses it.
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(5).with_class(TaskClass::FACTORY));
        l.push(0, route(1).with_class(TaskClass::COMPUTE));
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::NotEligible);
        // Same shape with equal classes: today's seniority rule applies.
        let mut eq = ReservationLedger::new(1);
        eq.push(0, prep(5));
        eq.push(0, route(1));
        assert!(matches!(
            eq.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
        assert_eq!(
            eq.stats().preemptions_class,
            0,
            "equal classes: no class win"
        );
        assert_eq!(eq.stats().preemptions_by_class, [0, 1, 0, 0]);
    }

    #[test]
    fn class_preemption_still_cycle_checked() {
        // The naive-yield counterexample with a class advantage: class may
        // outrank, but the acyclicity proof still vetoes the reorder.
        let mut l = ReservationLedger::new(2);
        for a in 0..2u32 {
            l.push(a, prep(2).with_class(TaskClass::SPECULATIVE));
            l.push(a, route(1).with_class(TaskClass::FACTORY));
        }
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::RejectedCycle);
        assert_eq!(l.stats().preemptions_class, 0);
        assert_eq!(l.stats().preemptions_rejected_cycle, 1);
        // Structural safety also outranks class: an executing entry never
        // yields, whatever its class.
        let mut busy = ReservationLedger::new(1);
        busy.push(0, prep(3).with_class(TaskClass::SPECULATIVE));
        busy.push(0, route(1).with_class(TaskClass::FACTORY));
        busy.set_top_status(0, EntryStatus::Executing);
        assert_eq!(busy.try_preempt(TaskId(1), 0), Preemption::NotEligible);
    }

    #[test]
    fn class_promotion_rewrites_entries_in_place() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(1).with_class(TaskClass::COMPUTE));
        l.push(0, prep(2).with_class(TaskClass::SPECULATIVE));
        let edges = l.current_edges();
        // Promoted: position unchanged, graph unchanged, class visible to
        // future arbitration.
        assert!(l.update_class(0, TaskId(2), TaskClass::INJECTION));
        assert_eq!(l.queue(0).position(TaskId(2)), Some(1));
        assert_eq!(l.current_edges(), edges);
        assert_eq!(
            l.queue(0).entry(TaskId(2)).unwrap().class,
            TaskClass::INJECTION
        );
        assert!(matches!(
            l.try_preempt(TaskId(2), 0),
            Preemption::Applied { .. }
        ));
        assert!(!l.update_class(0, TaskId(9), TaskClass::FACTORY));
    }

    #[test]
    fn canonical_buckets_attribute_custom_lattices_truthfully() {
        // A custom class BELOW compute must not shift the canonical
        // columns: `background` attributes to the speculative bucket, the
        // canonical four keep their own buckets, and a class above factory
        // clamps into the factory bucket.
        let lattice: ClassLattice = "cache>factory>injection>compute>background>speculative"
            .parse()
            .unwrap();
        let buckets = lattice.canonical_buckets();
        assert_eq!(buckets.len(), 6);
        assert_eq!(buckets[lattice.speculative().rank() as usize], 0);
        assert_eq!(
            buckets[lattice.class_of("background").unwrap().rank() as usize],
            0
        );
        assert_eq!(buckets[lattice.compute().rank() as usize], 1);
        assert_eq!(buckets[lattice.injection().rank() as usize], 2);
        assert_eq!(buckets[lattice.factory().rank() as usize], 3);
        assert_eq!(
            buckets[lattice.class_of("cache").unwrap().rank() as usize],
            3
        );
        // Default lattice: identity.
        assert_eq!(
            ClassLattice::default().canonical_buckets(),
            vec![0, 1, 2, 3]
        );

        // And the ledger uses the map: a compute-rank-2 preemptor lands in
        // the compute bucket, not the injection column.
        let mut l = ReservationLedger::new(1);
        l.set_class_buckets(buckets);
        let spec = lattice.speculative();
        let compute = lattice.compute();
        l.push(0, prep(3).with_class(spec));
        l.push(0, route(1).with_class(compute));
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
        assert_eq!(l.stats().preemptions_by_class, [0, 1, 0, 0]);
    }

    #[test]
    fn deep_lattices_track_every_rank_dynamically() {
        // Six classes: the canonical 4-bucket array clamps `cache` (rank 5)
        // into the factory bucket, but the dynamic per-rank counters keep
        // each lattice class individually visible.
        let lattice: ClassLattice = "cache>factory>injection>compute>background>speculative"
            .parse()
            .unwrap();
        assert_eq!(lattice.len(), 6);
        let mut l = ReservationLedger::new(2);
        l.set_class_buckets(lattice.canonical_buckets());
        assert_eq!(l.stats().preemptions_by_rank, vec![0; 6], "pre-sized");
        let cache = lattice.class_of("cache").unwrap();
        assert_eq!(cache.rank(), 5);
        l.push(0, prep(9).with_class(lattice.speculative()));
        l.push(0, route(1).with_class(cache));
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied {
                class_won: true,
                ..
            }
        ));
        // And a canonical-factory preemption on the other queue.
        l.push(1, prep(9).with_class(lattice.speculative()));
        l.push(1, route(2).with_class(lattice.factory()));
        assert!(matches!(
            l.try_preempt(TaskId(2), 1),
            Preemption::Applied { .. }
        ));
        let stats = l.stats();
        // Clamped canonical columns: both land in the factory bucket.
        assert_eq!(stats.preemptions_by_class, [0, 0, 0, 2]);
        // Dynamic ranks: `factory` (rank 4) and `cache` (rank 5) distinct.
        assert_eq!(stats.preemptions_by_rank, vec![0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn event_log_records_claims_and_arbitration() {
        let mut l = ReservationLedger::new(2);
        // Disabled: no events, no cost.
        l.push(0, prep(3));
        assert!(l.take_events().is_empty());
        l.enable_event_log();
        l.push_claim(1, route(1), ShardId(0), ShardId(1));
        l.push(0, route(1));
        assert_eq!(l.try_preempt(TaskId(2), 0), Preemption::NotEligible);
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
        let events = l.take_events();
        assert_eq!(
            events,
            vec![
                LedgerEvent::Claim {
                    task: TaskId(1),
                    ancilla: 1,
                    cross_shard: true
                },
                LedgerEvent::Claim {
                    task: TaskId(1),
                    ancilla: 0,
                    cross_shard: false
                },
                // Task 1 queued behind task 3's pre-existing prep.
                LedgerEvent::WaitEdge {
                    waiter: TaskId(1),
                    holder: TaskId(3),
                    ancilla: 0
                },
                LedgerEvent::Preempted {
                    task: TaskId(1),
                    ancilla: 0,
                    class_won: false
                },
            ],
            "NotEligible probes are not arbitration events"
        );
        assert!(l.take_events().is_empty(), "drained");
        // Cycle rejections are logged too.
        let mut l2 = ReservationLedger::new(2);
        l2.enable_event_log();
        for a in 0..2u32 {
            l2.push(a, prep(2));
            l2.push(a, route(1));
        }
        let _ = l2.take_events();
        assert_eq!(l2.try_preempt(TaskId(1), 0), Preemption::RejectedCycle);
        assert_eq!(
            l2.take_events(),
            vec![LedgerEvent::Rejected {
                task: TaskId(1),
                ancilla: 0
            }]
        );
    }

    #[test]
    fn event_log_records_one_wait_edge_per_distinct_holder() {
        let mut l = ReservationLedger::new(1);
        l.enable_event_log();
        l.push(0, prep(1));
        l.push(0, prep(2));
        l.push(0, route(3));
        let edges: Vec<LedgerEvent> = l
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, LedgerEvent::WaitEdge { .. }))
            .collect();
        // Entry 2 waits on 1; entry 3 waits on both 1 and 2 — and the
        // logged edges mirror the live graph's insertions exactly.
        assert_eq!(
            edges,
            vec![
                LedgerEvent::WaitEdge {
                    waiter: TaskId(2),
                    holder: TaskId(1),
                    ancilla: 0
                },
                LedgerEvent::WaitEdge {
                    waiter: TaskId(3),
                    holder: TaskId(1),
                    ancilla: 0
                },
                LedgerEvent::WaitEdge {
                    waiter: TaskId(3),
                    holder: TaskId(2),
                    ancilla: 0
                },
            ]
        );
        assert_eq!(l.current_edges(), 3);
    }

    #[test]
    fn mixed_classes_ahead_need_every_entry_displaceable() {
        // A factory entry ahead blocks an injection preemptor even though a
        // speculative entry ahead would yield: all-or-nothing, like the
        // structural rule.
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(1).with_class(TaskClass::SPECULATIVE));
        l.push(0, prep(2).with_class(TaskClass::FACTORY));
        l.push(0, route(3).with_class(TaskClass::INJECTION));
        assert_eq!(l.try_preempt(TaskId(3), 0), Preemption::NotEligible);
    }

    #[test]
    fn angle_update_keeps_graph_untouched() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(0));
        l.push(0, prep(1));
        let before = l.current_edges();
        assert!(l.update_angle(0, TaskId(1), Angle::S));
        assert_eq!(l.current_edges(), before);
        assert_eq!(l.queue(0).entry(TaskId(1)).unwrap().angle, Angle::S);
    }
}
