//! A brute-force minimum-weight reference decoder for differential testing.
//!
//! Exhaustively optimal and exponentially slow: BFS shortest paths between
//! every pair of defects (routes through the virtual boundary vertices are
//! allowed — a chain through a boundary is two boundary-terminated chains),
//! then a bitmask DP over all defect pairings, each defect pairing with
//! another defect or with its nearest boundary. The union-find decoder is
//! differentially tested against this oracle: wherever minimum-weight
//! decoding preserves the logical state, union-find must too.

use crate::graph::DetectorGraph;
use crate::syndrome::SyndromeBits;

/// Largest defect count the exhaustive pairing accepts (the DP is
/// `O(3^n)`-ish over `2^n` masks).
pub const MAX_EXACT_DEFECTS: usize = 16;

/// BFS shortest-path tree from `src` over the whole graph, boundary
/// vertices included. Returns `(dist, parent_edge)` per node
/// (`u32::MAX` = unreachable / root).
fn bfs(graph: &DetectorGraph, src: u32) -> (Vec<u32>, Vec<u32>) {
    let n = graph.num_nodes() as usize;
    let mut dist = vec![u32::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &e in graph.incident(v) {
            let [a, b] = graph.endpoints(e);
            let w = if a == v { b } else { a };
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                parent_edge[w as usize] = e;
                queue.push_back(w);
            }
        }
    }
    (dist, parent_edge)
}

/// XORs the BFS-tree path from `src`'s tree root down to `dst` into `chain`.
fn xor_path(
    graph: &DetectorGraph,
    parent_edge: &[u32],
    src: u32,
    dst: u32,
    chain: &mut SyndromeBits,
) {
    let mut v = dst;
    while v != src {
        let e = parent_edge[v as usize];
        debug_assert_ne!(e, u32::MAX, "dst unreachable from src");
        chain.toggle(e);
        let [a, b] = graph.endpoints(e);
        v = if a == v { b } else { a };
    }
}

/// The minimum-weight correction for `syndrome` on `graph`, by exhaustive
/// defect pairing. Returns `(correction, weight)`.
///
/// # Panics
///
/// Panics if the syndrome has more than [`MAX_EXACT_DEFECTS`] defects —
/// this decoder exists to check small corpus graphs, not to run at scale.
pub fn min_weight_correction(
    graph: &DetectorGraph,
    syndrome: &SyndromeBits,
) -> (SyndromeBits, u32) {
    debug_assert_eq!(syndrome.len(), graph.num_detectors());
    let defects: Vec<u32> = syndrome.iter_ones().collect();
    let n = defects.len();
    assert!(
        n <= MAX_EXACT_DEFECTS,
        "{n} defects exceed the exhaustive decoder's limit of {MAX_EXACT_DEFECTS}"
    );
    if n == 0 {
        return (SyndromeBits::new(graph.num_edges()), 0);
    }

    // Shortest-path metric from every defect.
    let trees: Vec<(Vec<u32>, Vec<u32>)> = defects.iter().map(|&v| bfs(graph, v)).collect();
    let pair_dist = |i: usize, j: usize| trees[i].0[defects[j] as usize];
    let boundary_of = |i: usize| {
        let (dist, _) = &trees[i];
        let (t, b) = (graph.top(), graph.bottom());
        if dist[t as usize] <= dist[b as usize] {
            (dist[t as usize], t)
        } else {
            (dist[b as usize], b)
        }
    };

    // f[mask] = minimum weight clearing the defects in `mask`.
    let full = (1u32 << n) - 1;
    let mut f = vec![u32::MAX; (full + 1) as usize];
    f[0] = 0;
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        // Match defect i to its nearest boundary.
        let (bd, _) = boundary_of(i);
        let mut best = f[rest as usize].saturating_add(bd);
        // Or with another defect still in the mask.
        let mut js = rest;
        while js != 0 {
            let j = js.trailing_zeros() as usize;
            js &= js - 1;
            let sub = rest & !(1 << j);
            best = best.min(f[sub as usize].saturating_add(pair_dist(i, j)));
        }
        f[mask as usize] = best;
    }

    // Walk the DP back down, XORing each chosen path into the correction.
    let mut correction = SyndromeBits::new(graph.num_edges());
    let mut mask = full;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let (bd, bv) = boundary_of(i);
        if f[mask as usize] == f[rest as usize].saturating_add(bd) {
            xor_path(graph, &trees[i].1, defects[i], bv, &mut correction);
            mask = rest;
            continue;
        }
        let mut chosen = None;
        let mut js = rest;
        while js != 0 {
            let j = js.trailing_zeros() as usize;
            js &= js - 1;
            let sub = rest & !(1 << j);
            if f[mask as usize] == f[sub as usize].saturating_add(pair_dist(i, j)) {
                chosen = Some(j);
                break;
            }
        }
        let j = chosen.expect("DP value must decompose into one of its options");
        xor_path(graph, &trees[i].1, defects[i], defects[j], &mut correction);
        mask = rest & !(1 << j);
    }

    debug_assert_eq!(
        graph.syndrome_of(&correction),
        *syndrome,
        "minimum-weight correction must reproduce the syndrome"
    );
    let weight = f[full as usize];
    (correction, weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_syndrome_needs_no_correction() {
        let g = DetectorGraph::new(3, 1);
        let s = SyndromeBits::new(g.num_detectors());
        let (c, w) = min_weight_correction(&g, &s);
        assert_eq!(c.popcount(), 0);
        assert_eq!(w, 0);
    }

    #[test]
    fn adjacent_defect_pair_costs_one_edge() {
        let g = DetectorGraph::new(5, 1);
        // One internal vertical edge flips two adjacent detectors; the
        // cheapest repair is that very edge.
        let e = g.distance() + 1;
        let mut error = SyndromeBits::new(g.num_edges());
        error.set(e);
        let (c, w) = min_weight_correction(&g, &g.syndrome_of(&error));
        assert_eq!(w, 1);
        assert_eq!(c, error);
    }

    #[test]
    fn lone_defect_matches_its_nearest_boundary() {
        let g = DetectorGraph::new(5, 1);
        // A top boundary edge error leaves one defect one step from TOP.
        let mut error = SyndromeBits::new(g.num_edges());
        error.set(0);
        let (c, w) = min_weight_correction(&g, &g.syndrome_of(&error));
        assert_eq!(w, 1);
        assert_eq!(c, error);
    }

    #[test]
    fn correction_is_minimum_over_random_chains() {
        // The correction's weight can never exceed the error's own weight
        // (the error itself reproduces its syndrome), and the syndrome must
        // always round-trip.
        let g = DetectorGraph::new(3, 2);
        let mut state = 5u64;
        for _ in 0..40 {
            let mut error = SyndromeBits::new(g.num_edges());
            for _ in 0..3 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                error.set(((state >> 33) as u32) % g.num_edges());
            }
            let syndrome = g.syndrome_of(&error);
            if syndrome.popcount() as usize > MAX_EXACT_DEFECTS {
                continue;
            }
            let (c, w) = min_weight_correction(&g, &syndrome);
            assert_eq!(g.syndrome_of(&c), syndrome);
            assert!(w <= error.popcount(), "oracle beat by the error itself");
        }
    }
}
