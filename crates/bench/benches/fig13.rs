//! Figure 13: RESCQ's sensitivity to the MST recomputation period k.

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 13 — RESCQ sensitivity to k (MST period)",
        "performance is near-optimal at k=25 and degrades negligibly (§5.2.3)",
    );
    let pts = experiments::fig13(&scale).expect("fig13 experiment");
    println!("{:<20} {:>5} {:>4} {:>12}", "benchmark", "k", "d", "cycles");
    for p in &pts {
        let k = p.x.trunc() as u32;
        let d = (p.x.fract() * 100.0).round() as u32;
        println!("{:<20} {:>5} {:>4} {:>12.0}", p.name, k, d, p.mean_cycles);
    }
}
