//! Disjoint-set union with the cluster bookkeeping union-find decoding
//! needs: per-root size, defect parity, and boundary attachment.
//!
//! This is deliberately not the bare [`rescq-lattice`] MST union-find — the
//! decoder's clusters carry state that drives growth termination (a cluster
//! stops growing once its defect parity is even or it has touched a code
//! boundary), and merging must combine that state in `O(1)`.

/// Disjoint-set forest with path compression and union by rank, augmented
/// with per-cluster decode state.
///
/// Roots carry the authoritative `size` / `parity` / `boundary` values;
/// non-root slots hold stale copies that are never read.
#[derive(Debug, Clone)]
pub struct ClusterDsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    size: Vec<u32>,
    /// Defect parity of the cluster (true = odd = still growing).
    parity: Vec<bool>,
    /// Whether the cluster contains a boundary (virtual) vertex.
    boundary: Vec<bool>,
}

impl ClusterDsu {
    /// `n` singleton clusters, all even-parity and non-boundary.
    pub fn new(n: u32) -> Self {
        ClusterDsu {
            parent: (0..n).collect(),
            rank: vec![0; n as usize],
            size: vec![1; n as usize],
            parity: vec![false; n as usize],
            boundary: vec![false; n as usize],
        }
    }

    /// Resets to `n` singletons, reusing the allocations.
    pub fn reset(&mut self, n: u32) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n as usize, 0);
        self.size.clear();
        self.size.resize(n as usize, 1);
        self.parity.clear();
        self.parity.resize(n as usize, false);
        self.boundary.clear();
        self.boundary.resize(n as usize, false);
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.parent.len() as u32
    }

    /// Whether the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Marks `v` as a defect (flips its cluster's parity).
    pub fn flip_parity(&mut self, v: u32) {
        let r = self.find(v) as usize;
        self.parity[r] = !self.parity[r];
    }

    /// Marks `v`'s cluster as boundary-attached.
    pub fn set_boundary(&mut self, v: u32) {
        let r = self.find(v) as usize;
        self.boundary[r] = true;
    }

    /// The root of `v`'s cluster, compressing the path walked.
    pub fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Full path compression: repoint every node on the walked path.
        let mut cur = v;
        while cur != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the clusters of `a` and `b`. Returns the surviving root if the
    /// clusters were distinct, `None` if they were already one. Size adds,
    /// parity XORs, boundary ORs.
    pub fn union(&mut self, a: u32, b: u32) -> Option<u32> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let (winner, loser) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        self.parent[loser as usize] = winner;
        self.size[winner as usize] += self.size[loser as usize];
        self.parity[winner as usize] ^= self.parity[loser as usize];
        self.boundary[winner as usize] |= self.boundary[loser as usize];
        Some(winner)
    }

    /// Size of `v`'s cluster.
    pub fn cluster_size(&mut self, v: u32) -> u32 {
        let r = self.find(v);
        self.size[r as usize]
    }

    /// Defect parity of `v`'s cluster.
    pub fn cluster_parity(&mut self, v: u32) -> bool {
        let r = self.find(v);
        self.parity[r as usize]
    }

    /// Whether `v`'s cluster has touched a boundary vertex.
    pub fn cluster_boundary(&mut self, v: u32) -> bool {
        let r = self.find(v);
        self.boundary[r as usize]
    }

    /// Whether `v`'s cluster still grows: odd parity and no boundary
    /// contact (the union-find growth termination rule).
    pub fn cluster_active(&mut self, v: u32) -> bool {
        let r = self.find(v) as usize;
        self.parity[r] && !self.boundary[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_is_idempotent_under_path_compression() {
        let mut d = ClusterDsu::new(8);
        // Build a deliberate chain 0 <- 1 <- 2 <- 3 through unions of
        // equal-rank singletons, then verify find() answers never change on
        // repeat calls and that compression leaves roots fixed.
        d.union(0, 1);
        d.union(2, 3);
        d.union(1, 3);
        let r = d.find(3);
        assert_eq!(d.find(3), r, "find must be idempotent");
        assert_eq!(d.find(0), r);
        assert_eq!(d.find(1), r);
        assert_eq!(d.find(2), r);
        // After compression every member points directly at the root.
        for v in 0..4 {
            assert_eq!(d.parent[v as usize], r);
        }
        // Unions of already-joined members are no-ops.
        assert_eq!(d.union(0, 3), None);
        assert_eq!(d.cluster_size(0), 4);
    }

    #[test]
    fn size_parity_boundary_bookkeeping() {
        let mut d = ClusterDsu::new(6);
        d.flip_parity(0);
        d.flip_parity(1);
        assert!(d.cluster_parity(0));
        assert!(d.cluster_active(0));
        // Odd ⊕ odd = even: the merged cluster deactivates.
        d.union(0, 1);
        assert!(!d.cluster_parity(0));
        assert!(!d.cluster_active(1));
        assert_eq!(d.cluster_size(1), 2);
        // Boundary contact deactivates an odd cluster too.
        d.flip_parity(2);
        assert!(d.cluster_active(2));
        d.set_boundary(3);
        d.union(2, 3);
        assert!(d.cluster_parity(2), "parity unchanged by boundary merge");
        assert!(d.cluster_boundary(2));
        assert!(!d.cluster_active(2));
        // Double flip restores even parity.
        d.flip_parity(4);
        d.flip_parity(4);
        assert!(!d.cluster_parity(4));
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut d = ClusterDsu::new(4);
        d.union(0, 1);
        d.flip_parity(2);
        d.set_boundary(3);
        d.reset(4);
        for v in 0..4 {
            assert_eq!(d.find(v), v);
            assert_eq!(d.cluster_size(v), 1);
            assert!(!d.cluster_parity(v));
            assert!(!d.cluster_boundary(v));
        }
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn union_by_rank_bounds_depth() {
        // 64 elements merged pairwise into one cluster: rank stays
        // logarithmic, so every find after full merging touches at most
        // O(log n) parents even before compression.
        let mut d = ClusterDsu::new(64);
        let mut stride = 1;
        while stride < 64 {
            for base in (0..64).step_by(stride * 2) {
                d.union(base as u32, (base + stride) as u32);
            }
            stride *= 2;
        }
        assert_eq!(d.cluster_size(17), 64);
        let max_rank = d.rank.iter().copied().max().unwrap();
        assert!(max_rank <= 7, "rank {max_rank} exceeds log2(64)+1");
    }
}
