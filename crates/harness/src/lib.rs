//! # rescq-harness
//!
//! Parallel sweep orchestration with shared artifact caching — the layer
//! between the simulation engines and every experiment entry point.
//!
//! Every figure of the RESCQ paper is a parameter sweep: workload × grid
//! compression × scheduler × decoder configuration × seeds. Run naively,
//! each point re-generates the circuit, re-derives its dependency DAG and
//! re-builds the fabric from scratch. This crate instead:
//!
//! 1. takes a declarative [`SweepSpec`] (parsed from a TOML-subset file or
//!    built in code) and expands its cartesian grid into a deterministic
//!    job list ([`SweepSpec::expand`]);
//! 2. executes the jobs on a pool of `std::thread::scope` workers pulling
//!    from a shared atomic queue ([`run_sweep`]), with a content-addressed
//!    [`ArtifactCache`] so each distinct circuit, DAG and fabric layout is
//!    built **once** and shared read-only (`Arc`) by every job that needs
//!    it;
//! 3. aggregates results deterministically — rows are ordered by job
//!    index, so CSV/JSON output is byte-identical whether the sweep ran on
//!    1 worker or 64 ([`SweepResults`]);
//! 4. checkpoints completed jobs to disk so a killed sweep resumes from
//!    where it stopped ([`RunOptions::checkpoint`]), keyed by a stable
//!    fingerprint over the job's full configuration and the circuit's
//!    content hash.
//!
//! # Quick example
//!
//! ```
//! use rescq_harness::{run_sweep, RunOptions, SweepSpec};
//!
//! let spec = SweepSpec::parse(
//!     r#"
//!     workloads    = ["decoder_stress_n4"]
//!     compressions = [0.0, 0.5]
//!     decoders     = ["ideal", "fixed:0.5"]
//!     seeds        = 2
//!     "#,
//! )
//! .unwrap();
//! let results = run_sweep(&spec, &RunOptions::with_threads(2)).unwrap();
//! assert_eq!(results.records.len(), 2 * 2 * 2);
//! // The four points over one workload shared a single circuit build.
//! assert_eq!(results.cache.circuit_builds, 1);
//! println!("{}", results.to_csv());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod checkpoint;
mod results;
mod run;
mod spec;

pub use cache::{ArtifactCache, CacheStats};
pub use checkpoint::{job_fingerprint, read_checkpoint_rows, Checkpoint};
pub use results::{
    csv_row, parse_csv_metrics, JobMetrics, JobRecord, PointSummary, SweepResults, CSV_HEADER,
};
pub use run::{merge_checkpoints, run_sweep, HarnessError, ProgressMode, RunOptions, Shard};
pub use spec::{fmt_k, fmt_priority, DecoderPoint, JobSpec, SpecError, SweepSpec};
