//! # rescq-circuit
//!
//! Clifford+Rz circuit intermediate representation for the RESCQ reproduction:
//! exact dyadic-π [`Angle`]s (so repeat-until-success correction ladders
//! terminate when `2^k·θ` hits a Clifford), the [`Gate`] and [`Circuit`]
//! types, the [`DependencyDag`] used by the schedulers, parsers for the
//! artifact text format ([`parser`]) and a minimal OpenQASM 2 subset
//! ([`qasm`]), and basis-gate decompositions ([`transpile`]).
//!
//! # Quick example
//!
//! ```
//! use rescq_circuit::{Angle, Circuit, DependencyDag};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1).rz(1, Angle::radians(0.37));
//! assert_eq!(c.stats().rz, 1);
//!
//! let dag = DependencyDag::new(&c);
//! assert_eq!(dag.layers().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod angle;
#[allow(clippy::module_inception)]
mod circuit;
mod dag;
mod gate;
mod hash;
pub mod parser;
pub mod qasm;
pub mod transpile;

pub use angle::Angle;
pub use circuit::{Circuit, GateStats, QubitOutOfRange};
pub use dag::{asap_layers, DependencyDag};
pub use gate::{Gate, GateId, GateQubits, QubitId};
pub use hash::fnv1a_64;
pub use parser::{parse_circuit, write_circuit, ParseCircuitError};
