//! Parser and writer for the artifact's circuit text format (paper §B.7):
//!
//! ```text
//! <total number of gates>
//! <gate name> <qubit(s)> <rotation angle, rz only>
//! ```
//!
//! Angles accept plain radians (`0.785398…`), exact dyadic-π expressions
//! (`pi/4`, `-3*pi/8`, `pi`, `2*pi`), and `0`. The writer emits the exact form
//! whenever the angle is dyadic so that round-trips preserve ladder-termination
//! behaviour.

use crate::{Angle, Circuit, Gate};
use std::fmt;

/// Error from parsing circuit text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

fn err(line: usize, message: impl Into<String>) -> ParseCircuitError {
    ParseCircuitError {
        line,
        message: message.into(),
    }
}

/// Parses an angle token: radians float, `pi` expressions, or `0`.
///
/// Accepted dyadic forms: `pi`, `-pi`, `pi/DEN`, `-pi/DEN`, `NUM*pi`,
/// `NUM*pi/DEN` where `DEN` is a power of two.
///
/// # Errors
///
/// Returns a message if the token is neither a float nor a recognized
/// π-expression.
pub fn parse_angle(token: &str) -> Result<Angle, String> {
    let t = token.trim();
    if t == "0" || t == "0.0" {
        return Ok(Angle::ZERO);
    }
    if let Some(a) = parse_pi_expr(t) {
        return Ok(a);
    }
    t.parse::<f64>()
        .map(Angle::radians)
        .map_err(|_| format!("invalid angle `{t}`"))
}

fn parse_pi_expr(t: &str) -> Option<Angle> {
    if !t.contains("pi") {
        return None;
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let (num_part, den_part) = match t.split_once('/') {
        Some((n, d)) => (n, Some(d)),
        None => (t, None),
    };
    let num: i64 = if num_part == "pi" {
        1
    } else {
        let n = num_part
            .strip_suffix("*pi")
            .or_else(|| num_part.strip_suffix("pi"))?;
        n.parse().ok()?
    };
    let k: u32 = match den_part {
        None => 0,
        Some(d) => {
            let den: u64 = d.parse().ok()?;
            if !den.is_power_of_two() {
                return None;
            }
            den.trailing_zeros()
        }
    };
    let num = if neg { -num } else { num };
    Some(Angle::dyadic_pi(num, k))
}

/// Parses the artifact text format into a [`Circuit`].
///
/// The number of qubits is inferred as `1 + max qubit index` unless
/// `num_qubits` is given. Gate names: `rz`, `h`, `x`, `z`, `s`, `sdg`, `t`,
/// `tdg`, `cx`/`cnot`. Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`ParseCircuitError`] on malformed lines, unknown gates, or a
/// gate-count header that disagrees with the body.
pub fn parse_circuit(text: &str, num_qubits: Option<u32>) -> Result<Circuit, ParseCircuitError> {
    let mut declared: Option<usize> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut max_qubit: u32 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if declared.is_none() && gates.is_empty() {
            if let Ok(n) = line.parse::<usize>() {
                declared = Some(n);
                continue;
            }
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or_else(|| err(lineno, "empty line"))?;
        let next_qubit =
            |parts: &mut std::str::SplitWhitespace<'_>| -> Result<u32, ParseCircuitError> {
                parts
                    .next()
                    .ok_or_else(|| err(lineno, format!("missing qubit operand for `{name}`")))?
                    .parse::<u32>()
                    .map_err(|_| err(lineno, format!("invalid qubit index for `{name}`")))
            };
        let gate = match name {
            "rz" => {
                let q = next_qubit(&mut parts)?;
                let angle_tok = parts
                    .next()
                    .ok_or_else(|| err(lineno, "rz requires an angle"))?;
                let angle = parse_angle(angle_tok).map_err(|m| err(lineno, m))?;
                Gate::rz(q, angle)
            }
            "h" => Gate::h(next_qubit(&mut parts)?),
            "x" => Gate::x(next_qubit(&mut parts)?),
            "z" => Gate::z(next_qubit(&mut parts)?),
            "s" => Gate::rz(next_qubit(&mut parts)?, Angle::S),
            "sdg" => Gate::rz(next_qubit(&mut parts)?, Angle::dyadic_pi(-1, 1)),
            "t" => Gate::rz(next_qubit(&mut parts)?, Angle::T),
            "tdg" => Gate::rz(next_qubit(&mut parts)?, Angle::dyadic_pi(-1, 2)),
            "cx" | "cnot" => {
                let c = next_qubit(&mut parts)?;
                let t = next_qubit(&mut parts)?;
                Gate::cnot(c, t)
            }
            other => return Err(err(lineno, format!("unknown gate `{other}`"))),
        };
        if let Some(extra) = parts.next() {
            return Err(err(lineno, format!("unexpected trailing token `{extra}`")));
        }
        for q in gate.qubits() {
            max_qubit = max_qubit.max(q.0);
        }
        gates.push(gate);
    }

    if let Some(n) = declared {
        if n != gates.len() {
            return Err(err(
                1,
                format!("header declares {n} gates but body has {}", gates.len()),
            ));
        }
    }

    let nq = num_qubits.unwrap_or(if gates.is_empty() { 0 } else { max_qubit + 1 });
    Circuit::from_gates(nq, gates).map_err(|e| err(1, e.to_string()))
}

/// Writes a circuit in the artifact format (same as its `Display` impl).
pub fn write_circuit(circuit: &Circuit) -> String {
    circuit.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .rz(1, Angle::T)
            .rz(2, Angle::radians(0.123456789))
            .x(2)
            .rz(0, Angle::dyadic_pi(-3, 4));
        let text = write_circuit(&c);
        let parsed = parse_circuit(&text, Some(3)).unwrap();
        assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.gates().iter().zip(c.gates()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_pi_expressions() {
        assert_eq!(parse_angle("pi/4").unwrap(), Angle::T);
        assert_eq!(parse_angle("-pi/2").unwrap(), Angle::dyadic_pi(-1, 1));
        assert_eq!(parse_angle("3*pi/8").unwrap(), Angle::dyadic_pi(3, 3));
        assert_eq!(parse_angle("pi").unwrap(), Angle::PI);
        assert_eq!(parse_angle("0").unwrap(), Angle::ZERO);
        // Non-power-of-two denominator falls through to float error.
        assert!(parse_angle("pi/3").is_err());
    }

    #[test]
    fn parses_floats_as_radians() {
        let a = parse_angle("1.5707963").unwrap();
        assert!(!a.is_dyadic());
    }

    #[test]
    fn header_mismatch_rejected() {
        let text = "3\nh 0\ncx 0 1\n";
        let e = parse_circuit(text, None).unwrap_err();
        assert!(e.message.contains("declares 3"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n2\n\nh 0   # inline\ncx 0 1\n";
        let c = parse_circuit(text, None).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.num_qubits(), 2);
    }

    #[test]
    fn named_clifford_shorthands() {
        let c = parse_circuit("s 0\nsdg 0\nt 0\ntdg 0\n", None).unwrap();
        let stats = c.stats();
        assert_eq!(stats.clifford_rz, 2);
        assert_eq!(stats.rz, 2);
    }

    #[test]
    fn unknown_gate_reports_line() {
        let e = parse_circuit("h 0\nccx 0 1 2\n", None).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ccx"));
    }

    #[test]
    fn trailing_token_rejected() {
        let e = parse_circuit("h 0 1\n", None).unwrap_err();
        assert!(e.message.contains("trailing"));
    }
}
