//! Per-tile detector graphs: the spacetime matching graph one surface-code
//! tile presents to its decoder.
//!
//! The model is the standard phenomenological one-basis planar patch. A
//! distance-`d` tile contributes a `(d−1) × d` grid of stabilizer detectors
//! per measurement round; data-qubit errors flip the pair of detectors their
//! qubit couples (space-like edges), measurement errors flip the same
//! detector in consecutive rounds (time-like edges), and the two rough code
//! boundaries absorb chains through virtual `TOP`/`BOTTOM` vertices. The
//! final round of a window is taken as projectively read out, so no
//! time-like edges dangle past it.
//!
//! A logical failure is a residual chain (error ⊕ correction) connecting
//! `TOP` to `BOTTOM`. Such a chain crosses *every* horizontal cut an odd
//! number of times — in particular the cut directly below `TOP`, which only
//! the top boundary edges cross. The logical check is therefore the parity
//! of residual top-boundary edges, an `O(words)` test.

use crate::syndrome::SyndromeBits;

/// The spacetime detector graph of one tile over one syndrome window.
///
/// Node ids: `(t, i, j) = t·(d−1)·d + i·d + j` for round `t`, stabilizer row
/// `i ∈ 0..d−1`, column `j ∈ 0..d`; the two virtual boundary vertices take
/// the last two ids. Edge ids are assigned in a fixed construction order
/// (per-round space-like edges first, then time-like edges), so every bit
/// vector over edges is comparable across decoders.
#[derive(Debug, Clone)]
pub struct DetectorGraph {
    distance: u32,
    rounds: u32,
    /// `[a, b]` node-id endpoints per edge.
    edges: Vec<[u32; 2]>,
    /// Edge ids incident to each node, virtual boundaries included (the
    /// peeling forest roots at boundary vertices and the exact decoder
    /// routes shortest paths through them).
    adjacency: Vec<Vec<u32>>,
    /// Edge ids crossing the cut below `TOP` (the logical-parity witness).
    top_cut: Vec<u32>,
    /// Space-like edges per round (the per-round Pauli-frame address space).
    spatial_per_round: u32,
}

impl DetectorGraph {
    /// Builds the graph for one distance-`d` tile over `rounds` measurement
    /// rounds. `d ≥ 2`, `rounds ≥ 1`.
    pub fn new(distance: u32, rounds: u32) -> Self {
        assert!(distance >= 2, "detector graphs need d >= 2");
        assert!(rounds >= 1, "windows hold at least one round");
        let d = distance;
        let per_round = (d - 1) * d;
        let real_nodes = per_round * rounds;
        let mut edges = Vec::new();
        let mut top_cut = Vec::new();
        let node = |t: u32, i: u32, j: u32| t * per_round + i * d + j;
        let top = real_nodes;
        let bottom = real_nodes + 1;
        let mut spatial_per_round = 0;
        for t in 0..rounds {
            // Top boundary edges: the logical cut witness set.
            for j in 0..d {
                top_cut.push(edges.len() as u32);
                edges.push([top, node(t, 0, j)]);
            }
            // Internal vertical edges (the logical direction).
            for i in 0..d.saturating_sub(2) {
                for j in 0..d {
                    edges.push([node(t, i, j), node(t, i + 1, j)]);
                }
            }
            // Bottom boundary edges.
            for j in 0..d {
                edges.push([node(t, d - 2, j), bottom]);
            }
            // Horizontal edges (the transverse direction; chains of these
            // never connect the boundaries, matching rough-boundary planar
            // codes where the other error species lives on the dual graph).
            for i in 0..d - 1 {
                for j in 0..d - 1 {
                    edges.push([node(t, i, j), node(t, i, j + 1)]);
                }
            }
            if t == 0 {
                spatial_per_round = edges.len() as u32;
            }
        }
        // Time-like edges: a measurement error in round t flips the same
        // detector in rounds t and t+1. The final round is projective, so
        // the last layer has no outgoing time edge.
        for t in 0..rounds - 1 {
            for v in 0..per_round {
                edges.push([node(t, 0, 0) + v, node(t + 1, 0, 0) + v]);
            }
        }
        let mut adjacency = vec![Vec::new(); real_nodes as usize + 2];
        for (e, ends) in edges.iter().enumerate() {
            for &v in ends {
                adjacency[v as usize].push(e as u32);
            }
        }
        DetectorGraph {
            distance,
            rounds,
            edges,
            adjacency,
            top_cut,
            spatial_per_round,
        }
    }

    /// Code distance of the tile.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Rounds the window covers.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Total nodes, virtual boundaries included.
    pub fn num_nodes(&self) -> u32 {
        (self.distance - 1) * self.distance * self.rounds + 2
    }

    /// Real (detector) nodes, boundaries excluded.
    pub fn num_detectors(&self) -> u32 {
        (self.distance - 1) * self.distance * self.rounds
    }

    /// The virtual `TOP` boundary vertex id.
    pub fn top(&self) -> u32 {
        self.num_detectors()
    }

    /// The virtual `BOTTOM` boundary vertex id.
    pub fn bottom(&self) -> u32 {
        self.num_detectors() + 1
    }

    /// Whether `v` is one of the two virtual boundary vertices.
    pub fn is_boundary(&self, v: u32) -> bool {
        v >= self.num_detectors()
    }

    /// Total edges (error mechanisms) in the window.
    pub fn num_edges(&self) -> u32 {
        self.edges.len() as u32
    }

    /// Endpoint node ids of edge `e`.
    pub fn endpoints(&self, e: u32) -> [u32; 2] {
        self.edges[e as usize]
    }

    /// Edge ids incident to node `v` (boundary vertices included).
    pub fn incident(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// Space-like edges per round; edge `e` is space-like iff
    /// `e < spatial_per_round() * rounds()`, and its per-round (Pauli-frame)
    /// address is `e % spatial_per_round()`.
    pub fn spatial_per_round(&self) -> u32 {
        self.spatial_per_round
    }

    /// Whether edge `e` represents a data-qubit (space-like) error.
    pub fn is_spatial(&self, e: u32) -> bool {
        e < self.spatial_per_round * self.rounds
    }

    /// The syndrome a chain of flipped edges produces: parity, per real
    /// detector, of incident chain edges (boundary vertices absorb parity).
    pub fn syndrome_of(&self, chain: &SyndromeBits) -> SyndromeBits {
        debug_assert_eq!(chain.len(), self.num_edges());
        let mut s = SyndromeBits::new(self.num_detectors());
        for e in chain.iter_ones() {
            for &v in &self.edges[e as usize] {
                if !self.is_boundary(v) {
                    s.toggle(v);
                }
            }
        }
        s
    }

    /// Parity of `chain`'s top-boundary-cut edges: `true` means the chain
    /// crosses the cut below `TOP` an odd number of times. For a residual
    /// (trivial-syndrome) chain this is exactly the logical-failure test.
    pub fn crosses_logical_cut(&self, chain: &SyndromeBits) -> bool {
        debug_assert_eq!(chain.len(), self.num_edges());
        self.top_cut.iter().filter(|&&e| chain.get(e)).count() % 2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_construction() {
        // d=3, 2 rounds: 6 detectors/round; per round 3 top + 3 internal
        // vertical + 3 bottom + 4 horizontal = 13 space-like edges; 6
        // time-like edges between the two rounds.
        let g = DetectorGraph::new(3, 2);
        assert_eq!(g.num_detectors(), 12);
        assert_eq!(g.num_nodes(), 14);
        assert_eq!(g.spatial_per_round(), 13);
        assert_eq!(g.num_edges(), 13 * 2 + 6);
        assert!(g.is_spatial(25));
        assert!(!g.is_spatial(26));
        assert!(g.is_boundary(g.top()));
        assert!(g.is_boundary(g.bottom()));
        assert!(!g.is_boundary(11));
    }

    #[test]
    fn single_error_flips_its_endpoints() {
        let g = DetectorGraph::new(3, 1);
        // An internal vertical edge has two real endpoints.
        let internal = (3..6).next().unwrap(); // first internal vertical edge
        let mut chain = SyndromeBits::new(g.num_edges());
        chain.set(internal);
        let s = g.syndrome_of(&chain);
        assert_eq!(s.popcount(), 2);
        let [a, b] = g.endpoints(internal);
        assert!(s.get(a) && s.get(b));
        // A boundary edge flips only its real endpoint.
        chain.clear_all();
        chain.set(0);
        let s = g.syndrome_of(&chain);
        assert_eq!(s.popcount(), 1);
    }

    #[test]
    fn vertical_chain_is_logical_and_weight_d() {
        // A full TOP→BOTTOM chain in column 0 of a d=3 tile: edges
        // top(0,0,0), (0,0,0)-(0,1,0), (0,1,0)-bottom. Weight d = 3,
        // trivial syndrome, crosses the logical cut.
        let g = DetectorGraph::new(3, 1);
        let mut chain = SyndromeBits::new(g.num_edges());
        chain.set(0); // TOP-(0,0)
        chain.set(3); // (0,0)-(1,0)
        chain.set(6); // (1,0)-BOTTOM
        assert_eq!(chain.popcount(), 3);
        assert_eq!(g.syndrome_of(&chain).popcount(), 0, "chain is a cycle");
        assert!(g.crosses_logical_cut(&chain), "connects the boundaries");
        // A trivial loop through TOP (down one column, back up the next)
        // crosses the cut twice: not logical.
        let mut loopy = SyndromeBits::new(g.num_edges());
        loopy.set(0); // TOP-(0,0)
        loopy.set(1); // TOP-(0,1)
        loopy.set(9); // horizontal (0,0)-(0,1)
        assert_eq!(g.syndrome_of(&loopy).popcount(), 0);
        assert!(!g.crosses_logical_cut(&loopy));
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = DetectorGraph::new(5, 3);
        for v in 0..g.num_nodes() {
            for &e in g.incident(v) {
                assert!(g.endpoints(e).contains(&v), "edge {e} not incident {v}");
            }
        }
        // Every edge appears in the adjacency of both endpoints.
        for e in 0..g.num_edges() {
            for v in g.endpoints(e) {
                assert!(g.incident(v).contains(&e));
            }
        }
    }

    #[test]
    fn time_edges_link_identical_detectors() {
        let g = DetectorGraph::new(3, 3);
        let per_round = 6;
        for e in (g.spatial_per_round() * 3)..g.num_edges() {
            let [a, b] = g.endpoints(e);
            assert_eq!(b - a, per_round, "time edge links (t, v) to (t+1, v)");
        }
    }
}
