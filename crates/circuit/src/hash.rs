//! Stable, persistable hashing.
//!
//! `std::hash` makes no cross-process or cross-version guarantees, so
//! anything written to disk (artifact-cache keys, sweep checkpoints) hashes
//! through this fixed FNV-1a instead. One implementation serves the whole
//! workspace — `Circuit::content_hash` and the harness's job fingerprints
//! must never drift apart, or persisted checkpoints would silently
//! invalidate.

/// 64-bit FNV-1a over a byte stream. Deterministic across processes,
/// platforms and standard-library versions.
///
/// # Example
///
/// ```
/// use rescq_circuit::fnv1a_64;
///
/// let h = fnv1a_64(b"rescq".iter().copied());
/// assert_eq!(h, fnv1a_64(b"rescq".iter().copied()));
/// assert_ne!(h, fnv1a_64(b"recsq".iter().copied()));
/// ```
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(std::iter::empty()), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a".iter().copied()), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar".iter().copied()), 0x85944171f73967e8u64);
    }
}
