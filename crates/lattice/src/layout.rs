//! STAR-architecture fabric layouts and grid compression (paper §2.2, §5.3).
//!
//! The baseline STAR architecture [1] tiles the fabric with atomic blocks:
//!
//! - **2×2 STAR block** — 1 data tile + 3 ancilla tiles (the default),
//! - **3×1 compact block** — 1 data + 2 ancilla,
//! - **2×1 compressed block** — 1 data + 1 ancilla.
//!
//! §5.3's hardware/software co-design experiment *compresses* a 2×2 grid by
//! repeatedly picking a random data qubit and shrinking its block to 2×1
//! "while still ensuring the grid remains connected". [`Layout::compress`]
//! implements exactly that: removals that would disconnect the global ancilla
//! network (or strand a data qubit with no adjacent ancilla) are skipped, and
//! the achieved removal fraction is reported — for multi-row grids, perfect
//! 100 % compression is geometrically impossible while staying connected, so
//! requested and achieved fractions can differ slightly at the top end.

use crate::graph::ancilla_network_connected;
use crate::{Corner, Grid, Side, TileId, TileKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rescq_circuit::QubitId;
use std::fmt;

/// The atomic block shape used to build a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutKind {
    /// 2×2 block: 1 data + 3 ancilla (baseline STAR, Fig 1c).
    #[default]
    Star2x2,
    /// 3×1 vertical block: ancilla / data / ancilla.
    Compact3x1,
}

/// Error from layout construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutError {
    msg: &'static str,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for LayoutError {}

/// Geometric adjacency of a data tile: the raw material for prep-candidate
/// selection (paper Fig 7: ancillas 1,2,3 prepare; 4,5 route/help).
#[derive(Debug, Clone, Default)]
pub struct DataAdjacency {
    /// Edge-adjacent ancilla tiles with the side of the data tile they touch.
    pub side: Vec<(Side, TileId)>,
    /// Diagonal ancilla tiles with the edge-adjacent ancillas (helpers) that
    /// connect them to the data tile.
    pub diagonal: Vec<(Corner, TileId, Vec<TileId>)>,
}

/// A mapped surface-code fabric: the tile grid plus the data-qubit placement
/// and per-block bookkeeping.
///
/// # Example
///
/// ```
/// use rescq_lattice::{Layout, LayoutKind};
///
/// let layout = Layout::new(LayoutKind::Star2x2, 8).unwrap();
/// assert_eq!(layout.num_qubits(), 8);
/// assert_eq!(layout.ancilla_tiles().len(), 24); // 3 per data qubit
/// assert!(layout.is_routable());
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    grid: Grid,
    kind: LayoutKind,
    data_tiles: Vec<TileId>,
    /// Per qubit: ancilla tiles belonging to its block (shrinks on compression).
    block_ancillas: Vec<Vec<TileId>>,
    /// Fraction of compressible ancillas removed so far (0 = none, 1 = two
    /// ancillas removed per block).
    removed_ancillas: usize,
}

impl Layout {
    /// Builds a fabric of `num_qubits` blocks of the given kind, arranged in
    /// a near-square grid of blocks, row-major (qubit `i` is at block
    /// `(i % cols, i / cols)` — the paper's "numerically close indices are
    /// physically close" one-to-one mapping, §5.1).
    ///
    /// # Errors
    ///
    /// Returns an error when `num_qubits == 0`.
    pub fn new(kind: LayoutKind, num_qubits: u32) -> Result<Self, LayoutError> {
        let cols = (num_qubits as f64).sqrt().ceil() as u32;
        Self::with_block_columns(kind, num_qubits, cols.max(1))
    }

    /// Like [`Layout::new`] but with an explicit number of block columns.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_qubits == 0` or `block_columns == 0`.
    pub fn with_block_columns(
        kind: LayoutKind,
        num_qubits: u32,
        block_columns: u32,
    ) -> Result<Self, LayoutError> {
        if num_qubits == 0 {
            return Err(LayoutError {
                msg: "layout requires at least one data qubit",
            });
        }
        if block_columns == 0 {
            return Err(LayoutError {
                msg: "layout requires at least one block column",
            });
        }
        let rows = num_qubits.div_ceil(block_columns);
        let (bw, bh) = match kind {
            LayoutKind::Star2x2 => (2, 2),
            LayoutKind::Compact3x1 => (1, 3),
        };
        let mut grid = Grid::filled(block_columns * bw, rows * bh, TileKind::Void);
        let mut data_tiles = Vec::with_capacity(num_qubits as usize);
        let mut block_ancillas = Vec::with_capacity(num_qubits as usize);

        for q in 0..num_qubits {
            let bx = q % block_columns;
            let by = q / block_columns;
            match kind {
                LayoutKind::Star2x2 => {
                    let (x0, y0) = (bx * 2, by * 2);
                    // TL, TR, BR ancilla; BL data.
                    let tl = grid.tile_at(x0, y0);
                    let tr = grid.tile_at(x0 + 1, y0);
                    let br = grid.tile_at(x0 + 1, y0 + 1);
                    let bl = grid.tile_at(x0, y0 + 1);
                    for a in [tl, tr, br] {
                        grid.set_kind(a, TileKind::Ancilla);
                    }
                    grid.set_kind(bl, TileKind::Data(QubitId(q)));
                    data_tiles.push(bl);
                    // Order matters: the *first* entry is kept longest under
                    // compression (TL is the data's Z-edge neighbour); the
                    // baseline's designated prep ancilla is TR ("the upper
                    // right ancilla", Fig 1d).
                    block_ancillas.push(vec![tl, tr, br]);
                }
                LayoutKind::Compact3x1 => {
                    // 1-wide × 3-tall blocks in a brick pattern: the data tile
                    // sits at the block's top or bottom row depending on
                    // column+row parity and the middle row is all ancilla, so
                    // the ancilla network stays connected (a full-width data
                    // row would sever it).
                    let (x0, y0) = (bx, by * 3);
                    let data_off = if (bx + by).is_multiple_of(2) { 0 } else { 2 };
                    let data = grid.tile_at(x0, y0 + data_off);
                    grid.set_kind(data, TileKind::Data(QubitId(q)));
                    data_tiles.push(data);
                    let mut block = Vec::with_capacity(2);
                    for off in 0..3u32 {
                        if off != data_off {
                            let a = grid.tile_at(x0, y0 + off);
                            grid.set_kind(a, TileKind::Ancilla);
                            block.push(a);
                        }
                    }
                    // Keep the data's edge-adjacent ancilla first (survives
                    // compression longest).
                    block.sort_by_key(|&a| grid.manhattan(a, data));
                    block_ancillas.push(block);
                }
            }
        }

        Ok(Layout {
            grid,
            kind,
            data_tiles,
            block_ancillas,
            removed_ancillas: 0,
        })
    }

    /// The underlying tile grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The block shape this layout was built from.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Number of data qubits.
    pub fn num_qubits(&self) -> u32 {
        self.data_tiles.len() as u32
    }

    /// The tile hosting program qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn data_tile(&self, q: QubitId) -> TileId {
        self.data_tiles[q.index()]
    }

    /// The program qubit on tile `t`, if it is a data tile.
    pub fn qubit_at(&self, t: TileId) -> Option<QubitId> {
        match self.grid.kind(t) {
            TileKind::Data(q) => Some(q),
            _ => None,
        }
    }

    /// All ancilla tiles, in tile order.
    pub fn ancilla_tiles(&self) -> Vec<TileId> {
        self.grid.ancilla_tiles().collect()
    }

    /// The surviving ancillas of qubit `q`'s own block.
    pub fn block_ancillas(&self, q: QubitId) -> &[TileId] {
        &self.block_ancillas[q.index()]
    }

    /// The baseline's designated prep ancilla for `q`: the "upper right"
    /// ancilla of its STAR block (Fig 1d), or the first surviving block
    /// ancilla after compression.
    pub fn designated_prep_ancilla(&self, q: QubitId) -> Option<TileId> {
        let block = &self.block_ancillas[q.index()];
        match self.kind {
            LayoutKind::Star2x2 if block.len() == 3 => Some(block[1]), // TR
            _ => block.last().copied().or_else(|| {
                // Block fully stripped: fall back to any adjacent ancilla.
                self.grid.ancilla_neighbors(self.data_tile(q)).next()
            }),
        }
    }

    /// Geometric adjacency of `q`'s data tile (side + diagonal ancillas).
    pub fn data_adjacency(&self, q: QubitId) -> DataAdjacency {
        let t = self.data_tile(q);
        let mut adj = DataAdjacency::default();
        for side in Side::ALL {
            if let Some(n) = self.grid.neighbor(t, side) {
                if self.grid.kind(n).is_ancilla() {
                    adj.side.push((side, n));
                }
            }
        }
        for corner in Corner::ALL {
            if let Some(d) = self.grid.diag_neighbor(t, corner) {
                if self.grid.kind(d).is_ancilla() {
                    let helpers: Vec<TileId> = corner
                        .adjacent_sides()
                        .into_iter()
                        .filter_map(|s| self.grid.neighbor(t, s))
                        .filter(|&h| {
                            self.grid.kind(h).is_ancilla() && self.grid.neighbors(h).any(|x| x == d)
                        })
                        .collect();
                    if !helpers.is_empty() {
                        adj.diagonal.push((corner, d, helpers));
                    }
                }
            }
        }
        adj
    }

    /// Whether the ancilla network is connected and every data qubit touches
    /// at least one ancilla — the precondition for simulation.
    pub fn is_routable(&self) -> bool {
        ancilla_network_connected(&self.grid)
            && self
                .data_tiles
                .iter()
                .all(|&t| self.grid.ancilla_neighbors(t).next().is_some())
    }

    /// Ancillas per data qubit (3.0 for an uncompressed 2×2 STAR grid).
    pub fn ancilla_ratio(&self) -> f64 {
        self.grid.ancilla_tiles().count() as f64 / self.data_tiles.len() as f64
    }

    /// Fraction of compressible ancillas removed (§5.3's x-axis): `0.0` for
    /// the pristine grid, `1.0` when every block is down to a single ancilla.
    pub fn compression(&self) -> f64 {
        let max_removable: usize = match self.kind {
            LayoutKind::Star2x2 => 2 * self.data_tiles.len(),
            LayoutKind::Compact3x1 => self.data_tiles.len(),
        };
        self.removed_ancillas as f64 / max_removable as f64
    }

    /// Compresses the grid towards `fraction` (paper §5.3): data qubits are
    /// visited in a seeded random order and their blocks shrunk towards a
    /// single ancilla, skipping any removal that would disconnect the ancilla
    /// network or strand a data qubit. Returns the achieved compression.
    ///
    /// `fraction` is clamped to `[0, 1]`.
    pub fn compress(&mut self, fraction: f64, seed: u64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let per_block: usize = match self.kind {
            LayoutKind::Star2x2 => 2,
            LayoutKind::Compact3x1 => 1,
        };
        let max_removable = per_block * self.data_tiles.len();
        let target = (fraction * max_removable as f64).round() as usize;

        let mut order: Vec<usize> = (0..self.data_tiles.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        for &qi in &order {
            if self.removed_ancillas >= target {
                break;
            }
            // Shrink this block towards one ancilla, last-listed first (the
            // first entry is the data's Z-edge neighbour; keep it longest).
            while self.block_ancillas[qi].len() > 1 && self.removed_ancillas < target {
                let mut removed = false;
                for pos in (0..self.block_ancillas[qi].len()).rev() {
                    let cand = self.block_ancillas[qi][pos];
                    self.grid.set_kind(cand, TileKind::Void);
                    if self.is_routable() {
                        self.block_ancillas[qi].remove(pos);
                        self.removed_ancillas += 1;
                        removed = true;
                        break;
                    }
                    self.grid.set_kind(cand, TileKind::Ancilla);
                }
                if !removed {
                    break; // this block cannot shrink further safely
                }
            }
        }
        self.compression()
    }

    /// Serializes the layout to the stable, versioned text form used by the
    /// harness's on-disk layout cache. Round-trips exactly through
    /// [`Layout::from_cache_string`]; the format is line-oriented so a
    /// truncated or hand-damaged file fails parsing instead of yielding a
    /// subtly wrong fabric.
    pub fn to_cache_string(&self) -> String {
        let mut out = String::from("rescq-layout v1\n");
        let kind = match self.kind {
            LayoutKind::Star2x2 => "star2x2",
            LayoutKind::Compact3x1 => "compact3x1",
        };
        out.push_str(&format!("kind {kind}\n"));
        out.push_str(&format!(
            "grid {} {}\n",
            self.grid.width(),
            self.grid.height()
        ));
        // Row-major tile kinds: data identities come from the `data` line.
        out.push_str("tiles ");
        for y in 0..self.grid.height() {
            for x in 0..self.grid.width() {
                out.push(match self.grid.kind(self.grid.tile_at(x, y)) {
                    TileKind::Data(_) => 'd',
                    TileKind::Ancilla => 'a',
                    TileKind::Void => 'v',
                });
            }
        }
        out.push('\n');
        out.push_str("data");
        for &t in &self.data_tiles {
            out.push_str(&format!(" {}", t.0));
        }
        out.push('\n');
        for (q, block) in self.block_ancillas.iter().enumerate() {
            out.push_str(&format!("block {q}"));
            for &t in block {
                out.push_str(&format!(" {}", t.0));
            }
            out.push('\n');
        }
        out.push_str(&format!("removed {}\n", self.removed_ancillas));
        out
    }

    /// Parses a layout previously written by [`Layout::to_cache_string`].
    ///
    /// # Errors
    ///
    /// Returns a message for version mismatches, malformed lines, or
    /// internally inconsistent content (tile/data disagreements, out-of-grid
    /// indices) — the caller treats any error as a cache miss and rebuilds.
    pub fn from_cache_string(text: &str) -> Result<Layout, String> {
        let mut lines = text.lines();
        if lines.next() != Some("rescq-layout v1") {
            return Err("unknown layout-cache version".into());
        }
        let mut kind = None;
        let mut grid_dims = None;
        let mut tiles = None;
        let mut data: Vec<TileId> = Vec::new();
        let mut blocks: Vec<(usize, Vec<TileId>)> = Vec::new();
        let mut removed = None;
        for line in lines {
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "kind" => {
                    kind = Some(match rest {
                        "star2x2" => LayoutKind::Star2x2,
                        "compact3x1" => LayoutKind::Compact3x1,
                        other => return Err(format!("unknown layout kind `{other}`")),
                    });
                }
                "grid" => {
                    let (w, h) = rest.split_once(' ').ok_or("malformed grid line")?;
                    let w: u32 = w.parse().map_err(|_| "bad grid width")?;
                    let h: u32 = h.parse().map_err(|_| "bad grid height")?;
                    grid_dims = Some((w, h));
                }
                "tiles" => tiles = Some(rest.to_string()),
                "data" => {
                    data = rest
                        .split_whitespace()
                        .map(|t| t.parse().map(TileId).map_err(|_| "bad data tile id"))
                        .collect::<Result<_, _>>()?;
                }
                "block" => {
                    let mut it = rest.split_whitespace();
                    let q: usize = it
                        .next()
                        .ok_or("malformed block line")?
                        .parse()
                        .map_err(|_| "bad block qubit")?;
                    let tiles: Vec<TileId> = it
                        .map(|t| t.parse().map(TileId).map_err(|_| "bad block tile id"))
                        .collect::<Result<_, _>>()?;
                    blocks.push((q, tiles));
                }
                "removed" => {
                    removed = Some(rest.parse::<usize>().map_err(|_| "bad removed count")?);
                }
                "" => {}
                other => return Err(format!("unknown layout-cache line `{other}`")),
            }
        }
        let kind = kind.ok_or("missing kind")?;
        let (w, h) = grid_dims.ok_or("missing grid")?;
        let tiles = tiles.ok_or("missing tiles")?;
        let removed = removed.ok_or("missing removed count")?;
        if tiles.chars().count() != (w as usize) * (h as usize) {
            return Err("tile row length disagrees with grid dimensions".into());
        }
        if data.is_empty() {
            return Err("layout has no data qubits".into());
        }
        let mut grid = Grid::filled(w, h, TileKind::Void);
        let mut data_count = 0usize;
        for (i, c) in tiles.chars().enumerate() {
            let t = TileId(i as u32);
            match c {
                'a' => grid.set_kind(t, TileKind::Ancilla),
                'v' => {}
                'd' => data_count += 1, // identity assigned below
                other => return Err(format!("unknown tile char `{other}`")),
            }
        }
        if data_count != data.len() {
            return Err("data line disagrees with tile map".into());
        }
        let in_grid = |t: TileId| (t.0 as usize) < (w as usize) * (h as usize);
        for (q, &t) in data.iter().enumerate() {
            if !in_grid(t) {
                return Err("data tile outside the grid".into());
            }
            if tiles.as_bytes()[t.0 as usize] != b'd' {
                return Err("data tile not marked `d` in the tile map".into());
            }
            grid.set_kind(t, TileKind::Data(QubitId(q as u32)));
        }
        blocks.sort_by_key(|&(q, _)| q);
        if blocks.iter().enumerate().any(|(i, &(q, _))| i != q) {
            return Err("block lines must cover every qubit exactly once".into());
        }
        if blocks.len() != data.len() {
            return Err("block count disagrees with data qubits".into());
        }
        let block_ancillas: Vec<Vec<TileId>> = blocks.into_iter().map(|(_, b)| b).collect();
        for block in &block_ancillas {
            for &t in block {
                if !in_grid(t) || tiles.as_bytes()[t.0 as usize] != b'a' {
                    return Err("block ancilla is not an ancilla tile".into());
                }
            }
        }
        Ok(Layout {
            grid,
            kind,
            data_tiles: data,
            block_ancillas,
            removed_ancillas: removed,
        })
    }

    /// Renders the fabric as ASCII art (Fig 15 style): `D` = data, `.` =
    /// ancilla, space = void.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for y in 0..self.grid.height() {
            for x in 0..self.grid.width() {
                let c = match self.grid.kind(self.grid.tile_at(x, y)) {
                    TileKind::Data(_) => 'D',
                    TileKind::Ancilla => '.',
                    TileKind::Void => ' ',
                };
                out.push(c);
                out.push(' ');
            }
            // Trim the trailing space for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_grid_shape() {
        let l = Layout::new(LayoutKind::Star2x2, 9).unwrap();
        assert_eq!(l.grid().width(), 6);
        assert_eq!(l.grid().height(), 6);
        assert_eq!(l.ancilla_tiles().len(), 27);
        assert!((l.ancilla_ratio() - 3.0).abs() < 1e-12);
        assert!(l.is_routable());
        // Data is at the block's bottom-left.
        assert_eq!(l.data_tile(QubitId(0)), l.grid().tile_at(0, 1));
        assert_eq!(l.data_tile(QubitId(4)), l.grid().tile_at(2, 3));
    }

    #[test]
    fn star_data_has_z_and_x_neighbors() {
        let l = Layout::new(LayoutKind::Star2x2, 4).unwrap();
        let adj = l.data_adjacency(QubitId(0));
        // q0's data tile is (0,1): N = TL ancilla, E = BR ancilla.
        let sides: Vec<Side> = adj.side.iter().map(|&(s, _)| s).collect();
        assert!(sides.contains(&Side::North));
        assert!(sides.contains(&Side::East));
        // NE diagonal (the TR prep ancilla) reachable via two helpers.
        let diag = adj
            .diagonal
            .iter()
            .find(|(c, _, _)| *c == Corner::NorthEast)
            .expect("NE diagonal present");
        assert_eq!(diag.2.len(), 2);
    }

    #[test]
    fn designated_prep_is_upper_right() {
        let l = Layout::new(LayoutKind::Star2x2, 4).unwrap();
        // q0 block at origin: TR = (1,0).
        assert_eq!(
            l.designated_prep_ancilla(QubitId(0)),
            Some(l.grid().tile_at(1, 0))
        );
    }

    #[test]
    fn compact_layout_connected() {
        let l = Layout::new(LayoutKind::Compact3x1, 12).unwrap();
        assert!((l.ancilla_ratio() - 2.0).abs() < 1e-12);
        assert!(l.is_routable());
        // Every data qubit keeps a Z-edge (north or south) ancilla neighbour
        // for ZZ injection.
        for q in 0..12 {
            let adj = l.data_adjacency(QubitId(q));
            let sides: Vec<Side> = adj.side.iter().map(|&(s, _)| s).collect();
            assert!(
                sides.contains(&Side::North) || sides.contains(&Side::South),
                "qubit {q} lacks a Z-edge ancilla: {sides:?}"
            );
        }
    }

    #[test]
    fn compression_reduces_ratio_and_stays_routable() {
        let mut l = Layout::new(LayoutKind::Star2x2, 16).unwrap();
        let achieved = l.compress(0.5, 7);
        assert!(achieved > 0.3, "achieved {achieved}");
        assert!(l.is_routable());
        assert!(l.ancilla_ratio() < 3.0);
        assert!((l.compression() - achieved).abs() < 1e-12);
    }

    #[test]
    fn full_compression_capped_by_connectivity() {
        let mut l = Layout::new(LayoutKind::Star2x2, 16).unwrap();
        let achieved = l.compress(1.0, 3);
        // Some removals are vetoed to keep the network connected, but most
        // succeed.
        assert!(achieved > 0.5, "achieved {achieved}");
        assert!(achieved <= 1.0);
        assert!(l.is_routable());
    }

    #[test]
    fn compression_zero_is_noop() {
        let mut l = Layout::new(LayoutKind::Star2x2, 8).unwrap();
        assert_eq!(l.compress(0.0, 1), 0.0);
        assert!((l.ancilla_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compression_deterministic_per_seed() {
        let mut a = Layout::new(LayoutKind::Star2x2, 16).unwrap();
        let mut b = Layout::new(LayoutKind::Star2x2, 16).unwrap();
        a.compress(0.75, 42);
        b.compress(0.75, 42);
        assert_eq!(a.render_ascii(), b.render_ascii());
    }

    #[test]
    fn render_shows_all_kinds() {
        let mut l = Layout::new(LayoutKind::Star2x2, 3).unwrap();
        l.compress(0.4, 1);
        let art = l.render_ascii();
        assert!(art.contains('D'));
        assert!(art.contains('.'));
        assert_eq!(art.lines().count(), l.grid().height() as usize);
    }

    #[test]
    fn cache_string_round_trips_compressed_layouts() {
        for kind in [LayoutKind::Star2x2, LayoutKind::Compact3x1] {
            for (n, fraction) in [(1u32, 0.0), (9, 0.0), (16, 0.5), (20, 1.0)] {
                let mut l = Layout::new(kind, n).unwrap();
                l.compress(fraction, 42);
                let text = l.to_cache_string();
                let back = Layout::from_cache_string(&text).unwrap();
                assert_eq!(back.kind(), l.kind());
                assert_eq!(back.num_qubits(), l.num_qubits());
                assert_eq!(back.render_ascii(), l.render_ascii());
                assert_eq!(back.compression(), l.compression());
                assert_eq!(back.to_cache_string(), text, "stable round trip");
                for q in 0..n {
                    assert_eq!(back.data_tile(QubitId(q)), l.data_tile(QubitId(q)));
                    assert_eq!(
                        back.block_ancillas(QubitId(q)),
                        l.block_ancillas(QubitId(q))
                    );
                }
            }
        }
    }

    #[test]
    fn cache_string_rejects_damage() {
        let mut l = Layout::new(LayoutKind::Star2x2, 4).unwrap();
        l.compress(0.5, 3);
        let text = l.to_cache_string();
        assert!(Layout::from_cache_string("garbage").is_err());
        assert!(Layout::from_cache_string(&text.replace("v1", "v9")).is_err());
        // Truncation drops required lines.
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(Layout::from_cache_string(&truncated).is_err());
        // A flipped tile char breaks the data/tile cross-check.
        let damaged = text.replacen('d', "a", 1);
        assert!(Layout::from_cache_string(&damaged).is_err());
    }

    #[test]
    fn zero_qubits_rejected() {
        assert!(Layout::new(LayoutKind::Star2x2, 0).is_err());
    }

    #[test]
    fn single_qubit_layout() {
        let l = Layout::new(LayoutKind::Star2x2, 1).unwrap();
        assert!(l.is_routable());
        assert_eq!(l.ancilla_tiles().len(), 3);
    }
}
