//! Bring your own circuit: parse the artifact's text format (§B.7) or
//! OpenQASM 2, then schedule it. Exact dyadic angles (`pi/4`, `pi/8`)
//! terminate their correction ladders early — fewer injections than Eq. 1's
//! 2-per-rotation bound for generic angles.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```

use rescq_repro::circuit::{parse_circuit, qasm};
use rescq_repro::sim::{simulate, SimConfig};

fn main() {
    // The artifact text format: gate count header, one gate per line.
    let text = "\
7
h 0
cx 0 1
rz 1 pi/4
rz 0 0.7853981
cx 1 2
rz 2 pi/16
h 2
";
    let circuit = parse_circuit(text, None).expect("valid circuit text");
    println!("parsed (artifact format): {}", circuit.stats());
    let report = simulate(&circuit, &SimConfig::default()).expect("simulation runs");
    println!(
        "  {:.0} cycles; {} injections for {} rotations (dyadic ladders stop early)",
        report.total_cycles(),
        report.counters.injections,
        circuit.stats().rz
    );

    // The same program as OpenQASM 2.
    let qasm_src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
t q[1];
rz(0.7853981) q[0];
cx q[1],q[2];
rz(pi/16) q[2];
h q[2];
"#;
    let circuit2 = qasm::parse_qasm(qasm_src).expect("valid qasm");
    println!("parsed (OpenQASM 2): {}", circuit2.stats());
    let report2 = simulate(&circuit2, &SimConfig::default()).expect("simulation runs");
    println!("  {:.0} cycles", report2.total_cycles());
}
