//! # rescq-rus
//!
//! Repeat-until-success (RUS) models for continuous-angle magic-state
//! architectures: non-deterministic `|mθ⟩` preparation
//! ([`PreparationModel`], paper Appendix A.1 / Fig 16), the two injection
//! strategies and their correction ladder ([`InjectionLadder`], §3.2 /
//! Table 1 / Eq. 1), and the Clifford+T comparator used by Fig 3 and
//! Appendix A.2 ([`clifford_t`]).
//!
//! # Quick example
//!
//! ```
//! use rand::SeedableRng;
//! use rescq_rus::{PreparationModel, RusParams};
//!
//! let model = PreparationModel::new(RusParams::new(7, 1e-4));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let rounds = model.sample_prep_rounds(&mut rng);
//! assert!(rounds >= 1);
//! assert!(model.expected_cycles() < 2.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clifford_t;
mod inject;
mod params;
mod prep;

pub use clifford_t::{
    clifford_t_overhead, fig3_series, max_rotations, rus_rz_expected_cycles, CompilationScheme,
    Fig3Row, TFactoryModel,
};
pub use inject::{expected_injections, InjectionLadder, InjectionStrategy, LadderStep};
pub use params::{PrepCalibration, RusParams};
pub use prep::PreparationModel;
