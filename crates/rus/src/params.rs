//! Shared code-distance / error-rate parameters and calibration constants.

use std::fmt;

/// Physical parameters of the surface-code substrate.
///
/// One lattice-surgery cycle comprises `d` rounds of syndrome measurement
/// (paper §5.2.1), so durations are tracked in *measurement rounds* and
/// converted with [`RusParams::rounds_to_cycles`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RusParams {
    /// Code distance `d` (≥ 3, odd in practice).
    pub distance: u32,
    /// Physical qubit error rate `p` (e.g. `1e-4`).
    pub physical_error_rate: f64,
}

impl RusParams {
    /// Creates parameters, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics when `distance < 2` or `physical_error_rate ∉ (0, 0.5)`.
    pub fn new(distance: u32, physical_error_rate: f64) -> Self {
        assert!(distance >= 2, "code distance must be at least 2");
        assert!(
            physical_error_rate > 0.0 && physical_error_rate < 0.5,
            "physical error rate must be in (0, 0.5), got {physical_error_rate}"
        );
        RusParams {
            distance,
            physical_error_rate,
        }
    }

    /// Number of `[[4,1,1,2]]` subsystem-code slots that fit in one ancilla
    /// patch: `(d² − 1) / 2` (paper Appendix A.1).
    pub fn subsystem_slots(&self) -> u32 {
        (self.distance * self.distance - 1) / 2
    }

    /// Measurement rounds per lattice-surgery cycle (`d`).
    pub fn rounds_per_cycle(&self) -> u32 {
        self.distance
    }

    /// Converts measurement rounds to (fractional) lattice-surgery cycles.
    pub fn rounds_to_cycles(&self, rounds: u64) -> f64 {
        rounds as f64 / self.distance as f64
    }

    /// Converts whole lattice-surgery cycles to measurement rounds.
    pub fn cycles_to_rounds(&self, cycles: u32) -> u64 {
        cycles as u64 * self.distance as u64
    }
}

impl Default for RusParams {
    /// The paper's headline configuration: `d = 7`, `p = 10⁻⁴` (Fig 10).
    fn default() -> Self {
        RusParams::new(7, 1e-4)
    }
}

impl fmt::Display for RusParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d={} p={:.0e}", self.distance, self.physical_error_rate)
    }
}

/// Calibration constants of the RUS preparation model (see `DESIGN.md` §4.2).
///
/// The paper and \[1\] publish curves rather than closed forms; these constants
/// are chosen so the model reproduces the *shape* of Fig 16: expected attempts
/// close to 1 and increasing with `d`, expected cycles decreasing with `d` and
/// increasing with `p`, and a worst-case preparation time near 2.2 cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepCalibration {
    /// Physical operations in one `[[4,1,1,2]]` subsystem injection circuit;
    /// per-slot round-1 success is `(1−p)^c1`.
    pub c1: f64,
    /// Syndrome-area factor of the round-2 expansion post-selection; round-2
    /// success is `(1−p)^(c2·d²)`.
    pub c2: f64,
    /// Measurement rounds per round-1 slot trial.
    pub rounds_round1: u32,
    /// Measurement rounds for the round-2 expansion check.
    pub rounds_round2: u32,
}

impl Default for PrepCalibration {
    fn default() -> Self {
        PrepCalibration {
            c1: 15.0,
            c2: 2.0,
            rounds_round1: 3,
            rounds_round2: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_match_formula() {
        assert_eq!(RusParams::new(3, 1e-4).subsystem_slots(), 4);
        assert_eq!(RusParams::new(7, 1e-4).subsystem_slots(), 24);
        assert_eq!(RusParams::new(13, 1e-4).subsystem_slots(), 84);
    }

    #[test]
    fn round_conversions() {
        let p = RusParams::new(7, 1e-4);
        assert_eq!(p.cycles_to_rounds(2), 14);
        assert!((p.rounds_to_cycles(14) - 2.0).abs() < 1e-12);
        assert!((p.rounds_to_cycles(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "code distance")]
    fn tiny_distance_rejected() {
        let _ = RusParams::new(1, 1e-4);
    }

    #[test]
    #[should_panic(expected = "physical error rate")]
    fn bad_error_rate_rejected() {
        let _ = RusParams::new(7, 0.9);
    }

    #[test]
    fn default_is_headline_config() {
        let p = RusParams::default();
        assert_eq!(p.distance, 7);
        assert!((p.physical_error_rate - 1e-4).abs() < 1e-18);
    }
}
