//! Per-tile Pauli frames: the accumulated record of decoded corrections.
//!
//! Real control stacks never apply corrections physically — they fold each
//! decoded correction into a software *Pauli frame* and reinterpret later
//! measurements through it. Here the frame is a bit vector over one round's
//! space-like edges (the tile's data-qubit address space): every window's
//! spatial correction edges are XORed in, collapsing the time dimension
//! (two corrections on the same qubit at different rounds cancel, exactly
//! as Pauli algebra does).

use crate::graph::DetectorGraph;
use crate::syndrome::SyndromeBits;

/// The accumulated Pauli correction of one tile.
#[derive(Debug, Clone)]
pub struct PauliFrame {
    /// Frame bits over one round's space-like edge address space.
    bits: SyndromeBits,
    /// Total edge flips folded in (before cancellation).
    flips: u64,
    /// Parity of folded-in top-boundary edges: flips whenever an applied
    /// correction crossed the logical cut, i.e. the frame's accumulated
    /// logical byproduct.
    logical_parity: bool,
    /// Top-cut width (the first `distance` spatial addresses are the top
    /// boundary edges of the round layer, by construction order).
    top_width: u32,
}

impl PauliFrame {
    /// An empty frame for a tile whose windows decode on `graph`-shaped
    /// layers (only the per-round spatial address space matters; windows of
    /// any round count fold into the same frame).
    pub fn new(graph: &DetectorGraph) -> Self {
        PauliFrame {
            bits: SyndromeBits::new(graph.spatial_per_round()),
            flips: 0,
            logical_parity: false,
            top_width: graph.distance(),
        }
    }

    /// Folds a window's correction chain into the frame: every space-like
    /// correction edge toggles its per-round address; time-like edges are
    /// measurement reinterpretations and leave the frame untouched.
    pub fn absorb(&mut self, graph: &DetectorGraph, correction: &SyndromeBits) {
        debug_assert_eq!(correction.len(), graph.num_edges());
        debug_assert_eq!(self.bits.len(), graph.spatial_per_round());
        let mut cut_flips = 0u32;
        for e in correction.iter_ones() {
            if !graph.is_spatial(e) {
                continue;
            }
            let addr = e % graph.spatial_per_round();
            self.bits.toggle(addr);
            self.flips += 1;
            if addr < self.top_width {
                cut_flips += 1;
            }
        }
        if cut_flips % 2 == 1 {
            self.logical_parity = !self.logical_parity;
        }
    }

    /// Data-qubit addresses currently carrying a deferred correction.
    pub fn active_corrections(&self) -> u32 {
        self.bits.popcount()
    }

    /// Whether address `addr` currently carries a deferred correction.
    pub fn get(&self, addr: u32) -> bool {
        self.bits.get(addr)
    }

    /// Total edge flips folded in over the tile's lifetime.
    pub fn total_flips(&self) -> u64 {
        self.flips
    }

    /// The frame's accumulated logical byproduct parity (odd = later
    /// logical measurements on this tile read out inverted).
    pub fn logical_parity(&self) -> bool {
        self.logical_parity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn absorb_cancels_like_pauli_algebra() {
        let g = DetectorGraph::new(3, 2);
        let mut frame = PauliFrame::new(&g);
        // Same spatial address in both rounds: X·X = I, the frame clears.
        let addr = 4u32;
        let mut c = SyndromeBits::new(g.num_edges());
        c.set(addr);
        c.set(addr + g.spatial_per_round());
        frame.absorb(&g, &c);
        assert_eq!(frame.active_corrections(), 0, "paired flips cancel");
        assert_eq!(frame.total_flips(), 2, "both flips were recorded");
        assert!(!frame.get(addr));
    }

    #[test]
    fn time_edges_never_touch_the_frame() {
        let g = DetectorGraph::new(3, 2);
        let mut frame = PauliFrame::new(&g);
        let mut c = SyndromeBits::new(g.num_edges());
        c.set(g.num_edges() - 1); // a time-like edge
        frame.absorb(&g, &c);
        assert_eq!(frame.active_corrections(), 0);
        assert_eq!(frame.total_flips(), 0);
    }

    #[test]
    fn logical_parity_tracks_cut_crossings() {
        let g = DetectorGraph::new(3, 1);
        let mut frame = PauliFrame::new(&g);
        // A full vertical chain: crosses the cut once (edge 0 is a top
        // boundary edge).
        let mut c = SyndromeBits::new(g.num_edges());
        c.set(0);
        c.set(3);
        c.set(6);
        frame.absorb(&g, &c);
        assert!(frame.logical_parity());
        // Absorbing it again undoes the logical byproduct.
        frame.absorb(&g, &c);
        assert!(!frame.logical_parity());
        assert_eq!(frame.active_corrections(), 0);
    }

    /// Model-based check mirroring the syndrome-word tests: a frame fed
    /// random spatial corrections matches a HashSet-XOR model address by
    /// address.
    #[test]
    fn frame_matches_hashset_model() {
        let g = DetectorGraph::new(5, 3);
        let mut frame = PauliFrame::new(&g);
        let mut model: HashSet<u32> = HashSet::new();
        let mut state = 77u64;
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 32) as u32) % g.num_edges();
            let mut c = SyndromeBits::new(g.num_edges());
            c.set(e);
            frame.absorb(&g, &c);
            if g.is_spatial(e) {
                let addr = e % g.spatial_per_round();
                if !model.insert(addr) {
                    model.remove(&addr);
                }
            }
        }
        assert_eq!(frame.active_corrections() as usize, model.len());
        for addr in 0..g.spatial_per_round() {
            assert_eq!(frame.get(addr), model.contains(&addr), "addr {addr}");
        }
    }
}
