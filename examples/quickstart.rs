//! Quickstart: build a small Clifford+Rz circuit, run it under the RESCQ
//! realtime scheduler and the static greedy baseline, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rescq_repro::prelude::*;

fn main() {
    // A toy program: entangle a 4-qubit register, then rotate each qubit by
    // a generic (non-Clifford) angle — each rotation needs a
    // repeat-until-success |mθ⟩ preparation on the fabric.
    let mut circuit = Circuit::new(4);
    circuit.h(0);
    for q in 0..3u32 {
        circuit.cnot(q, q + 1);
    }
    for q in 0..4u32 {
        circuit.rz(q, Angle::radians(0.3 + 0.1 * q as f64));
    }

    println!("circuit: {} gates ({})", circuit.len(), circuit.stats());

    for scheduler in [SchedulerKind::Greedy, SchedulerKind::Rescq] {
        let config = SimConfig::builder()
            .distance(7)
            .physical_error_rate(1e-4)
            .scheduler(scheduler)
            .seed(42)
            .build();
        let report = simulate(&circuit, &config).expect("simulation runs");
        println!(
            "{scheduler:>9}: {:>6.0} cycles, {} injections, idle {:.0}%",
            report.total_cycles(),
            report.counters.injections,
            report.idle_fraction() * 100.0
        );
    }
}
