//! Priority-class policy for the realtime engine.
//!
//! The [`rescq_core::ReservationLedger`] arbitrates reorders by
//! [`rescq_core::TaskClass`]; this module decides *which* class each piece
//! of scheduled work carries when [`crate::SimConfig::priority_classes`]
//! is set:
//!
//! - **Factory** — work homed in a region hosting T-gate factory tiles
//!   (see [`factory_qubits`]): the rotation pipelines whose `|mθ⟩` output
//!   feeds the rest of the program. Keeping them fed is the point of the
//!   lattice, so they outrank everything by default.
//! - **Injection** — a continuous rotation whose predecessor gates were
//!   already complete when it was scheduled: its injection is the
//!   latency-critical feed-forward step.
//! - **Compute** — CNOT surgeries and Hadamards (and the default class of
//!   every entry, so class-blind runs are uniform-compute and bit-identical
//!   to the pre-lattice engine).
//! - **Speculative** — a rotation enqueued preemptively while its
//!   predecessors are still executing (§4.1's lookahead): it cannot consume
//!   a prepared state yet, so its claims yield to everyone.
//!
//! Classification is a pure function of the circuit and the fabric — never
//! of thread count or timing — so classed runs stay deterministic and
//! thread-count invariant like everything else in the engine.

use rescq_circuit::Circuit;

/// Minimum continuous rotations on a qubit's gate chain before it can count
/// as a factory tile.
const FACTORY_MIN_ROTATIONS: usize = 8;

/// Required dominance of rotations over two-qubit gate endpoints on a
/// factory tile's chain (`rz ≥ RATIO × cnot_endpoints`).
const FACTORY_RZ_PER_CNOT: usize = 4;

/// Classifies the circuit's qubits as T-gate factory tiles.
///
/// A qubit is a factory tile when its gate chain is dominated by
/// continuous-angle rotations — a repeat-until-success state-production
/// pipeline — rather than by two-qubit compute: at least
/// `FACTORY_MIN_ROTATIONS` (8) continuous rotations, and at least
/// `FACTORY_RZ_PER_CNOT` (4) of them per CNOT endpoint on the chain. The
/// `factory_nN` workload family's factory tiles satisfy this by
/// construction; dense compute blocks (CNOT brickwork with sparse
/// rotations) never do.
///
/// Deterministic function of the circuit alone.
///
/// # Example
///
/// ```
/// use rescq_circuit::{Angle, Circuit};
///
/// let mut c = Circuit::new(2);
/// for _ in 0..10 {
///     c.rz(0, Angle::radians(0.3)); // qubit 0: a T-production pipeline
/// }
/// c.cnot(0, 1); // qubit 1 only consumes
/// assert_eq!(rescq_sim::factory_qubits(&c), vec![true, false]);
/// ```
pub fn factory_qubits(circuit: &Circuit) -> Vec<bool> {
    let n = circuit.num_qubits() as usize;
    let mut rz = vec![0usize; n];
    let mut cnot = vec![0usize; n];
    for gate in circuit.gates() {
        match gate {
            rescq_circuit::Gate::Rz { qubit, .. } if gate.is_continuous_rotation() => {
                rz[qubit.index()] += 1;
            }
            rescq_circuit::Gate::Cnot { control, target } => {
                cnot[control.index()] += 1;
                cnot[target.index()] += 1;
            }
            _ => {}
        }
    }
    (0..n)
        .map(|q| rz[q] >= FACTORY_MIN_ROTATIONS && rz[q] >= FACTORY_RZ_PER_CNOT * cnot[q])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescq_circuit::Angle;

    #[test]
    fn rotation_pipelines_are_factory_compute_blocks_are_not() {
        let mut c = Circuit::new(3);
        // Qubit 0: a T-production pipeline — many rotations, one delivery
        // CNOT. Qubits 1, 2: compute block.
        for _ in 0..10 {
            c.rz(0, Angle::radians(0.3));
        }
        c.cnot(0, 1);
        for _ in 0..6 {
            c.cnot(1, 2);
        }
        c.rz(1, Angle::radians(0.2));
        assert_eq!(factory_qubits(&c), vec![true, false, false]);
    }

    #[test]
    fn clifford_rotations_do_not_count() {
        let mut c = Circuit::new(1);
        for _ in 0..20 {
            c.rz(0, Angle::S); // Clifford: no |mθ⟩ pipeline
        }
        assert_eq!(factory_qubits(&c), vec![false]);
    }

    #[test]
    fn short_chains_are_never_factory() {
        let mut c = Circuit::new(1);
        for _ in 0..FACTORY_MIN_ROTATIONS - 1 {
            c.rz(0, Angle::radians(0.1));
        }
        assert_eq!(factory_qubits(&c), vec![false]);
    }
}
