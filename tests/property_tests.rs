//! Property-based tests spanning crates: parser round-trips, DAG ordering,
//! compression safety and engine determinism on random circuits.

use proptest::prelude::*;
use rescq_repro::circuit::{parse_circuit, write_circuit, Angle, Circuit, DependencyDag, Gate};
use rescq_repro::core::SchedulerKind;
use rescq_repro::lattice::{Layout, LayoutKind};
use rescq_repro::sim::{simulate, SimConfig};

fn arb_gate(num_qubits: u32) -> impl Strategy<Value = Gate> {
    let q = 0..num_qubits;
    let q2 = (0..num_qubits, 0..num_qubits)
        .prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|q| Gate::h(q)),
        q.clone().prop_map(|q| Gate::x(q)),
        q.clone().prop_map(|q| Gate::z(q)),
        (q.clone(), 0.01f64..3.0).prop_map(|(q, a)| Gate::rz(q, Angle::radians(a))),
        (q, 1i64..16, 0u32..6).prop_map(|(q, n, k)| Gate::rz(q, Angle::dyadic_pi(n, k))),
        q2.prop_map(|(c, t)| Gate::cnot(c, t)),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2u32..8).prop_flat_map(|n| {
        proptest::collection::vec(arb_gate(n), 1..40)
            .prop_map(move |gates| Circuit::from_gates(n, gates).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn text_format_round_trips(circuit in arb_circuit()) {
        let text = write_circuit(&circuit);
        let parsed = parse_circuit(&text, Some(circuit.num_qubits())).unwrap();
        prop_assert_eq!(parsed.gates(), circuit.gates());
    }

    #[test]
    fn dag_layers_respect_dependencies(circuit in arb_circuit()) {
        let dag = DependencyDag::new(&circuit);
        let order: Vec<_> = dag.layers().iter().flatten().copied().collect();
        prop_assert!(dag.respects_dependencies(&order));
    }

    #[test]
    fn compression_preserves_routability(
        n in 2u32..20,
        fraction in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut layout = Layout::new(LayoutKind::Star2x2, n).unwrap();
        layout.compress(fraction, seed);
        prop_assert!(layout.is_routable());
    }

    #[test]
    fn engines_are_deterministic(circuit in arb_circuit(), seed in 0u64..50) {
        for scheduler in [SchedulerKind::Rescq, SchedulerKind::Greedy] {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let a = simulate(&circuit, &config).unwrap();
            let b = simulate(&circuit, &config).unwrap();
            prop_assert_eq!(a.total_rounds, b.total_rounds);
            prop_assert_eq!(a.gates_executed, circuit.len());
        }
    }

    #[test]
    fn doubling_ladder_always_terminates_for_dyadics(n in 1i64..1000, k in 0u32..40) {
        let mut a = Angle::dyadic_pi(n, k);
        let mut steps = 0;
        while !a.is_clifford() {
            a = a.double();
            steps += 1;
            prop_assert!(steps <= 40, "ladder failed to terminate");
        }
    }
}
