//! Per-ancilla operation queues — the "Q" of RESCQ (paper §4.1, Table 2,
//! Fig 7).
//!
//! Every ancilla tile owns a FIFO queue of the operations it will participate
//! in. An entry records the gate (task), the ancilla's *role* in it, a helper
//! ancilla when the role needs one, and — for rotation tasks — the current
//! ladder angle, which is rewritten **in place** from `θ` to `2θ` when a
//! sibling ancilla's preparation succeeds (anticipating injection failure).
//! Seniority (enqueue order) decides priority; the simulation enqueues
//! atomically in scheduling order, so entry order is consistent across all
//! queues and the wait-for graph between gates stays acyclic. Any
//! *reordering* of a queue (preemption) must therefore go through the
//! [`crate::ReservationLedger`], which owns the cross-queue acyclicity
//! proof — raw queues only expose reorder primitives crate-privately. The
//! queue itself is a plain deterministic container: no clocks, no
//! randomness, identical op sequences give identical states.

use crate::reservation::{ReservationId, TaskClass};
use crate::TaskId;
use rescq_circuit::Angle;
use rescq_lattice::TileId;
use std::collections::VecDeque;

/// The ancilla's role in a queued operation (Table 2's `gate`/`helper`
/// columns, refined by how the ancilla will be used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Prepare `|mθ⟩` directly adjacent to the data qubit's Z edge; inject
    /// via the 1-cycle ZZ strategy.
    PrepZz,
    /// Prepare `|mθ⟩` on a diagonal ancilla; inject via the 2-cycle CNOT
    /// strategy through `helper` (which sits on the data qubit's X edge).
    PrepDiagonal {
        /// The X-edge ancilla the injection routes through.
        helper: TileId,
    },
    /// Prepare `|mθ⟩` on an ancilla adjacent to the data qubit's X edge;
    /// CNOT-style injection without an extra helper.
    PrepX,
    /// Reserved to assist an injection (the X-edge routing ancilla of
    /// Fig 7's ancillas 4 and 5).
    Helper,
    /// Part of a CNOT lattice-surgery path.
    Route,
    /// Perform an edge-rotation for the task's data qubit.
    EdgeRotate,
}

impl Role {
    /// Whether this role prepares a rotation state.
    pub fn is_prep(self) -> bool {
        matches!(self, Role::PrepZz | Role::PrepDiagonal { .. } | Role::PrepX)
    }
}

/// Status of the queue's *top* entry (Table 2's `status` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntryStatus {
    /// `R`: ready to execute the next gate.
    #[default]
    Ready,
    /// `E`: executing the top of the queue.
    Executing,
    /// `P`: preparing the `|mθ⟩` state for the rotation at the top.
    Preparing,
    /// `D`: done preparing; holding `|mθ⟩`, ready to inject.
    DonePreparing,
    /// `F`: finished executing the gate at the top (about to pop).
    Finished,
}

/// One element of an ancilla queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntry {
    /// The gate instance this entry serves.
    pub task: TaskId,
    /// This ancilla's role.
    pub role: Role,
    /// Current ladder angle for rotation tasks (`Angle::ZERO` otherwise).
    pub angle: Angle,
    /// Status; meaningful only while this entry is at the top (Table 2).
    pub status: EntryStatus,
    /// Priority class in the [`crate::ClassLattice`]; arbitration lets a
    /// strictly higher class reorder ahead of a strictly lower one (cycle
    /// check permitting) while equal classes keep the seniority rule. The
    /// default ([`TaskClass::COMPUTE`]) makes class-blind queues uniform,
    /// so default runs reproduce the pre-lattice ledger bit for bit.
    pub class: TaskClass,
    /// The ledger reservation backing this entry
    /// ([`ReservationId::UNREGISTERED`] until pushed through a
    /// [`crate::ReservationLedger`]).
    pub reservation: ReservationId,
}

impl QueueEntry {
    /// Creates a `Ready` entry of the default [`TaskClass`].
    pub fn new(task: TaskId, role: Role, angle: Angle) -> Self {
        QueueEntry {
            task,
            role,
            angle,
            status: EntryStatus::Ready,
            class: TaskClass::default(),
            reservation: ReservationId::UNREGISTERED,
        }
    }

    /// The same entry with its priority class set (builder style).
    pub fn with_class(mut self, class: TaskClass) -> Self {
        self.class = class;
        self
    }
}

/// The FIFO queue of one ancilla tile.
///
/// # Example
///
/// ```
/// use rescq_circuit::Angle;
/// use rescq_core::{AncillaQueue, EntryStatus, QueueEntry, Role, TaskId};
///
/// let mut q = AncillaQueue::default();
/// q.push(QueueEntry::new(TaskId(0), Role::PrepZz, Angle::T));
/// q.push(QueueEntry::new(TaskId(1), Role::Route, Angle::ZERO));
/// assert_eq!(q.top().unwrap().task, TaskId(0));
///
/// // Sibling prep succeeded: rewrite the ladder angle in place (§4.1).
/// q.update_angle(TaskId(0), Angle::S);
/// assert_eq!(q.top().unwrap().angle, Angle::S);
///
/// q.remove_task(TaskId(0));
/// assert_eq!(q.top().unwrap().task, TaskId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AncillaQueue {
    entries: VecDeque<QueueEntry>,
}

impl AncillaQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (seniority order).
    pub fn push(&mut self, entry: QueueEntry) {
        self.entries.push_back(entry);
    }

    /// The top (oldest) entry.
    pub fn top(&self) -> Option<&QueueEntry> {
        self.entries.front()
    }

    /// Mutable access to the top entry.
    pub fn top_mut(&mut self) -> Option<&mut QueueEntry> {
        self.entries.front_mut()
    }

    /// Pops the top entry.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.entries.pop_front()
    }

    /// Whether `task` has an entry anywhere in the queue.
    pub fn contains_task(&self, task: TaskId) -> bool {
        self.entries.iter().any(|e| e.task == task)
    }

    /// The entry for `task`, if present.
    pub fn entry(&self, task: TaskId) -> Option<&QueueEntry> {
        self.entries.iter().find(|e| e.task == task)
    }

    /// Position of `task` in the queue (0 = top).
    pub fn position(&self, task: TaskId) -> Option<usize> {
        self.entries.iter().position(|e| e.task == task)
    }

    /// Removes every entry of `task` (gate completed or cancelled). Returns
    /// how many entries were removed.
    pub fn remove_task(&mut self, task: TaskId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.task != task);
        before - self.entries.len()
    }

    /// Rewrites the ladder angle of `task`'s entry in place (§4.1's
    /// `Rθ → R2θ` update). Returns whether an entry was updated.
    pub fn update_angle(&mut self, task: TaskId, angle: Angle) -> bool {
        let mut updated = false;
        for e in &mut self.entries {
            if e.task == task {
                e.angle = angle;
                updated = true;
            }
        }
        updated
    }

    /// Rewrites the priority class of `task`'s entries in place (e.g. a
    /// speculative rotation promoted once its predecessors complete).
    /// Queue position — and therefore the wait graph — is untouched; the
    /// new class affects future arbitration only. Returns whether an entry
    /// was updated.
    pub fn update_class(&mut self, task: TaskId, class: TaskClass) -> bool {
        let mut updated = false;
        for e in &mut self.entries {
            if e.task == task {
                e.class = class;
                updated = true;
            }
        }
        updated
    }

    /// Iterates entries from top to back.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Moves the entry at `pos` to the top, preserving the relative order of
    /// everything else (ledger-mediated preemption; see
    /// [`crate::ReservationLedger::try_preempt`]).
    pub(crate) fn move_to_front(&mut self, pos: usize) {
        if let Some(e) = self.entries.remove(pos) {
            self.entries.push_front(e);
        }
    }

    /// Sets the status of the entry at `pos` (ledger internals).
    pub(crate) fn set_status_at(&mut self, pos: usize, status: EntryStatus) {
        if let Some(e) = self.entries.get_mut(pos) {
            e.status = status;
        }
    }

    /// Expected rounds until this ancilla is free: the sum of per-entry
    /// expected durations (§4.2's `E[f_a] = Σ E[τ_o]`), via a caller-supplied
    /// estimator (the engine knows gate kinds and RUS expectations).
    pub fn expected_free_rounds(&self, estimate: impl FnMut(&QueueEntry) -> u64) -> u64 {
        self.entries.iter().map(estimate).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task: u32, role: Role) -> QueueEntry {
        QueueEntry::new(TaskId(task), role, Angle::ZERO)
    }

    #[test]
    fn fifo_order() {
        let mut q = AncillaQueue::new();
        q.push(entry(0, Role::Route));
        q.push(entry(1, Role::Helper));
        q.push(entry(2, Role::PrepZz));
        assert_eq!(q.len(), 3);
        assert_eq!(q.top().unwrap().task, TaskId(0));
        assert_eq!(q.pop().unwrap().task, TaskId(0));
        assert_eq!(q.top().unwrap().task, TaskId(1));
        assert_eq!(q.position(TaskId(2)), Some(1));
    }

    #[test]
    fn remove_task_clears_all_entries() {
        let mut q = AncillaQueue::new();
        q.push(entry(5, Role::Route));
        q.push(entry(6, Role::Helper));
        q.push(entry(5, Role::EdgeRotate));
        assert_eq!(q.remove_task(TaskId(5)), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.contains_task(TaskId(5)));
        assert!(q.contains_task(TaskId(6)));
    }

    #[test]
    fn in_place_angle_update() {
        let mut q = AncillaQueue::new();
        q.push(QueueEntry::new(TaskId(0), Role::Route, Angle::ZERO));
        q.push(QueueEntry::new(TaskId(1), Role::PrepZz, Angle::T));
        assert!(q.update_angle(TaskId(1), Angle::T.double()));
        assert_eq!(q.entry(TaskId(1)).unwrap().angle, Angle::S);
        // Position unchanged: the update is in place.
        assert_eq!(q.position(TaskId(1)), Some(1));
        assert!(!q.update_angle(TaskId(9), Angle::T));
    }

    #[test]
    fn status_only_on_top() {
        let mut q = AncillaQueue::new();
        q.push(entry(0, Role::PrepZz));
        q.top_mut().unwrap().status = EntryStatus::Preparing;
        assert_eq!(q.top().unwrap().status, EntryStatus::Preparing);
    }

    #[test]
    fn expected_free_time_sums_queue() {
        let mut q = AncillaQueue::new();
        q.push(entry(0, Role::Route)); // CNOT: 2 cycles = 14 rounds at d=7
        q.push(entry(1, Role::EdgeRotate)); // 3 cycles = 21 rounds
        let est = |e: &QueueEntry| match e.role {
            Role::Route => 14,
            Role::EdgeRotate => 21,
            _ => 0,
        };
        assert_eq!(q.expected_free_rounds(est), 35);
        assert_eq!(AncillaQueue::new().expected_free_rounds(est), 0);
    }

    #[test]
    fn role_prep_classification() {
        assert!(Role::PrepZz.is_prep());
        assert!(Role::PrepDiagonal { helper: TileId(3) }.is_prep());
        assert!(Role::PrepX.is_prep());
        assert!(!Role::Helper.is_prep());
        assert!(!Role::Route.is_prep());
    }
}
