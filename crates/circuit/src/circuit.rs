//! The [`Circuit`] container: an ordered gate list over `n` logical qubits.

use crate::{Angle, Gate, GateId, QubitId};
use std::fmt;

/// Error raised when a gate references a qubit outside the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QubitOutOfRange {
    /// The offending qubit.
    pub qubit: QubitId,
    /// The circuit's qubit count.
    pub num_qubits: u32,
}

impl fmt::Display for QubitOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qubit {} out of range for circuit with {} qubits",
            self.qubit, self.num_qubits
        )
    }
}

impl std::error::Error for QubitOutOfRange {}

/// Gate-count statistics mirroring the columns of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateStats {
    /// Total gates of all kinds.
    pub total: usize,
    /// Continuous-angle (non-Clifford) `Rz` gates — the paper's `#Rz` column.
    pub rz: usize,
    /// CNOT gates — the paper's `#CNOT` column.
    pub cnot: usize,
    /// Hadamard gates.
    pub h: usize,
    /// Pauli X/Z gates (zero-cost).
    pub pauli: usize,
    /// Clifford `Rz` gates (S, Z, identity — zero-cost).
    pub clifford_rz: usize,
}

impl fmt::Display for GateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} rz={} cnot={} h={} pauli={} clifford_rz={}",
            self.total, self.rz, self.cnot, self.h, self.pauli, self.clifford_rz
        )
    }
}

/// An ordered list of gates over `num_qubits` logical qubits.
///
/// Gates are stored in program order; [`GateId`]s are indices into this order.
/// The structural dependency view lives in [`crate::DependencyDag`].
///
/// # Example
///
/// ```
/// use rescq_circuit::{Angle, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).rz(1, Angle::radians(0.42));
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.stats().rz, 1);
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from parts, validating qubit ranges.
    ///
    /// # Errors
    ///
    /// Returns [`QubitOutOfRange`] if any gate references a qubit `≥ num_qubits`.
    pub fn from_gates(
        num_qubits: u32,
        gates: impl IntoIterator<Item = Gate>,
    ) -> Result<Self, QubitOutOfRange> {
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.try_push(g)?;
        }
        Ok(c)
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> Gate {
        self.gates[id.index()]
    }

    /// Iterator over `(GateId, Gate)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, Gate)> + '_ {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), *g))
    }

    /// A stable 64-bit content hash of the circuit (FNV-1a over the qubit
    /// count and the exact gate stream).
    ///
    /// Unlike `std::hash`, the value is independent of process, platform and
    /// standard-library version, so it is safe to persist — sweep harnesses
    /// use it as a content-addressed cache key and to invalidate resumable
    /// checkpoints when a circuit file changes between runs.
    ///
    /// # Example
    ///
    /// ```
    /// use rescq_circuit::{Angle, Circuit};
    ///
    /// let mut a = Circuit::new(2);
    /// a.h(0).cnot(0, 1);
    /// let mut b = a.clone();
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// b.rz(1, Angle::T);
    /// assert_ne!(a.content_hash(), b.content_hash());
    /// ```
    pub fn content_hash(&self) -> u64 {
        // Fixed five-word encoding per gate keeps the stream unambiguous.
        fn words(gate: &Gate) -> [u64; 5] {
            match *gate {
                Gate::Rz { qubit, angle } => {
                    let (atag, a, b) = match angle {
                        Angle::DyadicPi { num, k } => (0, num as u64, k as u64),
                        Angle::Radians(r) => (1, r.to_bits(), 0),
                    };
                    [1, qubit.0 as u64, atag, a, b]
                }
                Gate::H { qubit } => [2, qubit.0 as u64, 0, 0, 0],
                Gate::X { qubit } => [3, qubit.0 as u64, 0, 0, 0],
                Gate::Z { qubit } => [4, qubit.0 as u64, 0, 0, 0],
                Gate::Cnot { control, target } => [5, control.0 as u64, target.0 as u64, 0, 0],
            }
        }
        let bytes = std::iter::once(self.num_qubits as u64)
            .chain(self.gates.iter().flat_map(words))
            .flat_map(u64::to_le_bytes);
        crate::hash::fnv1a_64(bytes)
    }

    /// Appends a gate, validating its qubits.
    ///
    /// # Errors
    ///
    /// Returns [`QubitOutOfRange`] if the gate references a qubit `≥ num_qubits`.
    pub fn try_push(&mut self, gate: Gate) -> Result<GateId, QubitOutOfRange> {
        for q in gate.qubits() {
            if q.0 >= self.num_qubits {
                return Err(QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.gates.push(gate);
        Ok(GateId(self.gates.len() - 1))
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `≥ num_qubits`; use
    /// [`Circuit::try_push`] for fallible insertion.
    pub fn push(&mut self, gate: Gate) -> GateId {
        self.try_push(gate).expect("gate qubits in range")
    }

    /// Appends `Rz(angle)` on `qubit`. Chainable.
    pub fn rz(&mut self, qubit: impl Into<QubitId>, angle: Angle) -> &mut Self {
        self.push(Gate::rz(qubit, angle));
        self
    }

    /// Appends a Hadamard on `qubit`. Chainable.
    pub fn h(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::h(qubit));
        self
    }

    /// Appends a Pauli-X on `qubit`. Chainable.
    pub fn x(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::x(qubit));
        self
    }

    /// Appends a Pauli-Z on `qubit`. Chainable.
    pub fn z(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::z(qubit));
        self
    }

    /// Appends `S = Rz(π/2)` on `qubit` (Clifford, zero-cost). Chainable.
    pub fn s(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::rz(qubit, Angle::S));
        self
    }

    /// Appends `S† = Rz(−π/2)` on `qubit`. Chainable.
    pub fn sdg(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::rz(qubit, Angle::dyadic_pi(-1, 1)));
        self
    }

    /// Appends `T = Rz(π/4)` on `qubit`. Chainable.
    pub fn t(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::rz(qubit, Angle::T));
        self
    }

    /// Appends `T† = Rz(−π/4)` on `qubit`. Chainable.
    pub fn tdg(&mut self, qubit: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::rz(qubit, Angle::dyadic_pi(-1, 2)));
        self
    }

    /// Appends a CNOT. Chainable.
    pub fn cnot(&mut self, control: impl Into<QubitId>, target: impl Into<QubitId>) -> &mut Self {
        self.push(Gate::cnot(control, target));
        self
    }

    /// Gate-count statistics (the paper's Table 3 columns).
    pub fn stats(&self) -> GateStats {
        let mut s = GateStats {
            total: self.gates.len(),
            ..GateStats::default()
        };
        for g in &self.gates {
            match g {
                Gate::Rz { angle, .. } => {
                    if angle.is_clifford() {
                        s.clifford_rz += 1;
                    } else {
                        s.rz += 1;
                    }
                }
                Gate::Cnot { .. } => s.cnot += 1,
                Gate::H { .. } => s.h += 1,
                Gate::X { .. } | Gate::Z { .. } => s.pauli += 1,
            }
        }
        s
    }

    /// Circuit depth: the length of the longest dependency chain, counting
    /// every gate (including free ones) as one layer.
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.num_qubits as usize];
        let mut max = 0;
        for g in &self.gates {
            let d = 1 + g
                .qubits()
                .into_iter()
                .map(|q| qubit_depth[q.index()])
                .max()
                .unwrap_or(0);
            for q in g.qubits() {
                qubit_depth[q.index()] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Appends all gates of `other` (same qubit indexing).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses {} qubits but target has {}",
            other.num_qubits,
            self.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl fmt::Display for Circuit {
    /// Formats in the artifact's text format (§B.7): the gate count on the
    /// first line, one gate per line after.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.gates.len())?;
        for g in &self.gates {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, Angle::radians(0.3)).x(2).s(2).t(2);
        let s = c.stats();
        assert_eq!(s.total, 6);
        assert_eq!(s.rz, 2); // radians(0.3) and T
        assert_eq!(s.clifford_rz, 1); // S
        assert_eq!(s.cnot, 1);
        assert_eq!(s.h, 1);
        assert_eq!(s.pauli, 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::cnot(0, 2)).unwrap_err();
        assert_eq!(err.qubit, QubitId(2));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn depth_tracks_chains() {
        let mut c = Circuit::new(3);
        // Parallel H's: depth 1.
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1);
        // CNOT joins chains: depth 2; Rz extends: 3.
        c.cnot(0, 1).rz(1, Angle::T);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.stats(), GateStats::default());
    }

    #[test]
    fn append_merges() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_round_trips_header() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let text = c.to_string();
        assert!(text.starts_with("2\n"));
        assert!(text.contains("h 0"));
        assert!(text.contains("cx 0 1"));
    }
}
