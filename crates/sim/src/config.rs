//! Simulation configuration (mirrors the artifact's config files).

use rescq_core::{ClassLattice, KPolicy, SchedulerKind, SurgeryCosts, TauModel};
use rescq_decoder::{DecoderConfig, DecoderKind, ErrorChannel};
use rescq_lattice::LayoutKind;
use rescq_rus::{PrepCalibration, RusParams};
use std::fmt;

/// Full configuration of one simulation run.
///
/// Build with [`SimConfig::builder`]; defaults follow the paper's headline
/// setup (`d = 7`, `p = 10⁻⁴`, RESCQ with `k = 25`, `c = 100`, uncompressed
/// 2×2 STAR grid).
///
/// # Example
///
/// ```
/// use rescq_core::SchedulerKind;
/// use rescq_sim::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .distance(9)
///     .physical_error_rate(1e-5)
///     .scheduler(SchedulerKind::Greedy)
///     .compression(0.5)
///     .seed(3)
///     .build();
/// assert_eq!(cfg.distance, 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Code distance `d`.
    pub distance: u32,
    /// Physical qubit error rate `p`.
    pub physical_error_rate: f64,
    /// Scheduler driving the run.
    pub scheduler: SchedulerKind,
    /// MST recomputation policy (RESCQ only).
    pub k_policy: KPolicy,
    /// Activity window `c` in cycles (RESCQ only).
    pub activity_window: u32,
    /// Fabric block shape.
    pub layout: LayoutKind,
    /// Explicit block-grid width (defaults to a near-square arrangement).
    pub block_columns: Option<u32>,
    /// Grid compression fraction in `[0, 1]` (§5.3).
    pub compression: f64,
    /// Seed for the compression procedure (independent of the run seed so
    /// all schedulers see the same compressed grid).
    pub compression_seed: u64,
    /// Seed of the run's RUS outcome stream.
    pub seed: u64,
    /// Lattice-surgery cycle costs.
    pub costs: SurgeryCosts,
    /// RUS preparation calibration constants.
    pub calibration: PrepCalibration,
    /// Classical MST latency model.
    pub tau_model: TauModel,
    /// Classical decoding pipeline model. The `ideal` default is invisible:
    /// a run with it is bit-identical to the same build with no decoder
    /// consulted at all. `fixed`/`adaptive` apply backlog-aware
    /// back-pressure to every feed-forward injection outcome.
    pub decoder: DecoderConfig,
    /// Watchdog: abort if the program exceeds this many cycles.
    pub max_cycles: u64,
    /// Scheduling worker threads inside one realtime engine run (`0` =
    /// available parallelism). The fabric's ancilla network is partitioned
    /// into contiguous regions scanned by the workers; proposals commit
    /// through the reservation ledger in canonical order at a deterministic
    /// barrier, so the produced schedule is **bit-identical for any thread
    /// count** — this setting trades wall-clock only. The static baseline
    /// engines are layer-synchronous and always run single-threaded.
    pub engine_threads: usize,
    /// Priority-class lattice for ledger arbitration (`None` = class-blind,
    /// the default — bit-identical to the pre-lattice engine). With a
    /// lattice, the realtime engine classes its tasks (by default T-factory
    /// rotations outrank ready injections, which outrank logical compute,
    /// which outranks speculative claims), regions hosting factory qubits
    /// gain an urgency override, and a higher class may reorder ahead of a
    /// strictly lower one on the ancilla queues whenever the ledger's cycle
    /// check proves the reorder safe. Equal classes keep the seniority
    /// rule.
    pub priority_classes: Option<ClassLattice>,
}

impl SimConfig {
    /// Starts a builder with paper-default values.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// The substrate parameters implied by this configuration.
    pub fn rus_params(&self) -> RusParams {
        RusParams::new(self.distance, self.physical_error_rate)
    }

    /// The engine worker count this configuration resolves to: the
    /// configured value, or available parallelism when `engine_threads` is
    /// `0` (auto).
    pub fn resolved_engine_threads(&self) -> usize {
        if self.engine_threads > 0 {
            return self.engine_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Rounds of syndrome measurement per lattice-surgery cycle.
    pub fn rounds_per_cycle(&self) -> u32 {
        self.distance
    }

    /// The error channel the union-find decoder samples: the run's physical
    /// error rate, with the channel seed derived from (but distinct from)
    /// the run seed so the decoder's error stream never aliases the RUS
    /// outcome stream. Both engines use this, so decoder behaviour is
    /// engine-independent.
    pub fn decoder_channel(&self) -> ErrorChannel {
        ErrorChannel::new(
            self.physical_error_rate,
            self.seed ^ 0x00DE_C0DE_5EED_u64.rotate_left(17),
        )
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::builder().build()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} d={} p={:.0e} compression={:.0}% seed={}",
            self.scheduler,
            self.distance,
            self.physical_error_rate,
            self.compression * 100.0,
            self.seed
        )?;
        if self.decoder.kind != DecoderKind::Ideal {
            write!(f, " decoder={}", self.decoder)?;
        }
        if self.engine_threads != 1 {
            write!(f, " engine_threads={}", self.engine_threads)?;
        }
        if let Some(lattice) = &self.priority_classes {
            write!(f, " priority={lattice}")?;
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            config: SimConfig {
                distance: 7,
                physical_error_rate: 1e-4,
                scheduler: SchedulerKind::Rescq,
                k_policy: KPolicy::Fixed(25),
                activity_window: 100,
                layout: LayoutKind::Star2x2,
                block_columns: None,
                compression: 0.0,
                compression_seed: 0xC0FFEE,
                seed: 1,
                costs: SurgeryCosts::default(),
                calibration: PrepCalibration::default(),
                tau_model: TauModel::default(),
                decoder: DecoderConfig::default(),
                max_cycles: 50_000_000,
                engine_threads: 1,
                priority_classes: None,
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the code distance.
    pub fn distance(mut self, d: u32) -> Self {
        self.config.distance = d;
        self
    }

    /// Sets the physical error rate.
    pub fn physical_error_rate(mut self, p: f64) -> Self {
        self.config.physical_error_rate = p;
        self
    }

    /// Sets the scheduler.
    pub fn scheduler(mut self, s: SchedulerKind) -> Self {
        self.config.scheduler = s;
        self
    }

    /// Sets the MST recomputation policy.
    pub fn k_policy(mut self, k: KPolicy) -> Self {
        self.config.k_policy = k;
        self
    }

    /// Sets the activity window `c`.
    pub fn activity_window(mut self, c: u32) -> Self {
        self.config.activity_window = c;
        self
    }

    /// Sets the fabric layout kind.
    pub fn layout(mut self, l: LayoutKind) -> Self {
        self.config.layout = l;
        self
    }

    /// Sets an explicit block-grid width.
    pub fn block_columns(mut self, cols: u32) -> Self {
        self.config.block_columns = Some(cols);
        self
    }

    /// Sets the grid compression fraction.
    pub fn compression(mut self, f: f64) -> Self {
        self.config.compression = f;
        self
    }

    /// Sets the compression seed.
    pub fn compression_seed(mut self, s: u64) -> Self {
        self.config.compression_seed = s;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Sets the surgery costs.
    pub fn costs(mut self, c: SurgeryCosts) -> Self {
        self.config.costs = c;
        self
    }

    /// Sets the RUS calibration.
    pub fn calibration(mut self, c: PrepCalibration) -> Self {
        self.config.calibration = c;
        self
    }

    /// Sets the τ model.
    pub fn tau_model(mut self, m: TauModel) -> Self {
        self.config.tau_model = m;
        self
    }

    /// Sets the classical decoder model.
    pub fn decoder(mut self, d: DecoderConfig) -> Self {
        self.config.decoder = d;
        self
    }

    /// Sets the watchdog limit in cycles.
    pub fn max_cycles(mut self, c: u64) -> Self {
        self.config.max_cycles = c;
        self
    }

    /// Sets the engine worker-thread count (`0` = available parallelism).
    /// Any value produces bit-identical schedules; see
    /// [`SimConfig::engine_threads`].
    pub fn engine_threads(mut self, t: usize) -> Self {
        self.config.engine_threads = t;
        self
    }

    /// Enables class-aware ledger arbitration with the given priority
    /// lattice (`None` keeps the class-blind default).
    pub fn priority_classes(mut self, lattice: Option<ClassLattice>) -> Self {
        self.config.priority_classes = lattice;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SimConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_headline() {
        let c = SimConfig::default();
        assert_eq!(c.distance, 7);
        assert!((c.physical_error_rate - 1e-4).abs() < 1e-18);
        assert_eq!(c.scheduler, SchedulerKind::Rescq);
        assert_eq!(c.k_policy, KPolicy::Fixed(25));
        assert_eq!(c.activity_window, 100);
        assert_eq!(c.compression, 0.0);
        assert_eq!(c.decoder.kind, DecoderKind::Ideal);
    }

    #[test]
    fn builder_sets_decoder() {
        let c = SimConfig::builder()
            .decoder(DecoderConfig::adaptive(0.5, 8))
            .build();
        assert_eq!(c.decoder.kind, DecoderKind::Adaptive);
        assert_eq!(c.decoder.workers, 8);
        assert!(c.to_string().contains("decoder=adaptive"));
        assert!(!SimConfig::default().to_string().contains("decoder"));
    }

    #[test]
    fn builder_sets_fields() {
        let c = SimConfig::builder()
            .distance(11)
            .scheduler(SchedulerKind::Autobraid)
            .compression(0.75)
            .seed(99)
            .build();
        assert_eq!(c.distance, 11);
        assert_eq!(c.scheduler, SchedulerKind::Autobraid);
        assert_eq!(c.seed, 99);
        assert_eq!(c.rounds_per_cycle(), 11);
    }

    #[test]
    fn engine_threads_default_and_auto() {
        let c = SimConfig::default();
        assert_eq!(c.engine_threads, 1);
        assert_eq!(c.resolved_engine_threads(), 1);
        assert!(!c.to_string().contains("engine_threads"));
        let c = SimConfig::builder().engine_threads(4).build();
        assert_eq!(c.resolved_engine_threads(), 4);
        assert!(c.to_string().contains("engine_threads=4"));
        let auto = SimConfig::builder().engine_threads(0).build();
        assert!(auto.resolved_engine_threads() >= 1);
    }

    #[test]
    fn priority_classes_default_off_and_display() {
        let c = SimConfig::default();
        assert!(c.priority_classes.is_none());
        assert!(!c.to_string().contains("priority"));
        let c = SimConfig::builder()
            .priority_classes(Some(ClassLattice::default()))
            .build();
        assert!(c
            .to_string()
            .contains("priority=factory>injection>compute>speculative"));
    }

    #[test]
    fn rus_params_derived() {
        let c = SimConfig::builder()
            .distance(5)
            .physical_error_rate(1e-3)
            .build();
        let p = c.rus_params();
        assert_eq!(p.distance, 5);
        assert!((p.physical_error_rate - 1e-3).abs() < 1e-18);
    }
}
