//! Formatting and sizing helpers shared by the experiment benches.

use std::fmt::Display;

/// How large an experiment to run.
///
/// `cargo bench` runs at [`BenchScale::Reduced`] by default so the full
/// workspace bench suite terminates in minutes; set `RESCQ_BENCH_FULL=1` to
/// run the paper-sized sweep (all benchmarks, more seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Few seeds, representative benchmark subset.
    Reduced,
    /// Paper-sized sweep.
    Full,
}

impl BenchScale {
    /// Number of seeded runs per configuration.
    pub fn seeds(self) -> u64 {
        match self {
            BenchScale::Reduced => 3,
            BenchScale::Full => 10,
        }
    }
}

/// Reads the scale from the `RESCQ_BENCH_FULL` environment variable.
pub fn bench_scale() -> BenchScale {
    match std::env::var("RESCQ_BENCH_FULL") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => BenchScale::Full,
        _ => BenchScale::Reduced,
    }
}

/// Prints an experiment header box.
pub fn print_header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("    {detail}");
    }
}

/// Prints one aligned row of `label: value` pairs.
pub fn print_row(label: &str, cols: &[(&str, &dyn Display)]) {
    print!("{label:<28}");
    for (name, value) in cols {
        print!("  {name}={value}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_by_default() {
        // Does not read the env var: explicit values only.
        assert_eq!(BenchScale::Reduced.seeds(), 3);
        assert!(BenchScale::Full.seeds() > BenchScale::Reduced.seeds());
    }
}
