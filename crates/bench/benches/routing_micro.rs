//! §5.4.2 micro-benchmark: Algorithm-1 path selection with the per-MST
//! path cache (amortized O(1) per CNOT), plus ancilla-queue operations.

use criterion::{criterion_group, criterion_main, Criterion};
use rescq_circuit::{Angle, QubitId};
use rescq_core::{
    plan_cnot_route, AncillaQueue, PathCache, QueueEntry, Role, SurgeryCosts, TaskId,
};
use rescq_lattice::{AncillaGraph, IncrementalMst, Layout, LayoutKind, Orientation};

fn setup(n: u32) -> (Layout, AncillaGraph, IncrementalMst) {
    let layout = Layout::new(LayoutKind::Star2x2, n).unwrap();
    let graph = AncillaGraph::from_grid(layout.grid());
    let edges: Vec<(u32, u32, u32)> = graph.edges().iter().map(|&(a, b)| (a, b, 0)).collect();
    let mst = IncrementalMst::new(graph.len(), &edges);
    (layout, graph, mst)
}

fn benches(c: &mut Criterion) {
    let (layout, graph, mst) = setup(100);
    let orientations = vec![Orientation::Standard; 100];
    let costs = SurgeryCosts::default();

    c.bench_function("algorithm1_cold_cache", |b| {
        b.iter(|| {
            let mut cache = PathCache::new();
            plan_cnot_route(
                &layout,
                &graph,
                &mst,
                0,
                &mut cache,
                QubitId(3),
                QubitId(87),
                &orientations,
                &costs,
                7,
                |_| 0,
            )
        })
    });

    let mut cache = PathCache::new();
    c.bench_function("algorithm1_warm_cache", |b| {
        b.iter(|| {
            plan_cnot_route(
                &layout,
                &graph,
                &mst,
                0,
                &mut cache,
                QubitId(3),
                QubitId(87),
                &orientations,
                &costs,
                7,
                |_| 0,
            )
        })
    });

    c.bench_function("queue_push_update_remove", |b| {
        b.iter(|| {
            let mut q = AncillaQueue::new();
            for i in 0..16u32 {
                q.push(QueueEntry::new(TaskId(i), Role::PrepZz, Angle::T));
            }
            for i in 0..16u32 {
                q.update_angle(TaskId(i), Angle::S);
            }
            for i in 0..16u32 {
                q.remove_task(TaskId(i));
            }
            q
        })
    });
}

criterion_group! {
    name = routing;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(routing);
