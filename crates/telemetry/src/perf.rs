//! Schema-versioned perf baselines (`BENCH_*.json`): the recorded
//! cycle-loop wall-clock trajectory the ROADMAP's optimisation items
//! measure against.
//!
//! A [`PerfBaseline`] holds one [`PerfEntry`] per benchmark: wall-clock
//! per run, simulated cycles per wall-second (the headline throughput
//! figure), and the per-phase wall-clock breakdown from the engine's
//! phase instrumentation. [`compare`] diffs two baselines and flags
//! regressions against caller-chosen warn/fail thresholds — CI's
//! `perf-baseline` job wires this to a soft gate.
//!
//! Only *wall-clock* lives here; everything schedule-derived stays in
//! the determinism-checked reports. Baselines are environment-bound:
//! compare baselines recorded on the same class of machine.

use crate::chrome::{parse_json, Json};
use crate::Phase;
use std::fmt::Write as _;

/// Version stamp written into every baseline; bump on any field change
/// so `--compare` refuses to diff incompatible documents.
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// Perf measurements of one benchmark under one scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Benchmark name (e.g. `ising_n420`).
    pub name: String,
    /// Scheduler that ran (e.g. `rescq`).
    pub scheduler: String,
    /// Seeds averaged into the figures.
    pub seeds: u32,
    /// Mean simulated makespan in lattice-surgery cycles.
    pub total_cycles: f64,
    /// Mean wall-clock milliseconds per run.
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second (higher is better).
    pub cycles_per_sec: f64,
    /// Mean wall-clock milliseconds per engine phase
    /// (schedule/start/propose/commit), indexed by [`Phase::index`].
    pub phase_ms: [f64; 4],
}

impl PerfEntry {
    /// The `name@scheduler` key entries are matched by in [`compare`].
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.scheduler)
    }
}

/// A recorded perf trajectory point: schema version + per-benchmark
/// entries.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// Schema version, [`PERF_SCHEMA_VERSION`] when written by this
    /// build.
    pub schema_version: u32,
    /// Per-benchmark measurements, in recording order.
    pub entries: Vec<PerfEntry>,
}

impl PerfBaseline {
    /// A baseline with the current schema version and no entries.
    pub fn new() -> Self {
        PerfBaseline {
            schema_version: PERF_SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }

    /// Renders the baseline as a deterministic, human-diffable JSON
    /// document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"seeds\": {}, \"total_cycles\": {:.3}, \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"phase_ms\": {{",
                e.name, e.scheduler, e.seeds, e.total_cycles, e.wall_ms, e.cycles_per_sec
            );
            for (j, p) in Phase::ALL.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{}\": {:.3}",
                    if j > 0 { ", " } else { "" },
                    p.name(),
                    e.phase_ms[j]
                );
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a baseline document written by [`PerfBaseline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on syntax errors, a missing/mismatched schema
    /// version, or missing fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        let schema_version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing `schema_version`")? as u32;
        if schema_version != PERF_SCHEMA_VERSION {
            return Err(format!(
                "baseline schema v{schema_version} but this build reads v{PERF_SCHEMA_VERSION}"
            ));
        }
        let raw = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing `entries` array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let fail = |msg: &str| format!("entries[{i}]: {msg}");
            let field_str = |key: &str| {
                e.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| fail(&format!("missing string `{key}`")))
            };
            let field_num = |key: &str| {
                e.get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail(&format!("missing number `{key}`")))
            };
            let phases = e
                .get("phase_ms")
                .ok_or_else(|| fail("missing `phase_ms`"))?;
            let mut phase_ms = [0.0; 4];
            for (j, p) in Phase::ALL.iter().enumerate() {
                phase_ms[j] = phases
                    .get(p.name())
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail(&format!("missing phase `{}`", p.name())))?;
            }
            entries.push(PerfEntry {
                name: field_str("name")?,
                scheduler: field_str("scheduler")?,
                seeds: field_num("seeds")? as u32,
                total_cycles: field_num("total_cycles")?,
                wall_ms: field_num("wall_ms")?,
                cycles_per_sec: field_num("cycles_per_sec")?,
                phase_ms,
            });
        }
        Ok(PerfBaseline {
            schema_version,
            entries,
        })
    }
}

impl Default for PerfBaseline {
    fn default() -> Self {
        Self::new()
    }
}

/// Severity of one compared entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaLevel {
    /// Within the warn threshold (includes improvements).
    Ok,
    /// Slower than the warn threshold but within the fail threshold.
    Warn,
    /// Slower than the fail threshold.
    Fail,
}

/// The wall-clock delta of one benchmark between two baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDelta {
    /// Benchmark name.
    pub name: String,
    /// Scheduler.
    pub scheduler: String,
    /// Baseline wall-clock ms per run.
    pub base_wall_ms: f64,
    /// New wall-clock ms per run.
    pub new_wall_ms: f64,
    /// Relative change in percent (positive = slower).
    pub pct: f64,
    /// Severity under the thresholds `compare` was called with.
    pub level: DeltaLevel,
}

/// Diffs `new` against `base`, flagging entries slower by more than
/// `warn_pct` / `fail_pct` percent. Entries are matched by
/// `name@scheduler`; entries present in only one baseline are skipped
/// (the caller decides whether that matters). Deltas come back in
/// `new`'s entry order.
pub fn compare(
    base: &PerfBaseline,
    new: &PerfBaseline,
    warn_pct: f64,
    fail_pct: f64,
) -> Vec<PerfDelta> {
    let mut out = Vec::new();
    for e in &new.entries {
        let Some(b) = base.entries.iter().find(|b| b.key() == e.key()) else {
            continue;
        };
        let pct = if b.wall_ms > 0.0 {
            (e.wall_ms - b.wall_ms) / b.wall_ms * 100.0
        } else {
            0.0
        };
        let level = if pct > fail_pct {
            DeltaLevel::Fail
        } else if pct > warn_pct {
            DeltaLevel::Warn
        } else {
            DeltaLevel::Ok
        };
        out.push(PerfDelta {
            name: e.name.clone(),
            scheduler: e.scheduler.clone(),
            base_wall_ms: b.wall_ms,
            new_wall_ms: e.wall_ms,
            pct,
            level,
        });
    }
    out
}

/// Renders compared deltas as a fixed-width text table (also valid
/// GitHub-flavoured markdown when piped into a step summary).
pub fn delta_table(deltas: &[PerfDelta]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| benchmark | scheduler | base ms | new ms | delta | status |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
    for d in deltas {
        let status = match d.level {
            DeltaLevel::Ok => "ok",
            DeltaLevel::Warn => "WARN",
            DeltaLevel::Fail => "FAIL",
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {:+.1}% | {} |",
            d.name, d.scheduler, d.base_wall_ms, d.new_wall_ms, d.pct, status
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, wall_ms: f64) -> PerfEntry {
        PerfEntry {
            name: name.into(),
            scheduler: "rescq".into(),
            seeds: 2,
            total_cycles: 1234.5,
            wall_ms,
            cycles_per_sec: 1234.5 / wall_ms * 1000.0,
            phase_ms: [wall_ms * 0.1, wall_ms * 0.2, wall_ms * 0.3, wall_ms * 0.4],
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut b = PerfBaseline::new();
        b.entries.push(entry("ising_n420", 250.0));
        b.entries.push(entry("factory_n12", 40.5));
        let text = b.to_json();
        let parsed = PerfBaseline::parse(&text).unwrap();
        assert_eq!(parsed.schema_version, PERF_SCHEMA_VERSION);
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].name, "ising_n420");
        assert!((parsed.entries[0].wall_ms - 250.0).abs() < 1e-9);
        assert!((parsed.entries[1].phase_ms[3] - 40.5 * 0.4).abs() < 1e-3);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = "{\"schema_version\": 999, \"entries\": []}";
        let err = PerfBaseline::parse(text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(PerfBaseline::parse("{}").is_err());
        assert!(PerfBaseline::parse("not json").is_err());
    }

    #[test]
    fn compare_classifies_thresholds() {
        let mut base = PerfBaseline::new();
        base.entries.push(entry("a", 100.0));
        base.entries.push(entry("b", 100.0));
        base.entries.push(entry("c", 100.0));
        base.entries.push(entry("only_base", 1.0));
        let mut new = PerfBaseline::new();
        new.entries.push(entry("a", 95.0)); // faster: ok
        new.entries.push(entry("b", 115.0)); // +15%: warn
        new.entries.push(entry("c", 130.0)); // +30%: fail
        new.entries.push(entry("only_new", 1.0)); // unmatched: skipped
        let deltas = compare(&base, &new, 10.0, 25.0);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].level, DeltaLevel::Ok);
        assert_eq!(deltas[1].level, DeltaLevel::Warn);
        assert_eq!(deltas[2].level, DeltaLevel::Fail);
        let table = delta_table(&deltas);
        assert!(
            table.contains("| b | rescq | 100.000 | 115.000 | +15.0% | WARN |"),
            "{table}"
        );
        assert!(table.lines().count() == 5);
    }
}
