//! The runtime the simulation engines consume: model + backlog + statistics
//! behind a two-call interface (`submit`, `retire`).

use crate::models::build_model;
use crate::union_find::ErrorChannel;
use crate::{DecodeBacklog, DecoderConfig, DecoderModel, WindowId};

/// Aggregate decoder statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Windows submitted to the decoder.
    pub windows_submitted: u64,
    /// Windows decoded and retired.
    pub windows_decoded: u64,
    /// Total rounds the scheduler waited on decode results (sum over windows
    /// of `ready_at − submitted`).
    pub stall_rounds: u64,
    /// Largest number of windows simultaneously in flight.
    pub peak_backlog: u64,
    /// Defects (flipped detectors) the decoder observed. Zero for the
    /// latency models — only the union-find decoder samples real syndromes.
    pub defects: u64,
    /// Union-find cluster-growth half-steps performed (the dominant decode
    /// work term).
    pub growth_steps: u64,
    /// DSU merges of distinct clusters during growth.
    pub merges: u64,
    /// Erasure edges peeled into corrections.
    pub peeled_edges: u64,
    /// Windows whose residual (error ⊕ correction) crossed the logical cut.
    pub logical_failures: u64,
}

/// Wraps a [`DecoderModel`] and a [`DecodeBacklog`] behind the interface the
/// engines consume.
///
/// An engine calls [`submit`](DecoderRuntime::submit) when a feed-forward
/// measurement completes; the returned round is when the decoded outcome may
/// be acted on. Once the engine consumes the result it calls
/// [`retire`](DecoderRuntime::retire), which updates the backlog accounting.
#[derive(Debug)]
pub struct DecoderRuntime {
    model: Box<dyn DecoderModel + Send + Sync>,
    backlog: DecodeBacklog,
    stats: DecoderStats,
    /// Syndrome rounds per lattice-surgery cycle (the code distance).
    rounds_per_cycle: u32,
    /// Whether preparation-verification windows are decoded too.
    decode_prep: bool,
}

// The sharded realtime engine hands `&DecoderRuntime` (inside its frozen
// state view) to scheduling workers on other threads; the model box is
// `Send + Sync` precisely so that view is shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DecoderRuntime>();
};

impl DecoderRuntime {
    /// Builds the runtime a configuration describes. `rounds_per_cycle` is
    /// the code distance `d` (one lattice-surgery cycle = `d` rounds).
    /// A union-find decoder built this way samples the default
    /// [`ErrorChannel`]; engines use [`DecoderRuntime::with_channel`] to
    /// feed it the simulation's physical error rate and seed.
    pub fn new(config: &DecoderConfig, rounds_per_cycle: u32) -> Self {
        DecoderRuntime::with_channel(config, rounds_per_cycle, ErrorChannel::default())
    }

    /// Builds the runtime with an explicit error channel for the union-find
    /// decoder (the latency models ignore it).
    pub fn with_channel(
        config: &DecoderConfig,
        rounds_per_cycle: u32,
        channel: ErrorChannel,
    ) -> Self {
        let rounds_per_cycle = rounds_per_cycle.max(1);
        DecoderRuntime {
            model: build_model(config, rounds_per_cycle, channel),
            backlog: DecodeBacklog::new(),
            stats: DecoderStats::default(),
            rounds_per_cycle,
            decode_prep: config.decode_prep,
        }
    }

    /// Whether the engines should route `|mθ⟩` preparation-verification
    /// outcomes through this decoder ([`DecoderConfig::decode_prep`]).
    pub fn decodes_prep(&self) -> bool {
        self.decode_prep
    }

    /// Submits a syndrome window of `rounds` measurement rounds from `tile`
    /// at round `now`. Returns the window id and the round at which its
    /// decode result becomes visible (`>= now`; `== now` for the ideal
    /// decoder).
    pub fn submit(&mut self, tile: u32, rounds: u32, now: u64) -> (WindowId, u64) {
        let ready_at = self.model.decode_ready_at(tile, rounds, now);
        debug_assert!(ready_at >= now, "decoders cannot answer before submission");
        let id = self.backlog.enqueue(tile, rounds, now, ready_at);
        self.stats.windows_submitted += 1;
        self.stats.stall_rounds += ready_at - now;
        self.stats.peak_backlog = self.stats.peak_backlog.max(self.backlog.in_flight() as u64);
        let work = self.model.take_work();
        self.stats.defects += work.defects;
        self.stats.growth_steps += work.growth_steps;
        self.stats.merges += work.merges;
        self.stats.peeled_edges += work.peeled_edges;
        self.stats.logical_failures += work.logical_failures;
        (id, ready_at)
    }

    /// Marks a window's decode result as consumed; returns the latency the
    /// scheduler observed, in whole lattice-surgery cycles (rounded up).
    pub fn retire(&mut self, id: WindowId, now: u64) -> u64 {
        let w = self.backlog.retire(id);
        debug_assert!(now >= w.ready_at, "result consumed before it was ready");
        self.stats.windows_decoded += 1;
        (w.ready_at - w.submitted).div_ceil(self.rounds_per_cycle as u64)
    }

    /// The live backlog (for conservation checks and per-tile queries).
    pub fn backlog(&self) -> &DecodeBacklog {
        &self.backlog
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// The model's short name.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_runtime_is_invisible() {
        let mut rt = DecoderRuntime::new(&DecoderConfig::default(), 7);
        let (id, ready) = rt.submit(3, 14, 100);
        assert_eq!(ready, 100);
        assert_eq!(rt.retire(id, 100), 0);
        assert_eq!(rt.stats().stall_rounds, 0);
        assert!(rt.backlog().is_conserved());
    }

    #[test]
    fn fixed_runtime_tracks_stall_and_latency() {
        let mut rt = DecoderRuntime::new(&DecoderConfig::fixed(1.0), 7);
        let (id, ready) = rt.submit(0, 14, 100);
        assert_eq!(ready, 115); // 100 + base 1 + 14/1.0
        let cycles = rt.retire(id, ready);
        assert_eq!(cycles, 3); // ceil(15 / 7)
        assert_eq!(rt.stats().stall_rounds, 15);
        assert_eq!(rt.stats().windows_submitted, 1);
        assert_eq!(rt.stats().windows_decoded, 1);
    }

    #[test]
    fn union_find_runtime_accumulates_real_work() {
        let channel = ErrorChannel::new(0.05, 42);
        let mut rt = DecoderRuntime::with_channel(&DecoderConfig::union_find(8.0), 5, channel);
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(rt.submit(i % 3, 5, (i as u64) * 100).0);
        }
        let s = rt.stats();
        assert!(s.defects > 0, "p=0.05 windows must produce defects");
        assert!(s.growth_steps > 0);
        assert!(s.peeled_edges > 0);
        assert!(s.stall_rounds > 0, "real decode work must cost rounds");
        for id in ids {
            let ready = rt.backlog().get(id).unwrap().ready_at;
            rt.retire(id, ready);
        }
        assert!(rt.backlog().is_conserved());
        assert_eq!(rt.model_name(), "union_find");
    }

    #[test]
    fn latency_models_leave_work_stats_zero() {
        let mut rt = DecoderRuntime::new(&DecoderConfig::fixed(0.5), 7);
        rt.submit(0, 7, 0);
        let s = rt.stats();
        assert_eq!(s.defects, 0);
        assert_eq!(s.growth_steps, 0);
        assert_eq!(s.logical_failures, 0);
    }

    #[test]
    fn peak_backlog_recorded() {
        let mut rt = DecoderRuntime::new(&DecoderConfig::fixed(0.5), 7);
        let ids: Vec<_> = (0..5).map(|i| rt.submit(0, 7, i).0).collect();
        assert_eq!(rt.stats().peak_backlog, 5);
        for id in ids {
            let ready = rt.backlog().get(id).unwrap().ready_at;
            rt.retire(id, ready);
        }
        assert!(rt.backlog().is_conserved());
        assert_eq!(rt.backlog().in_flight(), 0);
    }
}
