//! The Clifford+T comparator: T-factory timing, Rz synthesis cost, and the
//! fidelity-vs-rotation-count model behind Fig 3 and Appendix A.2.
//!
//! The paper's argument for continuous-angle architectures is quantitative:
//! synthesizing one `Rz(θ)` from T gates needs >100 T's \[5\] at 200–1300
//! cycles total, versus ≈ 8.4 cycles for direct `|mθ⟩` injection — a 20–150×
//! gap (Appendix A.2). Fig 3 translates the same gap into the maximum number
//! of rotations executable at a target program fidelity.

use crate::{PreparationModel, RusParams};

/// Model of a T-state distillation factory (Appendix A.2, based on \[23\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TFactoryModel {
    /// Cycles to prepare one T state (11 with 99.9 % success, \[23\]).
    pub prep_cycles: u32,
    /// Probability the distillation's error detection accepts.
    pub accept_probability: f64,
    /// Cycles to inject a prepared T state into a data qubit.
    pub injection_cycles: u32,
    /// T gates needed to synthesize one `Rz(θ)` at the target precision
    /// (>100 per \[5\]).
    pub t_per_rz: u32,
}

impl Default for TFactoryModel {
    fn default() -> Self {
        TFactoryModel {
            prep_cycles: 11,
            accept_probability: 0.999,
            injection_cycles: 2,
            t_per_rz: 100,
        }
    }
}

impl TFactoryModel {
    /// Best-case cycles for one T gate: the factory had a state waiting
    /// (2 cycles, Appendix A.2).
    pub fn best_case_t_cycles(&self) -> u32 {
        self.injection_cycles
    }

    /// Worst-case cycles for one T gate: preparation starts on demand
    /// (2 + 11 = 13 cycles, Appendix A.2).
    pub fn worst_case_t_cycles(&self) -> u32 {
        self.injection_cycles + self.prep_cycles
    }

    /// Cycle range for one `Rz(θ)` in Clifford+T under the paper's generous
    /// assumptions (dedicated factory, free routing): 200–1300.
    pub fn rz_cycle_range(&self) -> (u64, u64) {
        (
            self.t_per_rz as u64 * self.best_case_t_cycles() as u64,
            self.t_per_rz as u64 * self.worst_case_t_cycles() as u64,
        )
    }
}

/// Expected cycles for one `Rz(θ)` via continuous-angle RUS under a *baseline*
/// schedule: 2 steps × (preparation + CNOT injection) — Appendix A.2's
/// `2 × (2.2 + 2) = 8.4` with the worst-case Fig 16 preparation time.
pub fn rus_rz_expected_cycles(prep: &PreparationModel) -> f64 {
    2.0 * (prep.expected_cycles() + 2.0)
}

/// The Appendix A.2 headline: how many times more cycles Clifford+T spends
/// per rotation than continuous-angle RUS. Returns `(low, high)` — the paper
/// reports 20–150×.
pub fn clifford_t_overhead(prep: &PreparationModel, factory: &TFactoryModel) -> (f64, f64) {
    let rus = rus_rz_expected_cycles(prep);
    let (lo, hi) = factory.rz_cycle_range();
    (lo as f64 / rus, hi as f64 / rus)
}

/// Compilation scheme for the Fig 3 fidelity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilationScheme {
    /// Direct continuous-angle rotations (Clifford+Rz).
    CliffordRz,
    /// Synthesized rotations (Clifford+T).
    CliffordT,
}

/// Logical space-time volume (cycle-equivalents) consumed per rotation gate
/// under each scheme; the per-cycle logical error rate multiplies this.
fn volume_per_rotation(scheme: CompilationScheme, factory: &TFactoryModel) -> f64 {
    match scheme {
        // 2 steps × (prep + injection) at the headline configuration.
        CompilationScheme::CliffordRz => {
            rus_rz_expected_cycles(&PreparationModel::new(RusParams::default()))
        }
        CompilationScheme::CliffordT => {
            // Mid-range of the factory cost.
            let (lo, hi) = factory.rz_cycle_range();
            (lo + hi) as f64 / 2.0
        }
    }
}

/// Maximum number of rotation gates executable while keeping program fidelity
/// ≥ `target_fidelity`, at per-cycle logical error rate `logical_error_rate`
/// (Fig 3's qualitative model): solves `(1−LER)^(V·N) ≥ F`.
///
/// Returns 0 when even a single rotation breaks the target.
pub fn max_rotations(
    scheme: CompilationScheme,
    target_fidelity: f64,
    logical_error_rate: f64,
    factory: &TFactoryModel,
) -> u64 {
    assert!((0.0..1.0).contains(&logical_error_rate));
    assert!((0.0..=1.0).contains(&target_fidelity));
    if target_fidelity == 0.0 {
        return u64::MAX;
    }
    let v = volume_per_rotation(scheme, factory);
    let n = target_fidelity.ln() / (v * (1.0 - logical_error_rate).ln());
    n.max(0.0) as u64
}

/// One row of the Fig 3 series: logical error rate and the rotation budgets
/// of both schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Per-cycle logical error rate.
    pub logical_error_rate: f64,
    /// Max rotations in Clifford+Rz.
    pub rz_rotations: u64,
    /// Max rotations in Clifford+T.
    pub t_rotations: u64,
}

/// Generates the Fig 3 series over a log grid of logical error rates for a
/// given target fidelity.
pub fn fig3_series(target_fidelity: f64, lers: &[f64]) -> Vec<Fig3Row> {
    let factory = TFactoryModel::default();
    lers.iter()
        .map(|&ler| Fig3Row {
            logical_error_rate: ler,
            rz_rotations: max_rotations(
                CompilationScheme::CliffordRz,
                target_fidelity,
                ler,
                &factory,
            ),
            t_rotations: max_rotations(
                CompilationScheme::CliffordT,
                target_fidelity,
                ler,
                &factory,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_cycle_bounds_match_appendix() {
        let f = TFactoryModel::default();
        assert_eq!(f.best_case_t_cycles(), 2);
        assert_eq!(f.worst_case_t_cycles(), 13);
        assert_eq!(f.rz_cycle_range(), (200, 1300));
    }

    #[test]
    fn rus_rz_cost_near_8_4_cycles() {
        // Worst-case Fig 16 corner, matching Appendix A.2's arithmetic.
        let prep = PreparationModel::new(RusParams::new(3, 1e-3));
        let c = rus_rz_expected_cycles(&prep);
        assert!((7.0..10.0).contains(&c), "got {c}");
    }

    #[test]
    fn overhead_matches_20_to_150() {
        let prep = PreparationModel::new(RusParams::new(3, 1e-3));
        let (lo, hi) = clifford_t_overhead(&prep, &TFactoryModel::default());
        assert!(lo > 15.0 && lo < 35.0, "low overhead {lo}");
        assert!(hi > 100.0 && hi < 200.0, "high overhead {hi}");
    }

    #[test]
    fn rz_scheme_executes_more_rotations() {
        let factory = TFactoryModel::default();
        for ler in [1e-6, 1e-8, 1e-10] {
            let rz = max_rotations(CompilationScheme::CliffordRz, 0.9, ler, &factory);
            let t = max_rotations(CompilationScheme::CliffordT, 0.9, ler, &factory);
            assert!(
                rz > 10 * t,
                "Clifford+Rz should beat Clifford+T by ≈2 orders: {rz} vs {t}"
            );
        }
    }

    #[test]
    fn budget_grows_as_ler_falls() {
        let rows = fig3_series(0.9, &[1e-5, 1e-7, 1e-9]);
        assert!(rows[0].rz_rotations < rows[1].rz_rotations);
        assert!(rows[1].rz_rotations < rows[2].rz_rotations);
        assert!(rows[0].t_rotations < rows[2].t_rotations);
    }

    #[test]
    fn stricter_fidelity_allows_fewer_rotations() {
        let factory = TFactoryModel::default();
        let lo = max_rotations(CompilationScheme::CliffordRz, 0.99, 1e-8, &factory);
        let hi = max_rotations(CompilationScheme::CliffordRz, 0.5, 1e-8, &factory);
        assert!(hi > lo);
    }
}
