//! Trace analytics: turns an event stream back into answers.
//!
//! PR 6's tracing records *what happened*; this module answers *what
//! bound the makespan*. [`analyze_events`] consumes the structured
//! [`Event`] stream (live from a `RingRecorder`, or re-parsed from a
//! `--trace-out` Chrome trace via [`parse_trace`]) and produces an
//! [`AnalyzeReport`]:
//!
//! - **Critical path** — per-task timelines are rebuilt from
//!   claim/route/stall/preemption events, then the longest blocking
//!   chain is walked backwards from the latest-finishing task. Each
//!   hop prefers a ledger wait-for predecessor (a [`Event::WaitEdge`]
//!   holder the task actually queued behind), falling back to
//!   completion order when no recorded edge reaches further back.
//!   Every link carries the task's dominant stall cause.
//! - **Utilization** — [`Event::AncillaState`] transitions are
//!   integrated over sim time into per-ancilla (and per-region)
//!   busy/contended occupancy fractions and queue-depth statistics.
//! - **Stall attribution** — per-cause stall-cycle totals and the
//!   dominant cause.
//!
//! All analysis runs on simulation rounds — wall-clock timestamps are
//! ignored, so a timestamp-normalized golden trace analyzes
//! identically to a live one. Partial inputs are *reported*, never
//! papered over: ring-buffer drops and truncated trace files surface
//! as [`AnalyzeReport::warnings`] and machine-readable flags.

use crate::chrome::{parse_json, Json};
use crate::{Event, Phase, StallCause};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// A trace document decoded back into structured events.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// The recovered events, in recording order.
    pub events: Vec<Event>,
    /// Ring-buffer drops recorded in the trace's `otherData`.
    pub dropped: u64,
    /// The document was cut off; `events` is the recoverable prefix.
    pub truncated: bool,
}

fn as_bool(j: &Json) -> Option<bool> {
    match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Decodes one `traceEvents` element back into an [`Event`].
/// Metadata records and unknown names decode to `None`.
fn event_from_json(ev: &Json) -> Option<Event> {
    let name = ev.get("name").and_then(Json::as_str)?;
    let ph = ev.get("ph").and_then(Json::as_str)?;
    if ph == "M" {
        return None;
    }
    let args = ev.get("args")?;
    let num = |key: &str| args.get(key).and_then(Json::as_num).map(|v| v as u64);
    let num32 = |key: &str| args.get(key).and_then(Json::as_num).map(|v| v as u32);
    let flag = |key: &str| args.get(key).and_then(as_bool);
    if let Some(phase) = Phase::ALL.iter().find(|p| p.name() == name) {
        let dur_us = ev.get("dur").and_then(Json::as_num)?;
        return Some(Event::PhaseSpan {
            phase: *phase,
            round: num("round")?,
            dur_ns: (dur_us * 1000.0).round() as u64,
        });
    }
    Some(match name {
        "claim" => Event::Claim {
            round: num("round")?,
            task: num("task")?,
            ancilla: num32("ancilla")?,
            cross_shard: flag("cross_shard")?,
        },
        "preemption" => Event::Preemption {
            round: num("round")?,
            task: num("task")?,
            ancilla: num32("ancilla")?,
            class_won: flag("class_won")?,
        },
        "preemption_rejected" => Event::PreemptionRejected {
            round: num("round")?,
            task: num("task")?,
            ancilla: num32("ancilla")?,
        },
        "window_enqueued" => Event::WindowEnqueued {
            round: num("round")?,
            window: num("window")?,
            ready_at: num("ready_at")?,
        },
        "window_retired" => Event::WindowRetired {
            round: num("round")?,
            window: num("window")?,
            stalled_rounds: num("stalled_rounds")?,
        },
        "route_planned" => Event::RoutePlanned {
            round: num("round")?,
            task: num("task")?,
            hops: num32("hops")?,
            replanned: flag("replanned")?,
        },
        "stall" => {
            let cause_name = args.get("cause").and_then(Json::as_str)?;
            let cause = *StallCause::ALL.iter().find(|c| c.name() == cause_name)?;
            Event::Stall {
                round: num("round")?,
                task: num("task")?,
                cause,
            }
        }
        "wait_edge" => Event::WaitEdge {
            round: num("round")?,
            waiter: num("waiter")?,
            holder: num("holder")?,
            ancilla: num32("ancilla")?,
        },
        "ancilla_state" => Event::AncillaState {
            round: num("round")?,
            ancilla: num32("ancilla")?,
            region: num32("region")?,
            depth: num32("depth")?,
            busy: flag("busy")?,
        },
        "job_done" => Event::JobDone {
            index: num("index")?,
            total: num("total")?,
            wall_ns: num("wall_ns")?,
            resumed: flag("resumed")?,
        },
        _ => return None,
    })
}

/// Parses a Chrome trace document (as written by
/// [`crate::RingRecorder::to_chrome_trace`]) back into events.
///
/// A well-formed document parses exactly. A *truncated* document
/// (interrupted run, partial upload) is recovered line by line — the
/// renderer emits one event per line — returning every decodable
/// prefix event with [`ParsedTrace::truncated`] set so downstream
/// reports can say so instead of silently presenting partial data.
///
/// # Errors
///
/// Returns a message when the text is not a trace at all (no
/// `traceEvents`, nothing recoverable).
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    if let Ok(doc) = parse_json(text) {
        let events_json = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing `traceEvents` array")?;
        let events = events_json.iter().filter_map(event_from_json).collect();
        let dropped = doc
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        return Ok(ParsedTrace {
            events,
            dropped,
            truncated: false,
        });
    }
    // Whole-document parse failed: recover the one-event-per-line
    // prefix. The first line is the `{"traceEvents":[` header; every
    // following line is one JSON object with the separating comma at
    // the end of the *previous* line.
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if !header.starts_with("{\"traceEvents\":[") {
        return Err("not a trace document (no `traceEvents` header)".into());
    }
    let mut events = Vec::new();
    let mut dropped = 0;
    for line in lines {
        let obj = line.trim().trim_end_matches(',');
        if obj.starts_with('{') {
            match parse_json(obj) {
                Ok(v) => {
                    if let Some(ev) = event_from_json(&v) {
                        events.push(ev);
                    }
                }
                // The cut-off line: stop, everything before it stands.
                Err(_) => break,
            }
        } else if let Some(rest) = obj.find("\"dropped_events\":").map(|i| &obj[i + 17..]) {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            dropped = digits.parse().unwrap_or(0);
        }
    }
    Ok(ParsedTrace {
        events,
        dropped,
        truncated: true,
    })
}

/// One hop of the critical path: a task's active span plus why it
/// was not making progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLink {
    /// The task (gate index).
    pub task: u64,
    /// First round the task was observed active.
    pub from_round: u64,
    /// Last round the task was observed active.
    pub to_round: u64,
    /// The task's dominant stall cause (`None` when it never stalled).
    pub cause: Option<StallCause>,
    /// Total stall cycles attributed to the task (all causes).
    pub stall_rounds: u64,
    /// The hop to the previous link followed a recorded ledger
    /// wait-for edge (`false`: completion-order fallback).
    pub wait_for: bool,
}

impl PathLink {
    /// The link's span length in rounds.
    pub fn span(&self) -> u64 {
        self.to_round.saturating_sub(self.from_round)
    }
}

/// Occupancy summary of one ancilla over the traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AncillaUtil {
    /// Ancilla (dense index).
    pub ancilla: u32,
    /// Its region in the shard partition.
    pub region: u32,
    /// Fraction of rounds the ancilla was occupied or held.
    pub busy_fraction: f64,
    /// Fraction of rounds at least two reservations were queued
    /// (someone was waiting behind the holder).
    pub contended_fraction: f64,
    /// Peak reservation-queue depth.
    pub peak_depth: u32,
}

/// The structured bottleneck report produced by [`analyze_events`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalyzeReport {
    /// Makespan: the largest round stamped on any event.
    pub total_rounds: u64,
    /// Number of events analyzed.
    pub events: usize,
    /// Number of distinct tasks observed.
    pub tasks: usize,
    /// The longest blocking chain, earliest link first.
    pub critical_path: Vec<PathLink>,
    /// Rounds covered by the path (overlap-free union of link spans).
    pub covered_rounds: u64,
    /// Stall cycles per cause, indexed by [`StallCause::index`].
    pub stall_rounds: [u64; 4],
    /// Per-ancilla occupancy, ascending by ancilla index (only
    /// ancillas that emitted at least one state transition appear).
    pub utilization: Vec<AncillaUtil>,
    /// Per-region busy fraction (region, fraction), ascending.
    pub region_busy: Vec<(u32, f64)>,
    /// Total queued reservations over time: `(round, total_depth)`
    /// at every change.
    pub queue_depth: Vec<(u64, u64)>,
    /// Events evicted from the ring before the trace was written.
    pub dropped: u64,
    /// The trace document was truncated.
    pub truncated: bool,
    /// Human-readable caveats (drops, truncation).
    pub warnings: Vec<String>,
}

impl AnalyzeReport {
    /// The stall cause with the most attributed cycles, if any task
    /// ever stalled.
    pub fn dominant_stall_cause(&self) -> Option<StallCause> {
        let (idx, &max) = self
            .stall_rounds
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))?;
        (max > 0).then(|| StallCause::ALL[idx])
    }

    /// Fraction of the makespan covered by the critical path.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            0.0
        } else {
            self.covered_rounds as f64 / self.total_rounds as f64
        }
    }

    /// The `k` busiest ancillas, descending by busy fraction (ties
    /// broken by ascending index).
    pub fn hot_ancillas(&self, k: usize) -> Vec<AncillaUtil> {
        let mut sorted = self.utilization.clone();
        sorted.sort_by(|a, b| {
            b.busy_fraction
                .partial_cmp(&a.busy_fraction)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.ancilla.cmp(&b.ancilla))
        });
        sorted.truncate(k);
        sorted
    }

    /// Peak total queue depth and the round it occurred.
    pub fn peak_queue_depth(&self) -> (u64, u64) {
        self.queue_depth.iter().fold(
            (0, 0),
            |best, &(round, depth)| {
                if depth > best.1 {
                    (round, depth)
                } else {
                    best
                }
            },
        )
    }

    /// Renders the human-readable bottleneck report, listing at most
    /// `top_k` hot ancillas.
    pub fn render_text(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== rescq analyze ==");
        let _ = writeln!(
            out,
            "events: {}   tasks: {}   makespan: {} rounds",
            self.events, self.tasks, self.total_rounds
        );
        for w in &self.warnings {
            let _ = writeln!(out, "WARNING: {w}");
        }

        let _ = writeln!(out, "\n-- stall attribution --");
        let total_stalls: u64 = self.stall_rounds.iter().sum();
        if total_stalls == 0 {
            let _ = writeln!(out, "no stalls recorded");
        } else {
            let dominant = self.dominant_stall_cause();
            let mut order: Vec<StallCause> = StallCause::ALL.to_vec();
            order.sort_by_key(|c| std::cmp::Reverse(self.stall_rounds[c.index()]));
            for cause in order {
                let n = self.stall_rounds[cause.index()];
                if n == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<20} {:>8} cycles  {:>5.1}%{}",
                    cause.name(),
                    n,
                    n as f64 / total_stalls as f64 * 100.0,
                    if dominant == Some(cause) {
                        "  <- dominant"
                    } else {
                        ""
                    }
                );
            }
        }

        let _ = writeln!(
            out,
            "\n-- critical path ({} links, covering {}/{} rounds = {:.1}%) --",
            self.critical_path.len(),
            self.covered_rounds,
            self.total_rounds,
            self.coverage_fraction() * 100.0
        );
        for link in &self.critical_path {
            let _ = writeln!(
                out,
                "  task {:<6} rounds {:>8}..{:<8} {:<20} [{}]",
                link.task,
                link.from_round,
                link.to_round,
                link.cause.map(StallCause::name).unwrap_or("no_stall"),
                if link.wait_for {
                    "wait-for"
                } else {
                    "ordering"
                }
            );
        }

        let hot = self.hot_ancillas(top_k);
        let _ = writeln!(
            out,
            "\n-- hot ancillas (top {} of {}) --",
            hot.len(),
            self.utilization.len()
        );
        for u in &hot {
            let _ = writeln!(
                out,
                "  a{:<5} region {:<3} busy {:>5.1}%  contended {:>5.1}%  peak depth {}",
                u.ancilla,
                u.region,
                u.busy_fraction * 100.0,
                u.contended_fraction * 100.0,
                u.peak_depth
            );
        }
        if !self.region_busy.is_empty() {
            let _ = writeln!(out, "\n-- region utilization --");
            for &(region, frac) in &self.region_busy {
                let _ = writeln!(out, "  region {:<3} busy {:>5.1}%", region, frac * 100.0);
            }
        }

        let _ = writeln!(
            out,
            "\n-- utilization histogram (ancillas per busy decile) --"
        );
        let mut deciles = [0usize; 10];
        for u in &self.utilization {
            let idx = ((u.busy_fraction * 10.0) as usize).min(9);
            deciles[idx] += 1;
        }
        for (i, &n) in deciles.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>3}-{:>3}%  {}{}",
                i * 10,
                (i + 1) * 10,
                "#".repeat(n.min(60)),
                if n > 0 {
                    format!(" {n}")
                } else {
                    String::new()
                }
            );
        }

        let (peak_round, peak_depth) = self.peak_queue_depth();
        let _ = writeln!(
            out,
            "\npeak total queue depth: {peak_depth} (round {peak_round})"
        );
        out
    }

    /// Renders the machine-readable report, listing at most `top_k`
    /// hot ancillas.
    pub fn to_json(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"total_rounds\": {},", self.total_rounds);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"tasks\": {},", self.tasks);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(out, "  \"truncated\": {},", self.truncated);
        let _ = write!(out, "  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            let comma = if i + 1 < self.warnings.len() {
                ", "
            } else {
                ""
            };
            let _ = write!(out, "\"{}\"{comma}", w.replace('"', "'"));
        }
        let _ = writeln!(out, "],");
        let _ = writeln!(
            out,
            "  \"dominant_stall_cause\": {},",
            match self.dominant_stall_cause() {
                Some(c) => format!("\"{}\"", c.name()),
                None => "null".into(),
            }
        );
        let _ = writeln!(out, "  \"stall_rounds\": {{");
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            let comma = if i + 1 < StallCause::ALL.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{}\": {}{comma}",
                cause.name(),
                self.stall_rounds[i]
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"covered_rounds\": {},", self.covered_rounds);
        let _ = writeln!(
            out,
            "  \"coverage_fraction\": {:.6},",
            self.coverage_fraction()
        );
        let _ = writeln!(out, "  \"critical_path\": [");
        for (i, link) in self.critical_path.iter().enumerate() {
            let comma = if i + 1 < self.critical_path.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"task\": {}, \"from_round\": {}, \"to_round\": {}, \"cause\": {}, \"stall_rounds\": {}, \"wait_for\": {}}}{comma}",
                link.task,
                link.from_round,
                link.to_round,
                match link.cause {
                    Some(c) => format!("\"{}\"", c.name()),
                    None => "null".into(),
                },
                link.stall_rounds,
                link.wait_for
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"hot_ancillas\": [");
        let hot = self.hot_ancillas(top_k);
        for (i, u) in hot.iter().enumerate() {
            let comma = if i + 1 < hot.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"ancilla\": {}, \"region\": {}, \"busy_fraction\": {:.6}, \"contended_fraction\": {:.6}, \"peak_depth\": {}}}{comma}",
                u.ancilla, u.region, u.busy_fraction, u.contended_fraction, u.peak_depth
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"region_busy\": [");
        for (i, &(region, frac)) in self.region_busy.iter().enumerate() {
            let comma = if i + 1 < self.region_busy.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"region\": {region}, \"busy_fraction\": {frac:.6}}}{comma}"
            );
        }
        let _ = writeln!(out, "  ],");
        let (peak_round, peak_depth) = self.peak_queue_depth();
        let _ = writeln!(out, "  \"peak_queue_depth\": {peak_depth},");
        let _ = writeln!(out, "  \"peak_queue_depth_round\": {peak_round}");
        out.push_str("}\n");
        out
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct TaskInfo {
    first_round: u64,
    last_round: u64,
    stalls: [u64; 4],
}

#[derive(Debug, Clone, Copy)]
struct AncillaAccum {
    region: u32,
    last_round: u64,
    last_busy: bool,
    last_depth: u32,
    busy_rounds: u64,
    contended_rounds: u64,
    peak_depth: u32,
}

/// Analyzes an event stream into a bottleneck report.
///
/// `dropped` and `truncated` describe the stream's provenance (ring
/// evictions, cut-off trace file); nonzero/true values become
/// warnings on the report rather than silently skewed numbers.
pub fn analyze_events(events: &[Event], dropped: u64, truncated: bool) -> AnalyzeReport {
    let mut tasks: BTreeMap<u64, TaskInfo> = BTreeMap::new();
    let mut wait_for: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut ancillas: BTreeMap<u32, AncillaAccum> = BTreeMap::new();
    let mut stall_rounds = [0u64; 4];
    let mut total_rounds = 0u64;
    let mut queue_depth: Vec<(u64, u64)> = Vec::new();
    let mut total_depth = 0u64;

    let touch = |map: &mut BTreeMap<u64, TaskInfo>, task: u64, round: u64| {
        let info = map.entry(task).or_insert(TaskInfo {
            first_round: round,
            last_round: round,
            stalls: [0; 4],
        });
        info.first_round = info.first_round.min(round);
        info.last_round = info.last_round.max(round);
    };

    for ev in events {
        let round = match *ev {
            Event::PhaseSpan { round, .. } => round,
            Event::Claim { round, task, .. } => {
                touch(&mut tasks, task, round);
                round
            }
            Event::Preemption { round, task, .. } => {
                touch(&mut tasks, task, round);
                round
            }
            Event::PreemptionRejected { round, task, .. } => {
                touch(&mut tasks, task, round);
                round
            }
            Event::WindowEnqueued { round, .. } => round,
            Event::WindowRetired { round, .. } => round,
            Event::RoutePlanned { round, task, .. } => {
                touch(&mut tasks, task, round);
                round
            }
            Event::Stall { round, task, cause } => {
                touch(&mut tasks, task, round);
                tasks.get_mut(&task).expect("touched").stalls[cause.index()] += 1;
                stall_rounds[cause.index()] += 1;
                round
            }
            Event::WaitEdge {
                round,
                waiter,
                holder,
                ..
            } => {
                touch(&mut tasks, waiter, round);
                touch(&mut tasks, holder, round);
                let holders = wait_for.entry(waiter).or_default();
                if !holders.contains(&holder) {
                    holders.push(holder);
                }
                round
            }
            Event::AncillaState {
                round,
                ancilla,
                region,
                depth,
                busy,
            } => {
                let acc = ancillas.entry(ancilla).or_insert(AncillaAccum {
                    region,
                    last_round: round,
                    last_busy: false,
                    last_depth: 0,
                    busy_rounds: 0,
                    contended_rounds: 0,
                    peak_depth: 0,
                });
                let delta = round.saturating_sub(acc.last_round);
                if acc.last_busy {
                    acc.busy_rounds += delta;
                }
                if acc.last_depth >= 2 {
                    acc.contended_rounds += delta;
                }
                total_depth = total_depth + depth as u64 - acc.last_depth as u64;
                acc.last_round = round;
                acc.last_busy = busy;
                acc.last_depth = depth;
                acc.peak_depth = acc.peak_depth.max(depth);
                match queue_depth.last_mut() {
                    Some(last) if last.0 == round => last.1 = total_depth,
                    _ => queue_depth.push((round, total_depth)),
                }
                round
            }
            Event::JobDone { .. } => 0,
        };
        total_rounds = total_rounds.max(round);
    }

    // Close every ancilla's open interval at the makespan.
    let utilization: Vec<AncillaUtil> = ancillas
        .iter()
        .map(|(&ancilla, acc)| {
            let tail = total_rounds.saturating_sub(acc.last_round);
            let busy = acc.busy_rounds + if acc.last_busy { tail } else { 0 };
            let contended = acc.contended_rounds + if acc.last_depth >= 2 { tail } else { 0 };
            let denom = total_rounds.max(1) as f64;
            AncillaUtil {
                ancilla,
                region: acc.region,
                busy_fraction: (busy as f64 / denom).clamp(0.0, 1.0),
                contended_fraction: (contended as f64 / denom).clamp(0.0, 1.0),
                peak_depth: acc.peak_depth,
            }
        })
        .collect();

    let mut region_groups: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
    for u in &utilization {
        let slot = region_groups.entry(u.region).or_insert((0.0, 0));
        slot.0 += u.busy_fraction;
        slot.1 += 1;
    }
    let region_busy = region_groups
        .into_iter()
        .map(|(region, (sum, n))| (region, sum / n as f64))
        .collect();

    // Critical path: walk backwards from the latest-finishing task.
    let mut critical_path: Vec<PathLink> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut cursor = tasks
        .iter()
        .max_by_key(|(&id, info)| (info.last_round, std::cmp::Reverse(id)))
        .map(|(&id, _)| id);
    while let Some(task) = cursor {
        if !visited.insert(task) || critical_path.len() > tasks.len() {
            break;
        }
        let info = tasks[&task];
        let (cause_idx, &cause_max) = info
            .stalls
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .expect("four causes");
        critical_path.push(PathLink {
            task,
            from_round: info.first_round,
            to_round: info.last_round,
            cause: (cause_max > 0).then(|| StallCause::ALL[cause_idx]),
            stall_rounds: info.stalls.iter().sum(),
            wait_for: false,
        });
        let link_idx = critical_path.len() - 1;
        // Prefer a recorded wait-for predecessor that finished before
        // this task did; otherwise fall back to completion order (the
        // latest task ending at or before this one's start).
        let pred = wait_for
            .get(&task)
            .into_iter()
            .flatten()
            .filter(|h| !visited.contains(h))
            .filter_map(|&h| tasks.get(&h).map(|i| (h, i.last_round)))
            .filter(|&(_, last)| last < info.last_round)
            .max_by_key(|&(h, last)| (last, std::cmp::Reverse(h)));
        if let Some((h, _)) = pred {
            cursor = Some(h);
            critical_path[link_idx].wait_for = true;
        } else {
            cursor = tasks
                .iter()
                .filter(|(id, _)| !visited.contains(id))
                .filter(|(_, i)| i.last_round <= info.first_round)
                .max_by_key(|(&id, i)| (i.last_round, std::cmp::Reverse(id)))
                .map(|(&id, _)| id);
        }
    }

    // Overlap-free coverage, walking latest-to-earliest.
    let mut covered_rounds = 0u64;
    let mut upper = total_rounds;
    for link in &critical_path {
        let hi = link.to_round.min(upper);
        if hi > link.from_round {
            covered_rounds += hi - link.from_round;
        }
        upper = upper.min(link.from_round);
    }
    critical_path.reverse(); // earliest link first for display

    let mut warnings = Vec::new();
    if dropped > 0 {
        warnings.push(format!(
            "ring buffer dropped {dropped} oldest events; the report covers a suffix of the run"
        ));
    }
    if truncated {
        warnings
            .push("trace document is truncated; the report covers a prefix of the run".to_owned());
    }

    AnalyzeReport {
        total_rounds,
        events: events.len(),
        tasks: tasks.len(),
        critical_path,
        covered_rounds,
        stall_rounds,
        utilization,
        region_busy,
        queue_depth,
        dropped,
        truncated,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::render;
    use crate::TimedEvent;

    /// A three-task chain: t2 waits on t1 (recorded edge), t1 starts
    /// after t0 ends (completion order), with stalls attributed.
    fn chain_events() -> Vec<Event> {
        vec![
            Event::Claim {
                round: 0,
                task: 0,
                ancilla: 0,
                cross_shard: false,
            },
            Event::RoutePlanned {
                round: 0,
                task: 0,
                hops: 3,
                replanned: false,
            },
            Event::Claim {
                round: 100,
                task: 0,
                ancilla: 0,
                cross_shard: false,
            },
            Event::Claim {
                round: 100,
                task: 1,
                ancilla: 1,
                cross_shard: false,
            },
            Event::Stall {
                round: 150,
                task: 1,
                cause: StallCause::DecoderBacklog,
            },
            Event::Stall {
                round: 160,
                task: 1,
                cause: StallCause::DecoderBacklog,
            },
            Event::Claim {
                round: 300,
                task: 1,
                ancilla: 1,
                cross_shard: false,
            },
            Event::WaitEdge {
                round: 310,
                waiter: 2,
                holder: 1,
                ancilla: 1,
            },
            Event::Stall {
                round: 350,
                task: 2,
                cause: StallCause::AncillaContention,
            },
            Event::Claim {
                round: 500,
                task: 2,
                ancilla: 1,
                cross_shard: false,
            },
        ]
    }

    #[test]
    fn critical_path_follows_wait_edges_then_ordering() {
        let report = analyze_events(&chain_events(), 0, false);
        assert_eq!(report.total_rounds, 500);
        assert_eq!(report.tasks, 3);
        let path: Vec<u64> = report.critical_path.iter().map(|l| l.task).collect();
        assert_eq!(path, vec![0, 1, 2], "{:?}", report.critical_path);
        // t2 <- t1 hop came from the recorded wait-for edge.
        assert!(report.critical_path[2].wait_for);
        // t1 <- t0 hop is the completion-order fallback.
        assert!(!report.critical_path[1].wait_for);
        assert_eq!(
            report.critical_path[1].cause,
            Some(StallCause::DecoderBacklog)
        );
        assert_eq!(
            report.dominant_stall_cause(),
            Some(StallCause::DecoderBacklog)
        );
        // Coverage: [0,100] + [100,310] (the wait edge at 310 keeps
        // the holder alive) + [310,500] = all 500 rounds.
        assert_eq!(report.covered_rounds, 500);
        assert!(report.coverage_fraction() > 0.9);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn utilization_integrates_state_transitions() {
        let events = vec![
            Event::AncillaState {
                round: 0,
                ancilla: 3,
                region: 1,
                depth: 1,
                busy: true,
            },
            Event::AncillaState {
                round: 60,
                ancilla: 3,
                region: 1,
                depth: 3,
                busy: true,
            },
            Event::AncillaState {
                round: 80,
                ancilla: 3,
                region: 1,
                depth: 0,
                busy: false,
            },
            // Makespan extends to round 100 via another event.
            Event::PhaseSpan {
                phase: Phase::Commit,
                round: 100,
                dur_ns: 10,
            },
        ];
        let report = analyze_events(&events, 0, false);
        assert_eq!(report.total_rounds, 100);
        assert_eq!(report.utilization.len(), 1);
        let u = report.utilization[0];
        assert_eq!(u.ancilla, 3);
        assert_eq!(u.region, 1);
        // Busy rounds 0..80 of 100.
        assert!((u.busy_fraction - 0.8).abs() < 1e-9, "{u:?}");
        // Depth >= 2 only in rounds 60..80.
        assert!((u.contended_fraction - 0.2).abs() < 1e-9, "{u:?}");
        assert_eq!(u.peak_depth, 3);
        assert_eq!(report.peak_queue_depth(), (60, 3));
        assert_eq!(report.region_busy, vec![(1, u.busy_fraction)]);
    }

    #[test]
    fn trace_round_trips_and_truncation_is_detected() {
        let timed: Vec<TimedEvent> = chain_events()
            .iter()
            .enumerate()
            .map(|(i, &event)| TimedEvent {
                at_ns: i as u64 * 1000,
                event,
            })
            .collect();
        let doc = render(&timed, 7);
        let parsed = parse_trace(&doc).unwrap();
        assert_eq!(parsed.events, chain_events());
        assert_eq!(parsed.dropped, 7);
        assert!(!parsed.truncated);

        // Cut the document mid-stream: recovery keeps the prefix and
        // flags truncation, and the report carries warnings.
        let cut = &doc[..doc.len() * 2 / 3];
        let partial = parse_trace(cut).unwrap();
        assert!(partial.truncated);
        assert!(!partial.events.is_empty());
        assert!(partial.events.len() < chain_events().len());
        let report = analyze_events(&partial.events, 5, partial.truncated);
        assert_eq!(report.warnings.len(), 2);
        assert!(report.to_json(4).contains("\"truncated\": true"));
        assert!(report.render_text(4).contains("WARNING"));

        assert!(parse_trace("not a trace").is_err());
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = analyze_events(&chain_events(), 0, false);
        let text = report.render_text(8);
        assert!(text.contains("== rescq analyze =="));
        assert!(text.contains("decoder_backlog"));
        assert!(text.contains("<- dominant"));
        assert!(text.contains("critical path (3 links"));
        let json = report.to_json(8);
        assert!(json.contains("\"dominant_stall_cause\": \"decoder_backlog\""));
        assert!(json.contains("\"critical_path\": ["));
        // The JSON is itself parseable by the mini parser.
        assert!(parse_json(&json).is_ok());
    }

    #[test]
    fn empty_stream_produces_an_empty_report() {
        let report = analyze_events(&[], 0, false);
        assert_eq!(report.total_rounds, 0);
        assert!(report.critical_path.is_empty());
        assert_eq!(report.coverage_fraction(), 0.0);
        assert!(report.dominant_stall_cause().is_none());
        assert!(parse_json(&report.to_json(4)).is_ok());
    }
}
