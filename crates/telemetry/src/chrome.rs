//! Chrome trace-event JSON export (and a matching validator).
//!
//! [`render`] emits the [trace-event format] consumed by
//! `chrome://tracing` and Perfetto: a top-level object with a
//! `traceEvents` array of complete spans (`"ph": "X"`) for engine
//! phases and instant events (`"ph": "i"`) for everything else.
//! Timestamps are microseconds with nanosecond precision. Events are
//! grouped onto named threads (engine phases, ledger, decoder, tasks,
//! harness) so Perfetto renders one track per subsystem.
//!
//! The module also carries a [mini JSON parser](parse_json) (the crate
//! is dependency-free) used by [`validate_trace`] and the perf-baseline
//! reader, plus [`normalize_timestamps`] for golden-pinning traces in
//! tests.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, TimedEvent};
use std::fmt::Write as _;

/// Thread ids used to group events into Perfetto tracks.
const TID_PHASES: u32 = 0;
const TID_LEDGER: u32 = 1;
const TID_DECODER: u32 = 2;
const TID_TASKS: u32 = 3;
const TID_HARNESS: u32 = 4;
const TID_ANCILLA: u32 = 5;

fn push_ts(out: &mut String, key: &str, ns: u64) {
    // Microseconds with fixed 3-decimal nanosecond precision: the
    // format is deterministic (no float round-trip), and
    // `normalize_timestamps` can strip it textually.
    let _ = write!(out, "\"{key}\":{}.{:03}", ns / 1000, ns % 1000);
}

fn push_event(out: &mut String, te: &TimedEvent) {
    out.push('{');
    match te.event {
        Event::PhaseSpan {
            phase,
            round,
            dur_ns,
        } => {
            let _ = write!(out, "\"name\":\"{}\",\"ph\":\"X\",", phase.name());
            // The span is recorded when the phase ends; its start is
            // the recording instant minus the measured duration.
            push_ts(out, "ts", te.at_ns.saturating_sub(dur_ns));
            out.push(',');
            push_ts(out, "dur", dur_ns);
            let _ = write!(
                out,
                ",\"pid\":0,\"tid\":{TID_PHASES},\"args\":{{\"round\":{round}}}"
            );
        }
        Event::Claim {
            round,
            task,
            ancilla,
            cross_shard,
        } => {
            instant(
                out,
                "claim",
                TID_LEDGER,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"task\":{task},\"ancilla\":{ancilla},\"cross_shard\":{cross_shard}"
                ),
            );
        }
        Event::Preemption {
            round,
            task,
            ancilla,
            class_won,
        } => {
            instant(
                out,
                "preemption",
                TID_LEDGER,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"task\":{task},\"ancilla\":{ancilla},\"class_won\":{class_won}"
                ),
            );
        }
        Event::PreemptionRejected {
            round,
            task,
            ancilla,
        } => {
            instant(
                out,
                "preemption_rejected",
                TID_LEDGER,
                te.at_ns,
                &format!("\"round\":{round},\"task\":{task},\"ancilla\":{ancilla}"),
            );
        }
        Event::WindowEnqueued {
            round,
            window,
            ready_at,
        } => {
            instant(
                out,
                "window_enqueued",
                TID_DECODER,
                te.at_ns,
                &format!("\"round\":{round},\"window\":{window},\"ready_at\":{ready_at}"),
            );
        }
        Event::WindowRetired {
            round,
            window,
            stalled_rounds,
        } => {
            instant(
                out,
                "window_retired",
                TID_DECODER,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"window\":{window},\"stalled_rounds\":{stalled_rounds}"
                ),
            );
        }
        Event::RoutePlanned {
            round,
            task,
            hops,
            replanned,
        } => {
            instant(
                out,
                "route_planned",
                TID_TASKS,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"task\":{task},\"hops\":{hops},\"replanned\":{replanned}"
                ),
            );
        }
        Event::Stall { round, task, cause } => {
            instant(
                out,
                "stall",
                TID_TASKS,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"task\":{task},\"cause\":\"{}\"",
                    cause.name()
                ),
            );
        }
        Event::WaitEdge {
            round,
            waiter,
            holder,
            ancilla,
        } => {
            instant(
                out,
                "wait_edge",
                TID_LEDGER,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"waiter\":{waiter},\"holder\":{holder},\"ancilla\":{ancilla}"
                ),
            );
        }
        Event::AncillaState {
            round,
            ancilla,
            region,
            depth,
            busy,
        } => {
            instant(
                out,
                "ancilla_state",
                TID_ANCILLA,
                te.at_ns,
                &format!(
                    "\"round\":{round},\"ancilla\":{ancilla},\"region\":{region},\"depth\":{depth},\"busy\":{busy}"
                ),
            );
        }
        Event::JobDone {
            index,
            total,
            wall_ns,
            resumed,
        } => {
            instant(
                out,
                "job_done",
                TID_HARNESS,
                te.at_ns,
                &format!(
                    "\"index\":{index},\"total\":{total},\"wall_ns\":{wall_ns},\"resumed\":{resumed}"
                ),
            );
        }
    }
    out.push('}');
}

fn instant(out: &mut String, name: &str, tid: u32, at_ns: u64, args: &str) {
    let _ = write!(out, "\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",");
    push_ts(out, "ts", at_ns);
    let _ = write!(out, ",\"pid\":0,\"tid\":{tid},\"args\":{{{args}}}");
}

fn thread_name(out: &mut String, tid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

/// Renders timed events as a Chrome trace-event JSON document.
///
/// The output is deterministic given the events: one event per line,
/// metadata records first, then the events in buffer order. `dropped`
/// (events the ring evicted) is recorded in the top-level
/// `otherData` object.
pub fn render(events: &[TimedEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let meta = |out: &mut String, tid: u32, name: &str, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        thread_name(out, tid, name);
    };
    meta(&mut out, TID_PHASES, "engine phases", &mut first);
    meta(&mut out, TID_LEDGER, "reservation ledger", &mut first);
    meta(&mut out, TID_DECODER, "decoder windows", &mut first);
    meta(&mut out, TID_TASKS, "tasks", &mut first);
    meta(&mut out, TID_HARNESS, "harness", &mut first);
    meta(&mut out, TID_ANCILLA, "ancilla occupancy", &mut first);
    for te in events {
        out.push_str(",\n");
        push_event(&mut out, te);
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"generator\":\"rescq-telemetry\",\"dropped_events\":{dropped}}}}}\n"
    );
    out
}

/// Replaces every `"ts"`/`"dur"` value in a trace document with `0`,
/// leaving everything else byte-identical. Used to golden-pin traces:
/// wall-clock varies run to run, the event structure must not.
pub fn normalize_timestamps(trace: &str) -> String {
    let mut out = String::with_capacity(trace.len());
    let bytes = trace.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &trace[i..];
        let key = if rest.starts_with("\"ts\":") {
            Some(5)
        } else if rest.starts_with("\"dur\":") {
            Some(6)
        } else {
            None
        };
        match key {
            Some(klen) => {
                out.push_str(&rest[..klen]);
                out.push('0');
                i += klen;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                {
                    i += 1;
                }
            }
            None => {
                let ch = rest.chars().next().expect("in-bounds");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    out
}

/// A parsed JSON value (minimal internal model — the crate is
/// dependency-free).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                // Bulk-copy the run of plain ASCII up to the next quote,
                // escape, or multi-byte char. Validating one bounded char
                // at a time (never the whole remaining document) keeps
                // parsing linear in the document size.
                Some(b) if b < 0x80 => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|b| b < 0x80 && b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii"));
                }
                Some(b) => {
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Statistics of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Trace events excluding metadata records.
    pub events: usize,
    /// Complete spans (`"ph": "X"`).
    pub spans: usize,
    /// Instant events (`"ph": "i"`).
    pub instants: usize,
}

/// Parses a document and checks it is a structurally valid Chrome
/// trace: a top-level object with a `traceEvents` array whose every
/// element has a string `name`, a known `ph`, integer `pid`/`tid`, and
/// (for non-metadata events) a numeric `ts` — with `dur` additionally
/// required on complete spans.
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut stats = TraceStats {
        events: 0,
        spans: 0,
        instants: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| format!("traceEvents[{i}]: {msg}");
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `ph`"))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| fail(&format!("missing numeric `{key}`")))?;
        }
        match ph {
            "M" => continue,
            "X" | "i" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail("missing numeric `ts`"))?;
                stats.events += 1;
                if ph == "X" {
                    ev.get("dur")
                        .and_then(Json::as_num)
                        .ok_or_else(|| fail("missing numeric `dur` on a span"))?;
                    stats.spans += 1;
                } else {
                    stats.instants += 1;
                }
            }
            other => return Err(fail(&format!("unknown phase `{other}`"))),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, StallCause};

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                at_ns: 2500,
                event: Event::PhaseSpan {
                    phase: Phase::Schedule,
                    round: 7,
                    dur_ns: 1500,
                },
            },
            TimedEvent {
                at_ns: 3000,
                event: Event::Claim {
                    round: 7,
                    task: 2,
                    ancilla: 5,
                    cross_shard: true,
                },
            },
            TimedEvent {
                at_ns: 4000,
                event: Event::Stall {
                    round: 14,
                    task: 2,
                    cause: StallCause::DecoderBacklog,
                },
            },
        ]
    }

    #[test]
    fn rendered_trace_validates() {
        let trace = render(&sample_events(), 3);
        let stats = validate_trace(&trace).unwrap();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 2);
        assert!(trace.contains("\"dropped_events\":3"));
        assert!(trace.contains("\"cause\":\"decoder_backlog\""));
        // Span start = record instant − duration.
        assert!(trace.contains("\"ts\":1.000,\"dur\":1.500"));
    }

    #[test]
    fn normalization_zeroes_only_timestamps() {
        let trace = render(&sample_events(), 0);
        let norm = normalize_timestamps(&trace);
        assert!(norm.contains("\"ts\":0,\"dur\":0"));
        assert!(!norm.contains("\"ts\":1.000"));
        // Event payloads survive untouched.
        assert!(norm.contains("\"round\":7"));
        assert!(norm.contains("\"ancilla\":5"));
        // Normalization is idempotent and still a valid trace.
        assert_eq!(normalize_timestamps(&norm), norm);
        validate_trace(&norm).unwrap();
    }

    #[test]
    fn json_parser_round_trips_values() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_trace("[]").is_err());
        assert!(validate_trace(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(validate_trace(
            r#"{"traceEvents": [{"name": "a", "ph": "Q", "pid": 0, "tid": 0}]}"#
        )
        .is_err());
        // A span without `dur` is rejected.
        assert!(validate_trace(
            r#"{"traceEvents": [{"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 1}]}"#
        )
        .is_err());
    }
}
