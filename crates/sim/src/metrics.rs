//! Execution metrics: total cycles, per-gate latency histograms (Fig 5),
//! idle fractions (Fig 11/12), and classical-overhead counters (§5.4).

use rescq_core::SchedulerKind;
use rescq_telemetry::{HistogramSummary, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt;

/// Histogram of per-gate completion latencies in lattice-surgery cycles,
/// measured from the moment the gate is *scheduled* (paper Fig 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u64, u64>,
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one gate latency (whole cycles, rounded up from rounds).
    pub fn record(&mut self, cycles: u64) {
        *self.buckets.entry(cycles).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.buckets.iter().map(|(&lat, &n)| lat * n).sum();
        sum as f64 / self.total as f64
    }

    /// Fraction of samples with latency ≤ `cycles`.
    pub fn fraction_at_most(&self, cycles: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self.buckets.range(..=cycles).map(|(_, &count)| count).sum();
        n as f64 / self.total as f64
    }

    /// Smallest latency `L` such that at least `p` (0..=1) of samples are ≤ `L`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (&lat, &n) in &self.buckets {
            acc += n;
            if acc >= threshold {
                return lat;
            }
        }
        *self.buckets.keys().last().expect("non-empty")
    }

    /// Iterates `(latency_cycles, count)` in ascending latency order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&l, &n)| (l, n))
    }

    /// Merges another histogram into this one (used to accumulate across
    /// benchmarks for Fig 5).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&lat, &n) in &other.buckets {
            *self.buckets.entry(lat).or_insert(0) += n;
        }
        self.total += other.total;
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.2}", self.total, self.mean())
    }
}

/// Counters describing one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunCounters {
    /// Preparations started.
    pub preps_started: u64,
    /// Preparations that completed successfully (state held).
    pub preps_succeeded: u64,
    /// Preparations cancelled (reclaimed ancilla / in-place angle update).
    pub preps_cancelled: u64,
    /// Prepared states discarded unused (extra parallel successes).
    pub states_discarded: u64,
    /// Injection attempts.
    pub injections: u64,
    /// Injection failures (−1 measurement outcomes).
    pub injection_failures: u64,
    /// Edge-rotation gates executed.
    pub edge_rotations: u64,
    /// CNOT surgeries executed.
    pub cnot_surgeries: u64,
    /// Stalled CNOT routes re-planned (RESCQ on constrained fabrics).
    pub cnot_replans: u64,
    /// Ledger preemptions applied: an older stalled task reordered ahead of
    /// younger speculative preparations (RESCQ on constrained fabrics).
    pub preemptions: u64,
    /// Preemptions rejected because the reordered wait-for edges would have
    /// created a cycle (the naive-yield deadlock, caught by the ledger).
    pub preemptions_rejected_cycle: u64,
    /// Applied preemptions whose target ancilla lay outside the preempting
    /// task's home shard (region-partitioned RESCQ engine; thread-count
    /// invariant because the region partition follows the fabric alone).
    pub preemptions_cross_shard: u64,
    /// Ledger claims registered on an ancilla hosted outside the claiming
    /// task's home shard (CNOT routes leaving their home region).
    pub claims_cross_shard: u64,
    /// Applied preemptions granted by the priority-class lattice — the
    /// preemptor's class strictly outranked a displaced entry, a reorder
    /// seniority alone would have refused. Always 0 in class-blind runs.
    pub preemptions_class: u64,
    /// Applied preemptions bucketed by the preemptor's class rank in the
    /// lattice (`speculative, compute, injection, factory` for the default
    /// lattice; deeper custom lattices clamp into the top bucket).
    /// Class-blind runs land everything in the `compute` bucket.
    pub preemptions_by_class: [u64; rescq_core::TaskClass::TRACKED],
    /// Largest number of distinct edges the task wait-for graph ever held.
    pub waitgraph_peak_edges: u64,
    /// Applied preemptions bucketed by the preemptor's *raw* lattice rank
    /// (mirrors [`rescq_core::LedgerStats::preemptions_by_rank`]); one slot
    /// per configured class, so deeper custom lattices keep per-class
    /// resolution that the canonical 4 buckets clamp away. Empty for
    /// class-blind runs.
    pub preemptions_by_rank: Vec<u64>,
    /// Cycles live tasks spent stalled on ancilla availability (runnable,
    /// but no prepared state / free ancilla to proceed with). Sampled once
    /// per lattice-surgery cycle per stalled task; derived purely from
    /// simulated time, so it is part of the determinism contract.
    pub stall_ancilla_cycles: u64,
    /// Cycles live tasks spent stalled waiting on classical decode results
    /// (feed-forward or preparation-verification windows in flight).
    pub stall_decoder_cycles: u64,
    /// Cycles live CNOTs spent stalled with a planned route they could not
    /// occupy (route claims queued behind other work).
    pub stall_route_cycles: u64,
    /// Cycles live tasks spent stalled because a class-lattice preemption
    /// displaced their preparation (always 0 in class-blind runs).
    pub stall_class_cycles: u64,
    /// MST computations completed (RESCQ).
    pub mst_computations: u64,
    /// Incremental MST edge updates applied (RESCQ, §5.4.1).
    pub mst_incremental_updates: u64,
    /// Path-cache hits (RESCQ, §5.4.2).
    pub path_cache_hits: u64,
    /// Path-cache misses.
    pub path_cache_misses: u64,
    /// Syndrome windows submitted to the classical decoder.
    pub decode_windows: u64,
    /// Rounds feed-forward decisions waited on decode results (0 under the
    /// ideal decoder).
    pub decoder_stall_rounds: u64,
    /// Largest decode backlog (windows simultaneously in flight).
    pub decoder_peak_backlog: u64,
    /// Defects (flipped detectors) the decoder observed; non-zero only for
    /// the union-find decoder, which samples real syndromes.
    pub decode_defects: u64,
    /// Union-find cluster-growth half-steps performed (the dominant decode
    /// work term; zero for the latency-model decoders).
    pub decode_growth_steps: u64,
    /// Windows whose residual error crossed the logical cut after
    /// correction (union-find decoder only).
    pub decode_failures: u64,
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Scheduler that produced the run.
    pub scheduler: SchedulerKind,
    /// The run seed.
    pub seed: u64,
    /// Engine worker threads the run resolved to (always 1 for the static
    /// baselines; never affects the schedule, only wall-clock).
    pub engine_threads: u32,
    /// Code distance.
    pub distance: u32,
    /// Total execution time in measurement rounds.
    pub total_rounds: u64,
    /// Gates executed (all kinds).
    pub gates_executed: usize,
    /// CNOT latency histogram (schedule → completion, Fig 5 left).
    pub cnot_latency: LatencyHistogram,
    /// Rz latency histogram including all correction gates (Fig 5 right).
    pub rz_latency: LatencyHistogram,
    /// Decode latency histogram: whole cycles from syndrome-window
    /// submission to result visibility (all zeros under the ideal decoder).
    pub decode_latency: LatencyHistogram,
    /// Sum over data qubits of rounds spent busy.
    pub data_busy_rounds: u64,
    /// Number of data qubits.
    pub num_qubits: u32,
    /// Achieved grid compression (may differ from requested, §5.3).
    pub achieved_compression: f64,
    /// Resolved MST period `k` (RESCQ; 0 for baselines).
    pub k_used: u32,
    /// Modelled `τ_MST` (RESCQ; 0 for baselines).
    pub tau_used: u32,
    /// Event counters.
    pub counters: RunCounters,
    /// Wall-clock nanoseconds spent in each dispatch phase
    /// (schedule/start/propose/commit, indexed like
    /// `rescq_telemetry::Phase::index`). Measured only when the run is
    /// traced; all zeros otherwise, so untraced reports stay comparable by
    /// equality. Wall-clock never feeds back into the schedule.
    pub phase_nanos: [u64; 4],
}

impl ExecutionReport {
    /// Total execution time in lattice-surgery cycles (fractional).
    pub fn total_cycles(&self) -> f64 {
        self.total_rounds as f64 / self.distance as f64
    }

    /// Cycles feed-forward decisions spent stalled on the classical decoder
    /// (fractional; 0 under the ideal decoder).
    pub fn decoder_stall_cycles(&self) -> f64 {
        self.counters.decoder_stall_rounds as f64 / self.distance as f64
    }

    /// Total cycles attributed to stalls, summed over the four causes
    /// (ancilla contention, decoder backlog, route blocked, class
    /// displacement). Per-task-per-cycle samples, so concurrent stalls
    /// count once each.
    pub fn stall_cycles(&self) -> u64 {
        self.counters.stall_ancilla_cycles
            + self.counters.stall_decoder_cycles
            + self.counters.stall_route_cycles
            + self.counters.stall_class_cycles
    }

    /// Fraction of data-qubit time spent idle (Fig 11/12 bottom rows):
    /// `1 − busy / (qubits × makespan)`.
    pub fn idle_fraction(&self) -> f64 {
        if self.total_rounds == 0 || self.num_qubits == 0 {
            return 0.0;
        }
        let window = self.total_rounds as f64 * self.num_qubits as f64;
        (1.0 - self.data_busy_rounds as f64 / window).clamp(0.0, 1.0)
    }
}

/// Summarizes a [`LatencyHistogram`] to the snapshot's quantile form
/// (exact quantiles — cycle histograms keep every bucket).
fn summarize(h: &LatencyHistogram) -> HistogramSummary {
    HistogramSummary {
        count: h.count(),
        sum: h.iter().map(|(lat, n)| lat * n).sum(),
        p50: h.percentile(0.5),
        p99: h.percentile(0.99),
    }
}

/// Builds the versioned [`MetricsSnapshot`] of one run: the
/// machine-queryable rollup `sim run --metrics-out` writes and the
/// harness folds into sweep outputs.
///
/// Every metric is schedule-derived (rounds, cycles, counters) — the
/// wall-clock `phase_nanos` are deliberately excluded — so the
/// snapshot is a pure function of config + seed, byte-identical with
/// tracing on or off at any engine thread count.
pub fn metrics_snapshot(report: &ExecutionReport) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::new();
    let c = &report.counters;
    s.counter("rescq_total_rounds", report.total_rounds)
        .counter("rescq_gates_executed", report.gates_executed as u64)
        .counter("rescq_preps_started", c.preps_started)
        .counter("rescq_preps_succeeded", c.preps_succeeded)
        .counter("rescq_preps_cancelled", c.preps_cancelled)
        .counter("rescq_injections", c.injections)
        .counter("rescq_injection_failures", c.injection_failures)
        .counter("rescq_cnot_surgeries", c.cnot_surgeries)
        .counter("rescq_cnot_replans", c.cnot_replans)
        .counter("rescq_preemptions", c.preemptions)
        .counter("rescq_preemptions_rejected", c.preemptions_rejected_cycle)
        .counter("rescq_preemptions_class", c.preemptions_class)
        .counter("rescq_claims_cross_shard", c.claims_cross_shard)
        .counter("rescq_waitgraph_peak_edges", c.waitgraph_peak_edges)
        .counter("rescq_stall_ancilla_cycles", c.stall_ancilla_cycles)
        .counter("rescq_stall_decoder_cycles", c.stall_decoder_cycles)
        .counter("rescq_stall_route_cycles", c.stall_route_cycles)
        .counter("rescq_stall_class_cycles", c.stall_class_cycles)
        .counter("rescq_decode_windows", c.decode_windows)
        .counter("rescq_decoder_stall_rounds", c.decoder_stall_rounds)
        .counter("rescq_decoder_peak_backlog", c.decoder_peak_backlog)
        .counter("rescq_decode_defects", c.decode_defects)
        .counter("rescq_decode_growth_steps", c.decode_growth_steps)
        .counter("rescq_decode_failures", c.decode_failures)
        .gauge("rescq_total_cycles", report.total_cycles())
        .gauge("rescq_idle_fraction", report.idle_fraction())
        .gauge("rescq_achieved_compression", report.achieved_compression)
        .histogram("rescq_cnot_latency_cycles", summarize(&report.cnot_latency))
        .histogram("rescq_rz_latency_cycles", summarize(&report.rz_latency))
        .histogram(
            "rescq_decode_latency_cycles",
            summarize(&report.decode_latency),
        );
    s
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} cycles ({} gates, idle {:.0}%)",
            self.scheduler,
            self.total_cycles(),
            self.gates_executed,
            self.idle_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_statistics() {
        let mut h = LatencyHistogram::new();
        for v in [2, 2, 2, 5, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.8).abs() < 1e-12);
        assert!((h.fraction_at_most(2) - 0.6).abs() < 1e-12);
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.percentile(0.9), 8);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        a.record(2);
        let mut b = LatencyHistogram::new();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.fraction_at_most(2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.fraction_at_most(100), 0.0);
    }

    #[test]
    fn report_derived_quantities() {
        let r = ExecutionReport {
            scheduler: SchedulerKind::Rescq,
            seed: 1,
            engine_threads: 1,
            distance: 7,
            total_rounds: 700,
            gates_executed: 10,
            cnot_latency: LatencyHistogram::new(),
            rz_latency: LatencyHistogram::new(),
            decode_latency: LatencyHistogram::new(),
            data_busy_rounds: 1400,
            num_qubits: 4,
            achieved_compression: 0.0,
            k_used: 25,
            tau_used: 17,
            counters: RunCounters {
                stall_ancilla_cycles: 3,
                stall_decoder_cycles: 2,
                stall_route_cycles: 1,
                ..RunCounters::default()
            },
            phase_nanos: [0; 4],
        };
        assert!((r.total_cycles() - 100.0).abs() < 1e-12);
        assert!((r.idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.stall_cycles(), 6);
    }

    #[test]
    fn metrics_snapshot_covers_counters_and_quantiles() {
        let mut cnot = LatencyHistogram::new();
        for v in [10, 20, 20, 40] {
            cnot.record(v);
        }
        let r = ExecutionReport {
            scheduler: SchedulerKind::Rescq,
            seed: 1,
            engine_threads: 1,
            distance: 7,
            total_rounds: 700,
            gates_executed: 10,
            cnot_latency: cnot,
            rz_latency: LatencyHistogram::new(),
            decode_latency: LatencyHistogram::new(),
            data_busy_rounds: 1400,
            num_qubits: 4,
            achieved_compression: 0.25,
            k_used: 25,
            tau_used: 17,
            counters: RunCounters {
                stall_decoder_cycles: 2,
                decode_windows: 9,
                ..RunCounters::default()
            },
            // Wall-clock never reaches the snapshot: identical schedule,
            // different phase timings must snapshot identically.
            phase_nanos: [123, 456, 789, 1011],
        };
        let s = metrics_snapshot(&r);
        assert_eq!(s.get_counter("rescq_total_rounds"), Some(700));
        assert_eq!(s.get_counter("rescq_decode_windows"), Some(9));
        assert_eq!(s.get_counter("rescq_stall_decoder_cycles"), Some(2));
        let (_, cnot_summary) = s
            .histograms
            .iter()
            .find(|(name, _)| name == "rescq_cnot_latency_cycles")
            .unwrap();
        assert_eq!(cnot_summary.count, 4);
        assert_eq!(cnot_summary.sum, 90);
        assert_eq!(cnot_summary.p50, 20);
        assert_eq!(cnot_summary.p99, 40);

        let mut zeroed = r;
        zeroed.phase_nanos = [0; 4];
        assert_eq!(s.to_json(), metrics_snapshot(&zeroed).to_json());
        assert!(s.to_text().contains("gauge rescq_idle_fraction"));
    }
}
