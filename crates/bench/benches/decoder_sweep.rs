//! Decoder sweep: total cycles vs classical-decoder throughput on the
//! bursty decoder-stress workload (RESCQ scheduler, d = 7, p = 1e-4).
//!
//! As throughput drops below the substrate's syndrome production rate the
//! run moves from the preparation-limited regime into the decoder-limited
//! one: feed-forward outcomes queue behind the decoder and stall cycles
//! dominate the makespan.
//!
//! The grid runs on `rescq-harness`: circuit generation and fabric
//! construction happen once and are shared across every (throughput, seed)
//! point instead of being rebuilt per point.

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Decoder sweep — total cycles vs decoder throughput",
        "RESCQ on decoder_stress; fixed-latency decoder, ideal at tp=inf",
    );
    let (rows, monotone, cache) =
        experiments::decoder_sweep_with_stats(&scale).expect("decoder sweep");
    println!(
        "{:<18} {:<9} {:>11} {:>12} {:>14} {:>13}",
        "workload", "decoder", "throughput", "mean cycles", "stall cycles", "peak backlog"
    );
    for r in &rows {
        println!(
            "{:<18} {:<9} {:>11} {:>12.1} {:>14.1} {:>13}",
            r.name,
            r.decoder.to_string(),
            if r.throughput.is_infinite() {
                "inf".to_string()
            } else {
                format!("{}", r.throughput)
            },
            r.mean_cycles,
            r.mean_stall_cycles,
            r.peak_backlog
        );
    }
    println!(
        "cycles monotonically non-decreasing as throughput drops: {}",
        if monotone { "yes" } else { "NO" }
    );
    println!("artifact cache: {cache}");
}
