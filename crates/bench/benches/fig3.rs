//! Figure 3: maximum rotation gates vs target fidelity, Clifford+Rz vs
//! Clifford+T.

use rescq_bench::print_header;
use rescq_rus::fig3_series;

fn main() {
    print_header(
        "Figure 3 — rotation budget vs logical error rate",
        "Clifford+Rz (solid) vs Clifford+T (dashed); ratio ≈ 2 orders of magnitude",
    );
    for fidelity in [0.9, 0.99] {
        println!("target fidelity {fidelity}:");
        println!(
            "{:>10} {:>16} {:>16} {:>8}",
            "LER", "Rz rotations", "T rotations", "ratio"
        );
        let lers: Vec<f64> = (4..=12).map(|e| 10f64.powi(-e)).collect();
        for row in fig3_series(fidelity, &lers) {
            println!(
                "{:>10.0e} {:>16} {:>16} {:>8.1}",
                row.logical_error_rate,
                row.rz_rotations,
                row.t_rotations,
                row.rz_rotations as f64 / row.t_rotations.max(1) as f64
            );
        }
    }
}
