//! The harness determinism contract: output is a function of the spec
//! alone, never of the worker count — a 2×2×2-point sweep run with 1 worker
//! and with 8 workers must produce byte-identical CSV and identical
//! aggregate statistics.

use rescq_harness::{run_sweep, RunOptions, SweepSpec};

fn spec_2x2x2() -> SweepSpec {
    SweepSpec::parse(
        r#"
        [sweep]
        workloads    = ["decoder_stress_n4", "wstate_n27"]
        compressions = [0.0, 0.5]
        decoders     = ["ideal", "fixed:0.5"]
        seeds        = 2
        "#,
    )
    .expect("spec parses")
}

#[test]
fn one_worker_and_eight_workers_byte_identical() {
    let spec = spec_2x2x2();
    assert_eq!(
        spec.num_points(),
        8,
        "2 workloads x 2 compressions x 2 decoders"
    );

    let serial = run_sweep(&spec, &RunOptions::with_threads(1)).expect("serial sweep");
    let parallel = run_sweep(&spec, &RunOptions::with_threads(8)).expect("parallel sweep");

    assert!(serial.first_error().is_none());
    assert!(parallel.first_error().is_none());

    // Byte-identical CSV rows in identical order.
    assert_eq!(serial.to_csv(), parallel.to_csv());

    // Identical aggregate statistics, point by point.
    let s = serial.summaries();
    let p = parallel.summaries();
    assert_eq!(s.len(), 8);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_cycles, b.mean_cycles, "point {}", a.point);
        assert_eq!(a.p50_cycles, b.p50_cycles);
        assert_eq!(a.p99_cycles, b.p99_cycles);
        assert_eq!(a.mean_stall_cycles, b.mean_stall_cycles);
        assert_eq!(a.stall_fraction, b.stall_fraction);
        assert_eq!(a.peak_backlog, b.peak_backlog);
    }

    // The cache sharing factor is also deterministic: 2 circuits,
    // 2 layout geometries per circuit width (2 widths x 2 compressions).
    assert_eq!(serial.cache.circuit_builds, 2);
    assert_eq!(serial.cache.layout_builds, 4);
    assert_eq!(parallel.cache.circuit_builds, 2);
    assert_eq!(parallel.cache.layout_builds, 4);
}

#[test]
fn harness_rows_match_direct_simulation() {
    // The harness must not change any result: each row equals a plain
    // `simulate` call with the same configuration.
    let spec = SweepSpec::parse(
        "workloads = [\"decoder_stress_n4\"]\ndecoders = [\"fixed:0.5\"]\nseeds = 2\n",
    )
    .unwrap();
    let results = run_sweep(&spec, &RunOptions::with_threads(4)).unwrap();
    for record in &results.records {
        let circuit = rescq_workloads::generate(&record.job.workload, spec.circuit_seed).unwrap();
        let direct = rescq_sim::simulate(&circuit, &record.job.config).unwrap();
        let metrics = record.outcome.as_ref().expect("job succeeded");
        assert_eq!(metrics.total_cycles, direct.total_cycles());
        assert_eq!(metrics.stall_cycles, direct.decoder_stall_cycles());
        assert_eq!(metrics.injections, direct.counters.injections);
        assert_eq!(metrics.seed, direct.seed);
    }
}

#[test]
fn json_document_is_reproducible_modulo_timing() {
    let spec = spec_2x2x2();
    let a = run_sweep(&spec, &RunOptions::with_threads(1)).unwrap();
    let b = run_sweep(&spec, &RunOptions::with_threads(8)).unwrap();
    let strip = |json: &str| -> String {
        json.lines()
            .filter(|l| !l.contains("elapsed_secs"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
}
