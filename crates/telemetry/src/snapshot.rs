//! Versioned metrics snapshots: the queryable rollup of one run.
//!
//! A [`MetricsSnapshot`] is a flat bag of named counters, gauges, and
//! histogram summaries (count/sum/p50/p99) with a schema version —
//! the machine-readable sibling of the human report CSVs. The sim
//! builds one per run (`rescq_sim::metrics_snapshot`), `sim run
//! --metrics-out` writes it, and the harness rolls the histogram
//! quantiles up into sweep outputs.
//!
//! Everything in a snapshot is **schedule-derived** (rounds, cycles,
//! counters) — wall-clock never enters, so a snapshot is a pure
//! function of config + seed and the `tracing_is_inert` property can
//! byte-compare snapshots taken with and without a recorder attached.
//!
//! The text exposition (`to_text`) is a stable `kind name value` line
//! format; `to_json` / `parse` round-trip through the crate's mini
//! JSON parser like the perf baselines do.

use crate::chrome::{parse_json, Json};
use std::fmt::Write as _;

/// Version stamp written into every snapshot; bump on any field
/// change so readers can refuse incompatible documents.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Quantile summary of one latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// 50th-percentile sample.
    pub p50: u64,
    /// 99th-percentile sample.
    pub p99: u64,
}

/// A versioned, ordered bag of named metrics describing one run.
///
/// Names use the `rescq_` prefix and snake_case; insertion order is
/// preserved and is the serialization order, so two snapshots built
/// the same way compare byte-for-byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone event counts (e.g. `rescq_preemptions`).
    pub counters: Vec<(String, u64)>,
    /// Point-in-time fractions/ratios (e.g. `rescq_idle_fraction`).
    pub gauges: Vec<(String, f64)>,
    /// Latency distributions summarized to count/sum/p50/p99.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.push((name.to_owned(), value));
        self
    }

    /// Appends a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.gauges.push((name.to_owned(), value));
        self
    }

    /// Appends a histogram summary.
    pub fn histogram(&mut self, name: &str, summary: HistogramSummary) -> &mut Self {
        self.histograms.push((name.to_owned(), summary));
        self
    }

    /// Looks up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the stable text exposition: one `kind name value` line
    /// per metric (histograms as `count=.. sum=.. p50=.. p99=..`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# rescq metrics snapshot v{METRICS_SCHEMA_VERSION}");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v:.6}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} p50={} p99={}",
                h.count, h.sum, h.p50, h.p99
            );
        }
        out
    }

    /// Renders the snapshot as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {METRICS_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"counters\": {{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {v}{comma}");
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"gauges\": {{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {v:.6}{comma}");
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"histograms\": {{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}{comma}",
                h.count, h.sum, h.p50, h.p99
            );
        }
        let _ = writeln!(out, "  }}");
        out.push_str("}\n");
        out
    }

    /// Parses a document written by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on syntax errors, a missing or mismatched
    /// schema version, or malformed metric values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing `schema_version`")? as u32;
        if version != METRICS_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema v{version} but this build reads v{METRICS_SCHEMA_VERSION}"
            ));
        }
        let section = |key: &str| -> Result<Vec<(String, Json)>, String> {
            match doc.get(key) {
                Some(Json::Obj(pairs)) => Ok(pairs.clone()),
                _ => Err(format!("missing `{key}` object")),
            }
        };
        let mut snap = MetricsSnapshot::new();
        for (name, v) in section("counters")? {
            let v = v.as_num().ok_or_else(|| format!("counter `{name}`"))?;
            snap.counters.push((name, v as u64));
        }
        for (name, v) in section("gauges")? {
            let v = v.as_num().ok_or_else(|| format!("gauge `{name}`"))?;
            snap.gauges.push((name, v));
        }
        for (name, h) in section("histograms")? {
            let field = |key: &str| {
                h.get(key)
                    .and_then(Json::as_num)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("histogram `{name}`: missing `{key}`"))
            };
            let summary = HistogramSummary {
                count: field("count")?,
                sum: field("sum")?,
                p50: field("p50")?,
                p99: field("p99")?,
            };
            snap.histograms.push((name, summary));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counter("rescq_gates_executed", 42)
            .counter("rescq_preemptions", 3)
            .gauge("rescq_idle_fraction", 0.25)
            .histogram(
                "rescq_cnot_latency_cycles",
                HistogramSummary {
                    count: 10,
                    sum: 120,
                    p50: 11,
                    p99: 30,
                },
            );
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = sample();
        let parsed = MetricsSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.get_counter("rescq_preemptions"), Some(3));
        // Serialization is deterministic.
        assert_eq!(s.to_json(), parsed.to_json());
    }

    #[test]
    fn text_exposition_is_line_per_metric() {
        let text = sample().to_text();
        assert!(text.starts_with("# rescq metrics snapshot v1\n"));
        assert!(text.contains("counter rescq_gates_executed 42\n"));
        assert!(text.contains("gauge rescq_idle_fraction 0.250000\n"));
        assert!(
            text.contains("histogram rescq_cnot_latency_cycles count=10 sum=120 p50=11 p99=30\n")
        );
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let err = MetricsSnapshot::parse("{\"schema_version\": 9}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(MetricsSnapshot::parse("nope").is_err());
    }
}
