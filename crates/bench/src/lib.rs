//! # rescq-bench
//!
//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the RESCQ paper. The actual experiments live in `benches/` (see
//! `DESIGN.md` §3 for the experiment index); this library provides the common
//! formatting and sizing utilities they share.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{bench_scale, print_header, print_row, BenchScale};
