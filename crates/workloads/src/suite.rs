//! The Table 3 benchmark registry: every row of the paper's benchmark table
//! with its suite, qubit count and published gate counts, plus name-based
//! generation.

use crate::families;
use rescq_circuit::Circuit;
use std::fmt;

/// Which benchmark suite a circuit comes from (Table 3's first column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// QASMBench "large".
    Large,
    /// QASMBench "medium".
    Medium,
    /// SupermarQ.
    Supermarq,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Large => "large",
            Suite::Medium => "medium",
            Suite::Supermarq => "supermarq",
        };
        f.write_str(s)
    }
}

/// The generator family of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// 1-D transverse-field Ising Trotter step.
    Ising,
    /// Shift-and-add binary multiplier.
    Multiplier,
    /// (Approximate) quantum Fourier transform.
    Qft,
    /// Quantum GAN ansatz.
    Qugan,
    /// Generator-coordinate-method chemistry circuit.
    Gcm,
    /// Quantum neural network.
    Dnn,
    /// W-state preparation chain.
    Wstate,
    /// SupermarQ Hamiltonian simulation.
    HamiltonianSimulation,
    /// SupermarQ QAOA with fermionic swap network.
    QaoaFermionicSwap,
    /// SupermarQ vanilla QAOA.
    QaoaVanilla,
    /// SupermarQ VQE ansatz.
    Vqe,
}

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Canonical name, e.g. `"ising_n34"`.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Generator family.
    pub family: Family,
    /// Number of qubits.
    pub qubits: u32,
    /// `#Rz` column of Table 3.
    pub paper_rz: usize,
    /// `#CNOT` column of Table 3.
    pub paper_cnot: usize,
    /// Whether our generator reproduces the counts exactly.
    pub exact: bool,
}

impl BenchmarkSpec {
    /// Generates the circuit with the given seed (angles are seeded; the
    /// structure is fixed).
    pub fn generate(&self, seed: u64) -> Circuit {
        let n = self.qubits;
        match self.family {
            Family::Ising => families::ising::generate(n, seed),
            Family::Multiplier => families::multiplier::generate(n, seed),
            Family::Qft => families::qft::generate(n, seed),
            Family::Qugan => families::qugan::generate(n, seed),
            Family::Gcm => families::gcm::generate(n, seed),
            Family::Dnn => families::dnn::generate(n, seed),
            Family::Wstate => families::wstate::generate(n, seed),
            Family::HamiltonianSimulation => families::hamiltonian_simulation::generate(n, seed),
            Family::QaoaFermionicSwap => families::qaoa_fermionic_swap::generate(n, seed),
            Family::QaoaVanilla => families::qaoa_vanilla::generate(n, seed),
            Family::Vqe => families::vqe::generate(n, seed),
        }
    }

    /// Paper's Rz-to-CNOT density (what §5.2 selects representatives by).
    pub fn rz_per_cnot(&self) -> f64 {
        self.paper_rz as f64 / self.paper_cnot.max(1) as f64
    }
}

macro_rules! spec {
    ($name:literal, $suite:ident, $family:ident, $q:literal, $rz:literal, $cnot:literal, $exact:literal) => {
        BenchmarkSpec {
            name: $name,
            suite: Suite::$suite,
            family: Family::$family,
            qubits: $q,
            paper_rz: $rz,
            paper_cnot: $cnot,
            exact: $exact,
        }
    };
}

/// Every row of Table 3, in the paper's order.
pub const ALL_BENCHMARKS: &[BenchmarkSpec] = &[
    spec!("ising_n34", Large, Ising, 34, 83, 66, true),
    spec!("ising_n42", Large, Ising, 42, 103, 82, true),
    spec!("ising_n66", Large, Ising, 66, 163, 130, true),
    spec!("ising_n98", Large, Ising, 98, 243, 194, true),
    spec!("ising_n420", Large, Ising, 420, 1048, 838, true),
    spec!("multiplier_n45", Large, Multiplier, 45, 2237, 2286, false),
    spec!("multiplier_n75", Large, Multiplier, 75, 6384, 6510, false),
    spec!("qft_n29", Large, Qft, 29, 708, 680, true),
    spec!("qft_n63", Large, Qft, 63, 1898, 1836, true),
    spec!("qft_n160", Large, Qft, 160, 5293, 5134, true),
    spec!("qugan_n39", Large, Qugan, 39, 411, 296, true),
    spec!("qugan_n71", Large, Qugan, 71, 763, 552, true),
    spec!("qugan_n111", Large, Qugan, 111, 1203, 872, true),
    spec!("gcm_n13", Medium, Gcm, 13, 1528, 762, true),
    spec!("dnn_n16", Medium, Dnn, 16, 2432, 384, true),
    spec!("qft_n18", Medium, Qft, 18, 323, 306, true),
    spec!("wstate_n27", Medium, Wstate, 27, 156, 52, true),
    spec!(
        "HamiltonianSimulation_n25",
        Supermarq,
        HamiltonianSimulation,
        25,
        49,
        48,
        true
    ),
    spec!(
        "HamiltonianSimulation_n50",
        Supermarq,
        HamiltonianSimulation,
        50,
        99,
        98,
        true
    ),
    spec!(
        "HamiltonianSimulation_n75",
        Supermarq,
        HamiltonianSimulation,
        75,
        149,
        148,
        true
    ),
    spec!(
        "QAOAFermionicSwap_n15",
        Supermarq,
        QaoaFermionicSwap,
        15,
        120,
        315,
        true
    ),
    spec!(
        "QAOAVanilla_n15",
        Supermarq,
        QaoaVanilla,
        15,
        120,
        210,
        true
    ),
    spec!("VQE_n13", Supermarq, Vqe, 13, 78, 12, true),
];

/// The three representative benchmarks of §5.2, chosen for their Rz density
/// (dnn ≈ 6 Rz/CNOT, gcm ≈ 2, qft_n160 ≈ 1 — and qft_n160 for scale).
pub const REPRESENTATIVE: &[&str] = &["dnn_n16", "gcm_n13", "qft_n160"];

/// Looks a benchmark up by name.
pub fn find(name: &str) -> Option<&'static BenchmarkSpec> {
    ALL_BENCHMARKS.iter().find(|b| b.name == name)
}

/// Generates a benchmark by name.
///
/// Besides the Table 3 rows, two synthetic scenario families are
/// recognised: `decoder_stress_nN` (any qubit count `N ≥ 2`, exercises the
/// classical-decoder back-pressure) and `factory_nN` (any `N ≥ 4`, T-gate
/// factory tiles feeding a compute block — exercises the priority-class
/// lattice).
///
/// # Example
///
/// ```
/// let c = rescq_workloads::generate("wstate_n27", 1).unwrap();
/// assert_eq!(c.num_qubits(), 27);
/// assert_eq!(c.stats().rz, 156);
///
/// let stress = rescq_workloads::generate("decoder_stress_n16", 1).unwrap();
/// assert_eq!(stress.num_qubits(), 16);
///
/// let factory = rescq_workloads::generate("factory_n12", 1).unwrap();
/// assert_eq!(factory.num_qubits(), 12);
/// ```
pub fn generate(name: &str, seed: u64) -> Option<Circuit> {
    if let Some(n) = name.strip_prefix("decoder_stress_n") {
        let n: u32 = n.parse().ok()?;
        if n >= 2 {
            return Some(families::decoder_stress::generate(n, seed));
        }
        return None;
    }
    if let Some(n) = name.strip_prefix("factory_n") {
        let n: u32 = n.parse().ok()?;
        if n >= 4 {
            return Some(families::factory::generate(n, seed));
        }
        return None;
    }
    find(name).map(|spec| spec.generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_23_rows() {
        assert_eq!(ALL_BENCHMARKS.len(), 23);
        assert_eq!(
            ALL_BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Large)
                .count(),
            13
        );
        assert_eq!(
            ALL_BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Medium)
                .count(),
            4
        );
        assert_eq!(
            ALL_BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Supermarq)
                .count(),
            6
        );
    }

    #[test]
    fn exact_rows_match_table3() {
        for spec in ALL_BENCHMARKS.iter().filter(|b| b.exact) {
            let stats = spec.generate(1).stats();
            assert_eq!(
                (stats.rz, stats.cnot),
                (spec.paper_rz, spec.paper_cnot),
                "{} deviates from Table 3",
                spec.name
            );
        }
    }

    #[test]
    fn inexact_rows_within_tolerance() {
        for spec in ALL_BENCHMARKS.iter().filter(|b| !b.exact) {
            let stats = spec.generate(1).stats();
            let rz_dev = (stats.rz as f64 - spec.paper_rz as f64).abs() / spec.paper_rz as f64;
            let cnot_dev =
                (stats.cnot as f64 - spec.paper_cnot as f64).abs() / spec.paper_cnot as f64;
            assert!(
                rz_dev < 0.5 && cnot_dev < 0.5,
                "{}: rz dev {rz_dev:.2}, cnot dev {cnot_dev:.2}",
                spec.name
            );
        }
    }

    #[test]
    fn qubit_counts_match() {
        for spec in ALL_BENCHMARKS {
            let c = spec.generate(1);
            assert_eq!(c.num_qubits(), spec.qubits, "{}", spec.name);
        }
    }

    #[test]
    fn density_spread_covers_paper_range() {
        // §5.1: "these benchmarks span a large range of Rz-to-CNOT ratios
        // (≈1 to ≈6.5)".
        let min = ALL_BENCHMARKS
            .iter()
            .map(|b| b.rz_per_cnot())
            .fold(f64::INFINITY, f64::min);
        let max = ALL_BENCHMARKS
            .iter()
            .map(|b| b.rz_per_cnot())
            .fold(0.0, f64::max);
        assert!(min < 1.1, "min density {min}");
        assert!(max > 6.0, "max density {max}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(find("dnn_n16").is_some());
        assert!(find("nope_n1").is_none());
        assert!(generate("VQE_n13", 2).is_some());
        for name in REPRESENTATIVE {
            assert!(find(name).is_some());
        }
    }

    #[test]
    fn decoder_stress_names_generate() {
        let c = generate("decoder_stress_n12", 3).unwrap();
        assert_eq!(c.num_qubits(), 12);
        assert!(generate("decoder_stress_n1", 1).is_none());
        assert!(generate("decoder_stress_nx", 1).is_none());
        // The scenario family is synthetic: it must not leak into Table 3.
        assert!(find("decoder_stress_n12").is_none());
    }

    #[test]
    fn factory_names_generate() {
        let c = generate("factory_n16", 3).unwrap();
        assert_eq!(c.num_qubits(), 16);
        assert!(c.stats().rz > 0 && c.stats().cnot > 0);
        assert!(generate("factory_n3", 1).is_none());
        assert!(generate("factory_nx", 1).is_none());
        assert!(find("factory_n16").is_none(), "synthetic, not Table 3");
    }
}
