//! Cross-scheduler engine tests: determinism, baseline-vs-RESCQ ordering on
//! rotation-heavy programs, compression robustness, and failure injection.

use rescq_circuit::{Angle, Circuit};
use rescq_core::{KPolicy, SchedulerKind};
use rescq_decoder::DecoderConfig;
use rescq_rus::PrepCalibration;
use rescq_sim::{simulate, SimConfig};

/// A rotation-heavy program: alternating single-qubit rotation layers and a
/// CNOT chain, like the dnn benchmark family.
fn rz_heavy(num_qubits: u32, layers: u32) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for l in 0..layers {
        for q in 0..num_qubits {
            c.rz(q, Angle::radians(0.1 + 0.01 * (l * num_qubits + q) as f64));
        }
        for q in 0..num_qubits.saturating_sub(1) {
            c.cnot(q, q + 1);
        }
    }
    c
}

fn config(s: SchedulerKind, seed: u64) -> SimConfig {
    SimConfig::builder().scheduler(s).seed(seed).build()
}

#[test]
fn deterministic_per_seed() {
    let c = rz_heavy(6, 3);
    for s in SchedulerKind::ALL {
        let a = simulate(&c, &config(s, 11)).unwrap();
        let b = simulate(&c, &config(s, 11)).unwrap();
        assert_eq!(a, b, "{s} not deterministic");
        let other = simulate(&c, &config(s, 12)).unwrap();
        // Different seeds draw different RUS outcomes; the makespan almost
        // surely differs on an Rz-heavy circuit.
        assert_eq!(other.gates_executed, a.gates_executed);
    }
}

#[test]
fn all_gates_execute() {
    let c = rz_heavy(5, 4);
    for s in SchedulerKind::ALL {
        let r = simulate(&c, &config(s, 3)).unwrap();
        assert_eq!(r.gates_executed, c.len(), "{s} lost gates");
        assert!(r.total_cycles() > 0.0);
    }
}

#[test]
fn rescq_beats_baselines_on_rz_heavy_workload() {
    let c = rz_heavy(9, 4);
    let mean = |s: SchedulerKind| -> f64 {
        (0..5)
            .map(|i| simulate(&c, &config(s, 40 + i)).unwrap().total_cycles())
            .sum::<f64>()
            / 5.0
    };
    let rescq = mean(SchedulerKind::Rescq);
    let greedy = mean(SchedulerKind::Greedy);
    let autobraid = mean(SchedulerKind::Autobraid);
    assert!(
        rescq < greedy,
        "RESCQ ({rescq:.0} cycles) should beat greedy ({greedy:.0})"
    );
    assert!(
        rescq < autobraid,
        "RESCQ ({rescq:.0} cycles) should beat AutoBraid ({autobraid:.0})"
    );
}

#[test]
fn clifford_only_program_is_scheduler_insensitive() {
    // §5.1: programs without continuous rotations "behave identically in the
    // static and realtime cases" — we allow a small constant factor for the
    // layer barrier but no RUS-driven gap.
    let mut c = Circuit::new(6);
    for q in 0..6u32 {
        c.h(q);
    }
    for q in 0..5u32 {
        c.cnot(q, q + 1);
    }
    let rescq = simulate(&c, &config(SchedulerKind::Rescq, 5)).unwrap();
    let greedy = simulate(&c, &config(SchedulerKind::Greedy, 5)).unwrap();
    assert!(rescq.total_cycles() <= greedy.total_cycles());
    assert!(greedy.total_cycles() <= rescq.total_cycles() * 2.0);
    assert_eq!(rescq.counters.injections, 0);
    assert_eq!(greedy.counters.injections, 0);
}

#[test]
fn compressed_grid_still_completes() {
    let c = rz_heavy(8, 3);
    for s in SchedulerKind::ALL {
        for compression in [0.25, 0.5, 0.75, 1.0] {
            let cfg = SimConfig::builder()
                .scheduler(s)
                .compression(compression)
                .seed(9)
                .build();
            let r = simulate(&c, &cfg).expect("compressed run completes");
            assert_eq!(r.gates_executed, c.len(), "{s} at {compression}");
            assert!(r.achieved_compression > 0.0);
        }
    }
}

#[test]
fn rescq_holds_up_fully_compressed() {
    // On *this* synthetic workload — a fully serialized CNOT chain whose
    // dependency structure already hands greedy all available parallelism —
    // the two schedulers share the critical path, so near-parity is the
    // correct expectation and this test pins it against regressions (the
    // pre-ledger engine briefly hit 0.85× here). The paper's actual
    // constrained-fabric claim (1.65× on the benchmark suite, Fig 9) is
    // asserted as a strict ≥1.15× win in
    // `tests/paper_claims.rs::rescq_wins_on_compressed_fabrics`.
    let c = rz_heavy(12, 5);
    let mean = |s: SchedulerKind| -> f64 {
        (0..4)
            .map(|i| {
                let cfg = SimConfig::builder()
                    .scheduler(s)
                    .compression(1.0)
                    .seed(60 + i)
                    .build();
                simulate(&c, &cfg).unwrap().total_cycles()
            })
            .sum::<f64>()
            / 4.0
    };
    let rescq = mean(SchedulerKind::Rescq);
    let greedy = mean(SchedulerKind::Greedy);
    assert!(
        rescq <= greedy * 1.05,
        "RESCQ ({rescq:.0}) fell behind greedy ({greedy:.0}) at 100% compression"
    );
}

#[test]
fn uncompressed_runs_bit_identical_to_pre_ledger_engine() {
    // The reservation-ledger refactor rewrote every queue access in the
    // realtime engine and re-enabled eager correction preparation on
    // constrained fabrics. Uncompressed fabrics are unconstrained, so their
    // schedules — and therefore their RNG streams and exact round counts —
    // must be bit-identical to the pre-refactor engine. Golden values
    // captured from the PR 2 tree.
    for (qubits, layers, seed, rounds) in [
        (9u32, 4u32, 11u64, 411u64),
        (9, 4, 40, 421),
        (9, 4, 41, 449),
        (6, 3, 11, 306),
        (6, 3, 40, 284),
        (6, 3, 41, 248),
    ] {
        let c = rz_heavy(qubits, layers);
        let r = simulate(&c, &config(SchedulerKind::Rescq, seed)).unwrap();
        assert_eq!(
            r.total_rounds, rounds,
            "rz_heavy({qubits},{layers}) seed={seed} diverged from the pre-ledger engine"
        );
    }
}

#[test]
fn sharded_engine_reproduces_the_golden_schedules_for_any_thread_count() {
    // The golden rounds pinned in
    // `uncompressed_runs_bit_identical_to_pre_ledger_engine` must hold not
    // just for the default single-threaded engine but for every engine
    // thread count: the sharded dispatch (propose in parallel, commit in
    // canonical order at the barrier) is bit-identical by construction.
    for (qubits, layers, seed, rounds) in [
        (9u32, 4u32, 11u64, 411u64),
        (6, 3, 40, 284),
        (9, 4, 41, 449),
    ] {
        let c = rz_heavy(qubits, layers);
        let reference = simulate(&c, &config(SchedulerKind::Rescq, seed)).unwrap();
        assert_eq!(reference.total_rounds, rounds, "golden moved");
        for threads in [2usize, 4, 16] {
            let cfg = SimConfig::builder()
                .scheduler(SchedulerKind::Rescq)
                .engine_threads(threads)
                .seed(seed)
                .build();
            let mut r = simulate(&c, &cfg).unwrap();
            assert!(r.engine_threads >= 1);
            r.engine_threads = reference.engine_threads;
            assert_eq!(
                r, reference,
                "rz_heavy({qubits},{layers}) seed={seed} threads={threads} diverged"
            );
        }
    }
    // Compressed fabrics drive the preemption machinery; identical there too.
    let c = rz_heavy(8, 3);
    for threads in [2usize, 4] {
        let mk = |t: usize| {
            SimConfig::builder()
                .compression(1.0)
                .engine_threads(t)
                .seed(3)
                .build()
        };
        let reference = simulate(&c, &mk(1)).unwrap();
        let mut r = simulate(&c, &mk(threads)).unwrap();
        r.engine_threads = reference.engine_threads;
        assert_eq!(r, reference, "compressed run diverged at {threads} threads");
    }
}

#[test]
fn constrained_fabric_counters_are_wired() {
    // The ledger's counters flow into the report: compressed RESCQ runs
    // populate the wait-graph peak, and the static baseline reports its
    // (preemption-free) ledger accounting too.
    let c = rz_heavy(8, 3);
    let cfg = SimConfig::builder().compression(1.0).seed(3).build();
    let r = simulate(&c, &cfg).unwrap();
    assert!(r.counters.waitgraph_peak_edges > 0);
    let mut gcfg = cfg.clone();
    gcfg.scheduler = SchedulerKind::Greedy;
    let g = simulate(&c, &gcfg).unwrap();
    assert_eq!(g.counters.preemptions, 0, "static engines never preempt");
    assert_eq!(g.counters.preemptions_rejected_cycle, 0);
}

#[test]
fn dyadic_ladders_need_fewer_injections() {
    // T-gate ladders terminate after one injection; generic angles need ~2.
    let mut dyadic = Circuit::new(4);
    let mut generic = Circuit::new(4);
    for q in 0..4u32 {
        for _ in 0..8 {
            dyadic.t(q);
            dyadic.h(q); // prevent merging semantics confusion; H is cheap
            generic.rz(q, Angle::radians(0.377));
            generic.h(q);
        }
    }
    let cfg = config(SchedulerKind::Rescq, 23);
    let rd = simulate(&dyadic, &cfg).unwrap();
    let rg = simulate(&generic, &cfg).unwrap();
    let per_rz_d = rd.counters.injections as f64 / 32.0;
    let per_rz_g = rg.counters.injections as f64 / 32.0;
    assert!(per_rz_d <= 1.05, "T ladder used {per_rz_d} injections/gate");
    assert!(
        per_rz_g > 1.5 && per_rz_g < 2.6,
        "generic ladder used {per_rz_g} injections/gate (Eq. 1 says ≈2)"
    );
}

#[test]
fn harsh_error_rate_failure_injection() {
    // Force long preparation streaks: high p, small d. The engines must
    // still terminate with every gate executed.
    let c = rz_heavy(4, 2);
    for s in SchedulerKind::ALL {
        let cfg = SimConfig::builder()
            .scheduler(s)
            .distance(3)
            .physical_error_rate(5e-3)
            .calibration(PrepCalibration {
                c1: 40.0,
                c2: 6.0,
                rounds_round1: 5,
                rounds_round2: 5,
            })
            .seed(2)
            .build();
        let r = simulate(&c, &cfg).unwrap();
        assert_eq!(r.gates_executed, c.len());
        assert!(r.counters.preps_started >= r.counters.preps_succeeded);
    }
}

#[test]
fn k_policy_variants_run() {
    let c = rz_heavy(6, 3);
    for k in [
        KPolicy::Fixed(25),
        KPolicy::Fixed(200),
        KPolicy::Dynamic { max_concurrent: 2 },
    ] {
        let cfg = SimConfig::builder().k_policy(k).seed(4).build();
        let r = simulate(&c, &cfg).unwrap();
        assert!(r.k_used >= 1);
        assert!(r.tau_used >= 1);
        assert_eq!(r.gates_executed, c.len());
    }
}

#[test]
fn single_qubit_program() {
    let mut c = Circuit::new(1);
    c.rz(0, Angle::radians(1.0)).h(0).rz(0, Angle::radians(0.5));
    for s in SchedulerKind::ALL {
        let r = simulate(&c, &config(s, 8)).unwrap();
        assert_eq!(r.gates_executed, 3, "{s}");
    }
}

#[test]
fn prep_decoding_flag_adds_windows_and_never_speeds_up() {
    // ROADMAP follow-on: |mθ⟩ preparation verification is itself a decoded
    // measurement. With `decode_prep` every successful preparation submits a
    // window; under a slow decoder the makespan cannot shrink, and with the
    // flag off behaviour is bit-identical to the decoder-less baseline.
    let c = rz_heavy(5, 3);
    for s in SchedulerKind::ALL {
        let base = SimConfig::builder()
            .scheduler(s)
            .decoder(DecoderConfig::fixed(0.5))
            .seed(17)
            .build();
        let mut with_prep = base.clone();
        with_prep.decoder = with_prep.decoder.with_prep_decoding();
        let off = simulate(&c, &base).unwrap();
        let on = simulate(&c, &with_prep).unwrap();
        assert!(
            on.counters.decode_windows > off.counters.decode_windows,
            "{s}: prep windows must add decode traffic"
        );
        assert!(
            on.total_cycles() >= off.total_cycles(),
            "{s}: decoding preps cannot make the run faster ({} < {})",
            on.total_cycles(),
            off.total_cycles()
        );
        // Flag off stays bit-identical to a decoder-config round-trip.
        assert_eq!(off, simulate(&c, &base).unwrap());
    }
}

#[test]
fn prep_decoding_with_ideal_decoder_is_cycle_neutral() {
    // An ideal decoder answers in-round: enabling prep verification adds
    // windows to the accounting but cannot move any event.
    let c = rz_heavy(4, 2);
    let base = SimConfig::builder().seed(5).build();
    let mut with_prep = base.clone();
    with_prep.decoder = with_prep.decoder.with_prep_decoding();
    let off = simulate(&c, &base).unwrap();
    let on = simulate(&c, &with_prep).unwrap();
    assert_eq!(off.total_rounds, on.total_rounds);
    assert_eq!(off.counters.injections, on.counters.injections);
    assert!(on.counters.decode_windows > off.counters.decode_windows);
}

#[test]
fn idle_fraction_in_unit_range() {
    let c = rz_heavy(6, 3);
    for s in SchedulerKind::ALL {
        let r = simulate(&c, &config(s, 31)).unwrap();
        let idle = r.idle_fraction();
        assert!((0.0..=1.0).contains(&idle), "{s}: idle={idle}");
        assert!(idle > 0.0, "some idleness is inevitable");
    }
}
