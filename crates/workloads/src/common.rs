//! Shared helpers for the benchmark generators.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rescq_circuit::{Angle, Circuit, QubitId};

/// A seeded stream of "generic" rotation angles: uniformly distributed,
/// essentially never dyadic, so their RUS ladders follow Eq. 1's E = 2.
#[derive(Debug)]
pub struct AngleStream {
    rng: ChaCha8Rng,
}

impl AngleStream {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        AngleStream {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Next generic angle in `(0.05, π − 0.05)`.
    pub fn next_angle(&mut self) -> Angle {
        Angle::radians(self.rng.gen_range(0.05..(std::f64::consts::PI - 0.05)))
    }

    /// Next pair of qubit indices `a < b` below `n`.
    pub fn next_pair(&mut self, n: u32) -> (u32, u32) {
        let a = self.rng.gen_range(0..n);
        let mut b = self.rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        (a.min(b), a.max(b))
    }
}

/// Appends `Rx(θ) = H · Rz(θ) · H` (1 counted rotation).
pub fn rx(c: &mut Circuit, q: impl Into<QubitId>, theta: Angle) {
    rescq_circuit::transpile::rx(c, q, theta);
}

/// Appends `Rzz(θ)` (2 CNOTs + 1 rotation).
pub fn rzz(c: &mut Circuit, a: impl Into<QubitId>, b: impl Into<QubitId>, theta: Angle) {
    rescq_circuit::transpile::rzz(c, a, b, theta);
}

/// Appends a "u3-style" rotation block `Rz·H·Rz·H·Rz` (3 counted rotations,
/// the shape Qiskit produces for a generic single-qubit unitary in the
/// `{rz, h, x, cx}` basis).
pub fn u3_block(c: &mut Circuit, q: impl Into<QubitId>, angles: &mut AngleStream) {
    let q = q.into();
    c.rz(q, angles.next_angle());
    c.h(q);
    c.rz(q, angles.next_angle());
    c.h(q);
    c.rz(q, angles.next_angle());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_stream_deterministic() {
        let mut a = AngleStream::new(5);
        let mut b = AngleStream::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_angle(), b.next_angle());
        }
    }

    #[test]
    fn pairs_are_ordered_and_distinct() {
        let mut s = AngleStream::new(1);
        for _ in 0..100 {
            let (a, b) = s.next_pair(7);
            assert!(a < b);
            assert!(b < 7);
        }
    }

    #[test]
    fn u3_block_counts() {
        let mut c = Circuit::new(1);
        let mut s = AngleStream::new(2);
        u3_block(&mut c, 0, &mut s);
        assert_eq!(c.stats().rz, 3);
        assert_eq!(c.stats().h, 2);
    }
}
