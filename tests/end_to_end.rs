//! Cross-crate integration: Table 3 generation → mapping → scheduling →
//! simulation for every scheduler, with determinism and report sanity.

use rescq_repro::core::SchedulerKind;
use rescq_repro::sim::{simulate, SimConfig};

const SMALL_BENCHMARKS: &[&str] = &["VQE_n13", "wstate_n27", "qft_n18", "ising_n34"];

#[test]
fn every_scheduler_completes_every_small_benchmark() {
    for name in SMALL_BENCHMARKS {
        let circuit = rescq_repro::workloads::generate(name, 1).unwrap();
        for scheduler in SchedulerKind::ALL {
            let config = SimConfig::builder().scheduler(scheduler).seed(3).build();
            let report =
                simulate(&circuit, &config).unwrap_or_else(|e| panic!("{name}/{scheduler}: {e}"));
            assert_eq!(report.gates_executed, circuit.len(), "{name}/{scheduler}");
            assert!(report.total_cycles() > 0.0);
            assert!((0.0..=1.0).contains(&report.idle_fraction()));
        }
    }
}

#[test]
fn simulation_is_deterministic_across_repeats() {
    let circuit = rescq_repro::workloads::generate("gcm_n13", 1).unwrap();
    for scheduler in SchedulerKind::ALL {
        let config = SimConfig::builder().scheduler(scheduler).seed(11).build();
        let a = simulate(&circuit, &config).unwrap();
        let b = simulate(&circuit, &config).unwrap();
        assert_eq!(a, b, "{scheduler} is not deterministic");
    }
}

#[test]
fn uncompressed_benchmark_run_matches_pre_ledger_golden() {
    // Cross-crate pin of the reservation-ledger refactor's bit-identity
    // guarantee on an unconstrained fabric (golden from the PR 2 tree).
    let circuit = rescq_repro::workloads::generate("wstate_n27", 1).unwrap();
    let config = SimConfig::builder().seed(7).build();
    let report = simulate(&circuit, &config).unwrap();
    assert_eq!(report.total_rounds, 2391);
}

#[test]
fn sharded_engine_matches_the_golden_on_every_thread_count() {
    // The sharded-engine determinism contract pinned on a paper workload:
    // the same golden round count (and the full report) for 1, 2 and 4
    // engine threads, with 1-thread output matching the historical engine
    // exactly. Multi-thread runs go through the lock-free proposal-ring
    // handoff (serial runs bypass it), so this golden also pins the ring
    // path against the PR 4 numbers.
    let circuit = rescq_repro::workloads::generate("wstate_n27", 1).unwrap();
    let mk = |threads: usize| SimConfig::builder().seed(7).engine_threads(threads).build();
    let reference = simulate(&circuit, &mk(1)).unwrap();
    assert_eq!(reference.total_rounds, 2391, "1-thread golden moved");
    for threads in [2usize, 4] {
        let mut r = simulate(&circuit, &mk(threads)).unwrap();
        assert_eq!(r.total_rounds, 2391, "{threads}-thread run diverged");
        r.engine_threads = reference.engine_threads;
        assert_eq!(r, reference, "full report diverged at {threads} threads");
    }
}

#[test]
fn stall_breaker_retargets_lost_current_angle_states() {
    // Regression: on factory_n12 at 25% compression, seed 8, the stall
    // breaker used to discard a task's only |mθ⟩ holder *after* its sibling
    // queue entries had been rewritten to the |m2θ⟩ correction state —
    // nothing retargeted them back, so every restarted preparation
    // reproduced the stale correction angle and the run livelocked through
    // the stall breaker until the watchdog fired. The breaker now retargets
    // surviving entries to the ladder's current angle whenever it discards
    // holders. (Class-blind run: the priority lattice is not involved.)
    let circuit = rescq_repro::workloads::generate("factory_n12", 1).unwrap();
    let config = SimConfig::builder()
        .compression(0.25)
        .seed(8)
        .max_cycles(300_000)
        .build();
    let report = simulate(&circuit, &config).expect("run must terminate");
    assert_eq!(report.gates_executed, circuit.len());
}

#[test]
fn rotation_counters_track_eq1() {
    // Generic angles average ≈2 injections; the engine's counters must
    // reflect the RUS ladder (Eq. 1) within Monte-Carlo noise.
    let circuit = rescq_repro::workloads::generate("gcm_n13", 1).unwrap();
    let rz = circuit.stats().rz as f64;
    let config = SimConfig::builder().seed(5).build();
    let report = simulate(&circuit, &config).unwrap();
    let per_rz = report.counters.injections as f64 / rz;
    assert!(
        (1.7..2.3).contains(&per_rz),
        "observed {per_rz:.2} injections per rotation"
    );
    // Roughly half of injections fail.
    let fail = report.counters.injection_failures as f64 / report.counters.injections as f64;
    assert!((0.4..0.6).contains(&fail), "failure rate {fail:.2}");
}

#[test]
fn artifact_round_trip_through_text_format() {
    let circuit = rescq_repro::workloads::generate("wstate_n27", 1).unwrap();
    let text = rescq_repro::circuit::write_circuit(&circuit);
    let parsed = rescq_repro::circuit::parse_circuit(&text, Some(27)).unwrap();
    assert_eq!(parsed.gates().len(), circuit.gates().len());
    let a = simulate(&circuit, &SimConfig::default()).unwrap();
    let b = simulate(&parsed, &SimConfig::default()).unwrap();
    assert_eq!(a.total_rounds, b.total_rounds);
}

#[test]
fn distance_sweep_reduces_cycles() {
    // §5.2.1: execution time improves as d increases (more measurement
    // rounds per cycle ⇒ faster RUS attempts in cycle units).
    let circuit = rescq_repro::workloads::generate("VQE_n13", 1).unwrap();
    let mut last = f64::INFINITY;
    for d in [3u32, 7, 13] {
        let config = SimConfig::builder().distance(d).seed(9).build();
        let mean: f64 = (0..5)
            .map(|i| {
                let mut c = config.clone();
                c.seed = 9 + i;
                simulate(&circuit, &c).unwrap().total_cycles()
            })
            .sum::<f64>()
            / 5.0;
        assert!(mean < last, "d={d}: {mean:.0} should be below {last:.0}");
        last = mean;
    }
}
