//! Regenerates Table 3: benchmark gate counts, paper vs our generators.

use rescq_bench::{experiments, print_header};

fn main() {
    print_header(
        "Table 3 — benchmark suite",
        "paper (#Rz, #CNOT) vs generated; ✓ = exact match",
    );
    println!(
        "{:<28} {:>6} {:>9} {:>9} {:>11} {:>11}  match",
        "benchmark", "qubits", "paper Rz", "paper CX", "gen Rz", "gen CX"
    );
    let rows = experiments::table3();
    let mut exact = 0;
    for r in &rows {
        let ok = r.paper == r.generated;
        exact += usize::from(ok);
        println!(
            "{:<28} {:>6} {:>9} {:>9} {:>11} {:>11}  {}",
            format!("{} ({})", r.name, r.suite),
            r.qubits,
            r.paper.0,
            r.paper.1,
            r.generated.0,
            r.generated.1,
            if ok { "✓" } else { "≈" }
        );
    }
    println!("{exact}/{} rows exact", rows.len());
}
