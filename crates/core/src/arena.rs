//! Steady-state allocation-free scratch storage for the hot cycle loop.
//!
//! The realtime engine's dispatch loop runs once per event and several times
//! per cycle; any `Vec::new`/`clone` inside it shows up directly in the
//! cycles/s trajectory (BENCH_seed → BENCH_7 regressed 246→328 ms on
//! ising_n420 largely from such churn). This module provides the two
//! building blocks the engine uses to reach zero heap allocations at steady
//! state:
//!
//! - [`VecPool`]: a free-list of reusable `Vec<T>` buffers. Task bodies
//!   borrow a vector when a task is scheduled and return it when the task
//!   completes, so after warm-up every "fresh" vector is a recycled one
//!   with its old capacity intact.
//! - [`Bitset`]: a bit-packed membership set over dense `u32`/`usize` ids
//!   (`u64` words, word-parallel scans). Replaces per-task `HashSet` probes
//!   in stall attribution and reachability walks; `clear` is a word-fill,
//!   not a rehash.
//!
//! Neither type ever shrinks: capacity plateaus at the workload's high-water
//! mark, which is exactly the arena lifetime rule documented in
//! ARCHITECTURE.md ("Hot path memory model").

/// A free-list pool of reusable `Vec<T>` buffers.
///
/// [`VecPool::take`] pops a cleared, capacity-retaining vector (or a fresh
/// empty one the first time); [`VecPool::put`] returns it. At steady state —
/// once as many vectors are pooled as are ever simultaneously live — `take`
/// never allocates.
///
/// ```
/// use rescq_core::VecPool;
///
/// let mut pool: VecPool<u32> = VecPool::new();
/// let mut v = pool.take();
/// v.extend([1, 2, 3]);
/// let cap = v.capacity();
/// pool.put(v);
/// let v2 = pool.take(); // same buffer, cleared
/// assert!(v2.is_empty());
/// assert_eq!(v2.capacity(), cap);
/// ```
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool { free: Vec::new() }
    }

    /// Pops a cleared buffer from the pool, or a fresh empty one.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; its contents are dropped, its capacity
    /// kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A bit-packed membership set over dense ids, stored as `u64` words.
///
/// Operations never shrink the word vector; [`Bitset::clear`] zeroes the
/// existing words in place. Use [`Bitset::reserve`] up front (e.g. with the
/// circuit's task count) so steady-state inserts never grow.
///
/// ```
/// use rescq_core::Bitset;
///
/// let mut s = Bitset::new();
/// s.reserve(128);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3) && s.contains(64) && !s.contains(4));
/// s.remove(3);
/// assert!(!s.contains(3));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// An empty set.
    pub fn new() -> Self {
        Bitset { words: Vec::new() }
    }

    /// Ensures ids `0..n` can be inserted without reallocating.
    pub fn reserve(&mut self, n: usize) {
        let need = n.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Inserts `id`, growing the word vector if needed.
    pub fn insert(&mut self, id: usize) {
        let w = id / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (id % 64);
    }

    /// Removes `id` (no-op if absent).
    pub fn remove(&mut self, id: usize) {
        if let Some(w) = self.words.get_mut(id / 64) {
            *w &= !(1u64 << (id % 64));
        }
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Zeroes every word in place (capacity retained).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The packed words (LSB of word 0 is id 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Iterates the set bits of packed `u64` words in ascending id order.
///
/// This is the word-parallel scan primitive: callers test 64 ids per
/// word-compare and only pay per-bit work for ids that are actually set.
///
/// ```
/// use rescq_core::for_each_set_bit;
///
/// let words = [0b1010u64, 1u64];
/// let mut ids = Vec::new();
/// for_each_set_bit(&words, |id| ids.push(id));
/// assert_eq!(ids, [1, 3, 64]);
/// ```
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            f(wi * 64 + bit);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pool_recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.put(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = Bitset::new();
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(200);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(200));
        assert!(!s.contains(1) && !s.contains(65) && !s.contains(199));
        s.remove(64);
        assert!(!s.contains(64));
        s.remove(1000); // absent: no-op, no panic
        s.clear();
        assert!(!s.contains(0) && !s.contains(200));
    }

    #[test]
    fn bitset_reserve_prevents_growth() {
        let mut s = Bitset::new();
        s.reserve(500);
        let words_ptr = s.words().as_ptr();
        for id in 0..500 {
            s.insert(id);
        }
        assert_eq!(s.words().as_ptr(), words_ptr);
        assert_eq!(s.words().len(), 8);
    }

    #[test]
    fn set_bit_iteration_is_ascending_and_complete() {
        let mut s = Bitset::new();
        let ids = [0usize, 5, 63, 64, 127, 128, 300];
        for &id in &ids {
            s.insert(id);
        }
        let mut seen = Vec::new();
        for_each_set_bit(s.words(), |id| seen.push(id));
        assert_eq!(seen, ids);
    }
}
