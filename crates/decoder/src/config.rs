//! Decoder configuration shared by the CLI, the sim engines and the benches.

use std::fmt;
use std::str::FromStr;

/// Which decoder model to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecoderKind {
    /// Zero-latency decoding: feed-forward outcomes are visible the round
    /// they are measured. This is the default and reproduces the original
    /// (decoder-less) simulation results exactly.
    #[default]
    Ideal,
    /// Union-find-style decoder with a constant reaction latency plus a
    /// per-syndrome-round cost, one sequential decode pipeline per tile.
    Fixed,
    /// Triage-style adaptive parallel-window decoder: `W` workers drain a
    /// bounded syndrome ring buffer, with throughput scaling up as the ring
    /// fills (occupancy-adaptive window batching).
    Adaptive,
    /// A real union-find syndrome decoder: every window samples a seeded
    /// error configuration on the tile's detector graph, decodes it with
    /// DSU cluster growth + peeling, and reports a latency derived from the
    /// work the decode actually performed.
    UnionFind,
}

impl fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DecoderKind::Ideal => "ideal",
            DecoderKind::Fixed => "fixed",
            DecoderKind::Adaptive => "adaptive",
            DecoderKind::UnionFind => "union_find",
        })
    }
}

impl FromStr for DecoderKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ideal" | "none" => Ok(DecoderKind::Ideal),
            "fixed" => Ok(DecoderKind::Fixed),
            "adaptive" | "triage" => Ok(DecoderKind::Adaptive),
            "union_find" | "union-find" | "uf" => Ok(DecoderKind::UnionFind),
            other => Err(format!(
                "unknown decoder `{other}` (expected ideal | fixed | adaptive | union_find)"
            )),
        }
    }
}

/// Full decoder configuration.
///
/// The default (`ideal`) is invisible: every window decodes instantly, so all
/// pre-existing seeded simulation outputs are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Which model to use.
    pub kind: DecoderKind,
    /// Syndrome rounds decoded per wall-clock measurement round
    /// (`fixed`/`adaptive`). Values below 1 mean the decoder cannot keep up
    /// with the substrate and backlog grows on dense windows.
    pub throughput: f64,
    /// Constant reaction latency in rounds added to every window
    /// (`fixed`/`adaptive`).
    pub base_latency: u64,
    /// Number of parallel decode workers (`adaptive` only).
    pub workers: usize,
    /// Capacity of the bounded syndrome ring buffer (`adaptive` only).
    /// Submissions past capacity stall until a worker frees a slot.
    pub ring_capacity: usize,
    /// Route `|mθ⟩` preparation-verification outcomes through the decoder
    /// too (in hardware the verification is itself a decoded measurement).
    /// Off by default so existing runs stay bit-identical; when on, every
    /// completed preparation submits a one-cycle syndrome window and the
    /// state only becomes usable once that window is decoded.
    pub decode_prep: bool,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            kind: DecoderKind::Ideal,
            throughput: 1.0,
            base_latency: 1,
            workers: 4,
            ring_capacity: 64,
            decode_prep: false,
        }
    }
}

impl DecoderConfig {
    /// An ideal (zero-latency) decoder.
    pub fn ideal() -> Self {
        DecoderConfig::default()
    }

    /// A fixed-latency decoder with the given throughput (syndrome rounds
    /// decoded per wall-clock round).
    pub fn fixed(throughput: f64) -> Self {
        DecoderConfig {
            kind: DecoderKind::Fixed,
            throughput,
            ..DecoderConfig::default()
        }
    }

    /// A Triage-style adaptive decoder with `workers` parallel workers.
    pub fn adaptive(throughput: f64, workers: usize) -> Self {
        DecoderConfig {
            kind: DecoderKind::Adaptive,
            throughput,
            workers: workers.max(1),
            ..DecoderConfig::default()
        }
    }

    /// A real union-find syndrome decoder converting decode work to rounds
    /// at `throughput` work units per round (the engines supply the error
    /// channel: physical error rate and seed).
    pub fn union_find(throughput: f64) -> Self {
        DecoderConfig {
            kind: DecoderKind::UnionFind,
            throughput,
            ..DecoderConfig::default()
        }
    }

    /// The same configuration with preparation-verification decoding on.
    pub fn with_prep_decoding(mut self) -> Self {
        self.decode_prep = true;
        self
    }
}

impl fmt::Display for DecoderConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DecoderKind::Ideal => write!(f, "ideal")?,
            DecoderKind::Fixed => {
                write!(
                    f,
                    "fixed(tp={}, base={})",
                    self.throughput, self.base_latency
                )?;
            }
            DecoderKind::Adaptive => write!(
                f,
                "adaptive(tp={}, base={}, W={}, ring={})",
                self.throughput, self.base_latency, self.workers, self.ring_capacity
            )?,
            DecoderKind::UnionFind => {
                write!(
                    f,
                    "union_find(tp={}, base={})",
                    self.throughput, self.base_latency
                )?;
            }
        }
        if self.decode_prep {
            write!(f, "+prep")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ideal() {
        let d = DecoderConfig::default();
        assert_eq!(d.kind, DecoderKind::Ideal);
        assert!(!d.decode_prep);
    }

    #[test]
    fn prep_decoding_opt_in() {
        let d = DecoderConfig::fixed(0.5).with_prep_decoding();
        assert!(d.decode_prep);
        assert!(d.to_string().ends_with("+prep"));
        assert!(!DecoderConfig::fixed(0.5).to_string().contains("+prep"));
    }

    #[test]
    fn kind_parses_aliases() {
        assert_eq!("ideal".parse::<DecoderKind>().unwrap(), DecoderKind::Ideal);
        assert_eq!("uf".parse::<DecoderKind>().unwrap(), DecoderKind::UnionFind);
        assert_eq!(
            "union-find".parse::<DecoderKind>().unwrap(),
            DecoderKind::UnionFind
        );
        assert_eq!(
            "TRIAGE".parse::<DecoderKind>().unwrap(),
            DecoderKind::Adaptive
        );
        assert!("warp".parse::<DecoderKind>().is_err());
    }

    #[test]
    fn display_round_trips_kind() {
        for k in [
            DecoderKind::Ideal,
            DecoderKind::Fixed,
            DecoderKind::Adaptive,
            DecoderKind::UnionFind,
        ] {
            assert_eq!(k.to_string().parse::<DecoderKind>().unwrap(), k);
        }
    }
}
