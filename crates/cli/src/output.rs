//! CSV and log emission for experiment results.

use rescq_sim::{ExecutionReport, LatencyHistogram};
use std::io::Write;
use std::path::Path;

/// Writes per-run reports as CSV (one row per seed).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_reports_csv(path: &Path, reports: &[ExecutionReport]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    // The union-find decode-work counters sit LAST among the
    // schedule-derived columns (strip-last-column convention: newest
    // additions go last, so older tooling keeps its column positions), and
    // `engine_threads` is deliberately the very LAST column overall: it is
    // the one field that varies with the execution resource rather than the
    // schedule, so determinism checks (CI's engine-thread smoke) can strip
    // it with a single `cut` and byte-compare everything else. Stall and
    // decode-work columns are sim-time derived — NO wall-clock ever enters
    // this file, so traced and untraced runs produce byte-identical CSVs.
    writeln!(
        f,
        "scheduler,seed,distance,total_cycles,idle_fraction,gates,injections,injection_failures,preps_started,preps_cancelled,edge_rotations,mst_computations,k,tau,decode_windows,decoder_stall_cycles,decoder_peak_backlog,preemptions,preemptions_rejected_cycle,preemptions_cross_shard,claims_cross_shard,waitgraph_peak_edges,preemptions_class,preempt_speculative,preempt_compute,preempt_injection,preempt_factory,stall_ancilla,stall_decoder,stall_route,stall_class,decode_defects,decode_growth_steps,decode_failures,engine_threads"
    )?;
    for r in reports {
        writeln!(
            f,
            "{},{},{},{:.3},{:.4},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.scheduler,
            r.seed,
            r.distance,
            r.total_cycles(),
            r.idle_fraction(),
            r.gates_executed,
            r.counters.injections,
            r.counters.injection_failures,
            r.counters.preps_started,
            r.counters.preps_cancelled,
            r.counters.edge_rotations,
            r.counters.mst_computations,
            r.k_used,
            r.tau_used,
            r.counters.decode_windows,
            r.decoder_stall_cycles(),
            r.counters.decoder_peak_backlog,
            r.counters.preemptions,
            r.counters.preemptions_rejected_cycle,
            r.counters.preemptions_cross_shard,
            r.counters.claims_cross_shard,
            r.counters.waitgraph_peak_edges,
            r.counters.preemptions_class,
            r.counters.preemptions_by_class[0],
            r.counters.preemptions_by_class[1],
            r.counters.preemptions_by_class[2],
            r.counters.preemptions_by_class[3],
            r.counters.stall_ancilla_cycles,
            r.counters.stall_decoder_cycles,
            r.counters.stall_route_cycles,
            r.counters.stall_class_cycles,
            r.counters.decode_defects,
            r.counters.decode_growth_steps,
            r.counters.decode_failures,
            r.engine_threads,
        )?;
    }
    Ok(())
}

/// Writes a latency histogram as CSV (`latency_cycles,count`).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_histogram_csv(path: &Path, hist: &LatencyHistogram) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "latency_cycles,count")?;
    for (lat, n) in hist.iter() {
        writeln!(f, "{lat},{n}")?;
    }
    Ok(())
}

/// Renders a one-line textual summary of a report.
pub fn summarize(r: &ExecutionReport) -> String {
    let mut s = format!(
        "{} seed={}: {:.0} cycles, idle {:.0}%, {} injections ({} failed), {} preps ({} reclaimed), {} edge rotations",
        r.scheduler,
        r.seed,
        r.total_cycles(),
        r.idle_fraction() * 100.0,
        r.counters.injections,
        r.counters.injection_failures,
        r.counters.preps_started,
        r.counters.preps_cancelled,
        r.counters.edge_rotations,
    );
    if r.counters.decoder_stall_rounds > 0 {
        s.push_str(&format!(
            ", decoder stalls {:.0}cy (backlog ≤{})",
            r.decoder_stall_cycles(),
            r.counters.decoder_peak_backlog,
        ));
    }
    if r.counters.preemptions > 0 || r.counters.preemptions_rejected_cycle > 0 {
        s.push_str(&format!(
            ", {} preemptions ({} cycle-rejected)",
            r.counters.preemptions, r.counters.preemptions_rejected_cycle,
        ));
        if r.counters.preemptions_class > 0 {
            s.push_str(&format!(", {} class-won", r.counters.preemptions_class));
        }
    }
    if r.stall_cycles() > 0 {
        s.push_str(&format!(
            ", stalls {}cy (ancilla {}, decoder {}, route {}, class {})",
            r.stall_cycles(),
            r.counters.stall_ancilla_cycles,
            r.counters.stall_decoder_cycles,
            r.counters.stall_route_cycles,
            r.counters.stall_class_cycles,
        ));
    }
    if r.phase_nanos.iter().any(|&ns| ns > 0) {
        let ms = |ns: u64| ns as f64 / 1e6;
        s.push_str(&format!(
            ", phases sched {:.1}ms / start {:.1}ms / propose {:.1}ms / commit {:.1}ms",
            ms(r.phase_nanos[0]),
            ms(r.phase_nanos[1]),
            ms(r.phase_nanos[2]),
            ms(r.phase_nanos[3]),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescq_circuit::{Angle, Circuit};
    use rescq_sim::{simulate, SimConfig};

    fn sample_report() -> ExecutionReport {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, Angle::T);
        simulate(&c, &SimConfig::default()).unwrap()
    }

    #[test]
    fn csv_round_trip_shape() {
        let dir = std::env::temp_dir().join("rescq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.csv");
        let r = sample_report();
        write_reports_csv(&path, std::slice::from_ref(&r)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("scheduler,seed"));
        assert!(text.contains("rescq"));

        let hpath = dir.join("hist.csv");
        write_histogram_csv(&hpath, &r.cnot_latency).unwrap();
        let htext = std::fs::read_to_string(&hpath).unwrap();
        assert!(htext.starts_with("latency_cycles,count"));
    }

    #[test]
    fn summary_mentions_key_counters() {
        let s = summarize(&sample_report());
        assert!(s.contains("cycles"));
        assert!(s.contains("injections"));
    }
}
