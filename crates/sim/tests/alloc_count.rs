//! Allocation-regression harness: a counting [`GlobalAlloc`] shim wraps the
//! system allocator, and a cycle probe snapshots the running allocation count
//! at every fabric cycle tick. The steady-state contract is that the dispatch
//! loop recycles everything — event slots, candidate lists, route scratch,
//! ledger queue nodes — so whole cycles pass without a single heap allocation.
//!
//! The test pins a long *streak* of zero-allocation cycles rather than
//! demanding every cycle be clean: the latency histogram is BTreeMap-backed
//! and legitimately allocates the first time a novel latency bucket appears,
//! and warm-up cycles grow the pools to their high-water marks. Once warm,
//! the loop must be allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rescq_core::SchedulerKind;
use rescq_sim::{simulate_with_cycle_probe, SimConfig};

/// Counts every `alloc`/`realloc` passed through to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Diagnostic trap: while armed, the next allocation prints a backtrace
/// (one-shot; capturing the backtrace itself allocates, which is safe
/// because the flag is already cleared). Armed past warm-up so a failing
/// run names the offending call site instead of just a count.
static ARM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn trap(kind: &str, size: usize) {
    if ARM.swap(false, Ordering::Relaxed) {
        eprintln!(
            "{kind} TRAP size={size}:\n{}",
            std::backtrace::Backtrace::force_capture()
        );
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trap("ALLOC", layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trap("REALLOC", new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Fixed-capacity per-cycle snapshot store: the probe itself must not
/// allocate, or it would pollute the very counts it is sampling.
const MAX_CYCLES: usize = 4096;
static SNAPSHOTS: [AtomicU64; MAX_CYCLES] = {
    // The const is only a repeat-initializer for the static array; each
    // array element is its own atomic, so the interior-mutability lint's
    // "every use sees a fresh copy" hazard does not apply.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; MAX_CYCLES]
};
static SNAPSHOT_COUNT: AtomicU64 = AtomicU64::new(0);

#[test]
fn steady_state_cycles_allocate_nothing_on_ising_n34() {
    // Eight Trotter steps of ising_n34: one step finishes in ~40 cycles,
    // too short to demonstrate a steady state past warm-up.
    let mut circuit = rescq_circuit::Circuit::new(34);
    for step in 0..8 {
        for gate in rescq_workloads::families::ising::generate(34, 1 + step).gates() {
            circuit.push(*gate);
        }
    }
    let config = SimConfig::builder()
        .scheduler(SchedulerKind::Rescq)
        .seed(1)
        .build();

    let probe = |cycle: u64| {
        // Arm the one-shot backtrace trap well past warm-up: if the steady
        // state regresses, the failure output names the allocation site.
        if cycle == 200 {
            ARM.store(true, Ordering::Relaxed);
        }
        let i = cycle as usize;
        if i < MAX_CYCLES {
            SNAPSHOTS[i].store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            SNAPSHOT_COUNT.fetch_max(cycle + 1, Ordering::Relaxed);
        }
    };
    let report = simulate_with_cycle_probe(&circuit, &config, &probe).unwrap();
    // Disarm: allocations after the run (assert formatting, harness
    // teardown) are not the engine's.
    ARM.store(false, Ordering::Relaxed);
    assert_eq!(report.gates_executed, circuit.len());

    let n = SNAPSHOT_COUNT.load(Ordering::Relaxed) as usize;
    assert!(n >= 60, "expected a longer run, saw only {n} cycle ticks");

    // Per-cycle allocation deltas between consecutive ticks.
    let mut best_streak = 0usize;
    let mut streak = 0usize;
    let mut zero_cycles = 0usize;
    for i in 1..n {
        let delta = SNAPSHOTS[i].load(Ordering::Relaxed) - SNAPSHOTS[i - 1].load(Ordering::Relaxed);
        if delta == 0 {
            streak += 1;
            zero_cycles += 1;
            best_streak = best_streak.max(streak);
        } else {
            streak = 0;
        }
    }

    // The pinned regression contract: once pools and histogram buckets are
    // warm, at least 50 consecutive cycles run with zero heap allocations.
    assert!(
        best_streak >= 50,
        "longest zero-allocation streak was {best_streak} of {n} cycles \
         ({zero_cycles} clean in total) — the hot loop has started allocating"
    );
}
