//! # rescq-lattice
//!
//! The surface-code fabric substrate for the RESCQ reproduction: tiles with
//! X/Z boundary orientation ([`Orientation`]), the rectangular [`Grid`], STAR-block
//! [`Layout`]s with §5.3's seeded grid compression, the ancilla routing
//! [`AncillaGraph`], and the incrementally-maintained [`IncrementalMst`]
//! (paper §4.2 / §5.4.1).
//!
//! # Quick example
//!
//! ```
//! use rescq_lattice::{AncillaGraph, IncrementalMst, Layout, LayoutKind};
//!
//! let mut layout = Layout::new(LayoutKind::Star2x2, 16).unwrap();
//! layout.compress(0.5, 42);
//! assert!(layout.is_routable());
//!
//! let graph = AncillaGraph::from_grid(layout.grid());
//! let edges: Vec<_> = graph.edges().iter().map(|&(a, b)| (a, b, 0)).collect();
//! let mst = IncrementalMst::new(graph.len(), &edges);
//! assert_eq!(mst.tree_size(), graph.len() - 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod grid;
mod layout;
mod mst;
mod tile;

pub use graph::{ancilla_network_connected, AncillaGraph, AncillaIndex, UnionFind};
pub use grid::Grid;
pub use layout::{DataAdjacency, Layout, LayoutError, LayoutKind};
pub use mst::{EdgeId, IncrementalMst, NodeId, TreePathScratch};
pub use tile::{Corner, EdgeType, Orientation, Side, TileId, TileKind};
