//! Tiles of the surface-code fabric and their boundary (edge) geometry.
//!
//! Each logical patch (tile) of the rotated surface code has four boundaries:
//! two `X` edges and two `Z` edges on opposite sides (paper Fig 1a/2). In the
//! *standard* orientation the horizontal boundaries (north/south sides) are
//! `Z` edges and the vertical boundaries (east/west) are `X` edges, matching
//! Fig 2's caption. A Hadamard or an edge-rotation gate swaps the roles
//! ([`Orientation::flipped`]).

use rescq_circuit::QubitId;
use std::fmt;

/// Index of a tile within a [`crate::Grid`] (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl TileId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One of the four sides of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Towards decreasing row (up).
    North,
    /// Towards increasing column (right).
    East,
    /// Towards increasing row (down).
    South,
    /// Towards decreasing column (left).
    West,
}

impl Side {
    /// All four sides.
    pub const ALL: [Side; 4] = [Side::North, Side::East, Side::South, Side::West];

    /// The opposite side.
    pub fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::West => Side::East,
        }
    }

    /// Whether the side's boundary runs horizontally (north/south sides).
    pub fn is_horizontal_boundary(self) -> bool {
        matches!(self, Side::North | Side::South)
    }

    /// Column/row delta of the neighbouring tile across this side.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Side::North => (0, -1),
            Side::East => (1, 0),
            Side::South => (0, 1),
            Side::West => (-1, 0),
        }
    }
}

/// A diagonal corner direction (used for diagonal prep ancillas, Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Up-right.
    NorthEast,
    /// Down-right.
    SouthEast,
    /// Down-left.
    SouthWest,
    /// Up-left.
    NorthWest,
}

impl Corner {
    /// All four corners.
    pub const ALL: [Corner; 4] = [
        Corner::NorthEast,
        Corner::SouthEast,
        Corner::SouthWest,
        Corner::NorthWest,
    ];

    /// Column/row delta of the diagonal neighbour.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Corner::NorthEast => (1, -1),
            Corner::SouthEast => (1, 1),
            Corner::SouthWest => (-1, 1),
            Corner::NorthWest => (-1, -1),
        }
    }

    /// The two sides whose neighbours are edge-adjacent to both the tile and
    /// this diagonal neighbour (the candidate helper positions).
    pub fn adjacent_sides(self) -> [Side; 2] {
        match self {
            Corner::NorthEast => [Side::North, Side::East],
            Corner::SouthEast => [Side::South, Side::East],
            Corner::SouthWest => [Side::South, Side::West],
            Corner::NorthWest => [Side::North, Side::West],
        }
    }
}

/// The boundary type of a tile edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeType {
    /// `X` boundary — CNOT targets and CNOT-style injection attach here.
    X,
    /// `Z` boundary — CNOT controls and ZZ-style injection attach here.
    Z,
}

impl EdgeType {
    /// The other edge type.
    pub fn opposite(self) -> EdgeType {
        match self {
            EdgeType::X => EdgeType::Z,
            EdgeType::Z => EdgeType::X,
        }
    }
}

/// Orientation of a data patch: which sides carry the `Z` edges.
///
/// A Hadamard swaps the logical X/Z boundaries; an edge-rotation gate
/// physically rotates the patch. Both are modelled as a flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// `Z` edges on the horizontal (north/south) boundaries — Fig 2's layout.
    #[default]
    Standard,
    /// `Z` edges on the vertical (east/west) boundaries.
    Rotated,
}

impl Orientation {
    /// The boundary type exposed on `side` under this orientation.
    pub fn edge_at(self, side: Side) -> EdgeType {
        match (self, side.is_horizontal_boundary()) {
            (Orientation::Standard, true) | (Orientation::Rotated, false) => EdgeType::Z,
            _ => EdgeType::X,
        }
    }

    /// Sides exposing edges of type `edge` under this orientation.
    pub fn sides_with(self, edge: EdgeType) -> [Side; 2] {
        match (self, edge) {
            (Orientation::Standard, EdgeType::Z) | (Orientation::Rotated, EdgeType::X) => {
                [Side::North, Side::South]
            }
            _ => [Side::East, Side::West],
        }
    }

    /// The orientation after a Hadamard or edge rotation.
    #[must_use]
    pub fn flipped(self) -> Orientation {
        match self {
            Orientation::Standard => Orientation::Rotated,
            Orientation::Rotated => Orientation::Standard,
        }
    }
}

/// What occupies a tile of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// A data patch holding the given program qubit.
    Data(QubitId),
    /// A logical ancilla tile: routing, prep, helper roles.
    Ancilla,
    /// Physically absent (removed by compression or outside the block map).
    Void,
}

impl TileKind {
    /// Whether the tile is an ancilla.
    pub fn is_ancilla(self) -> bool {
        matches!(self, TileKind::Ancilla)
    }

    /// Whether the tile holds a data qubit.
    pub fn is_data(self) -> bool {
        matches!(self, TileKind::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_orientation_matches_fig2() {
        let o = Orientation::Standard;
        assert_eq!(o.edge_at(Side::North), EdgeType::Z);
        assert_eq!(o.edge_at(Side::South), EdgeType::Z);
        assert_eq!(o.edge_at(Side::East), EdgeType::X);
        assert_eq!(o.edge_at(Side::West), EdgeType::X);
    }

    #[test]
    fn flip_swaps_edges() {
        let o = Orientation::Standard.flipped();
        assert_eq!(o.edge_at(Side::North), EdgeType::X);
        assert_eq!(o.edge_at(Side::East), EdgeType::Z);
        assert_eq!(o.flipped(), Orientation::Standard);
    }

    #[test]
    fn sides_with_are_consistent() {
        for o in [Orientation::Standard, Orientation::Rotated] {
            for e in [EdgeType::X, EdgeType::Z] {
                for s in o.sides_with(e) {
                    assert_eq!(o.edge_at(s), e);
                }
            }
        }
    }

    #[test]
    fn corners_and_sides() {
        assert_eq!(Side::North.opposite(), Side::South);
        assert_eq!(
            Corner::NorthEast.adjacent_sides(),
            [Side::North, Side::East]
        );
        let (dx, dy) = Corner::SouthWest.delta();
        assert_eq!((dx, dy), (-1, 1));
    }
}
