//! Shared scheduling types: task identifiers, lattice-surgery gate costs, and
//! the scheduler selector.

use std::fmt;

/// Identifier of a scheduled gate instance (a *task*) within one simulation.
///
/// Tasks are numbered in scheduling order, which makes queue seniority
/// globally consistent (§4.1: "the priority of the gates is decided by
/// seniority").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Lattice-surgery costs in cycles (paper Fig 2, Fig 4, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurgeryCosts {
    /// CNOT via merge/split: 2 cycles.
    pub cnot_cycles: u32,
    /// Edge rotation to expose a boundary: 3 cycles.
    pub edge_rotation_cycles: u32,
    /// Transversal Hadamard (boundary swap is tracked as orientation): 1 cycle.
    pub hadamard_cycles: u32,
    /// ZZ injection (Fig 6a): 1 cycle.
    pub zz_injection_cycles: u32,
    /// CNOT injection (Fig 6b): 2 cycles.
    pub cnot_injection_cycles: u32,
}

impl Default for SurgeryCosts {
    fn default() -> Self {
        SurgeryCosts {
            cnot_cycles: 2,
            edge_rotation_cycles: 3,
            hadamard_cycles: 1,
            zz_injection_cycles: 1,
            cnot_injection_cycles: 2,
        }
    }
}

/// Which scheduler drives the execution (paper §5.1's three schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The realtime scheduler of this paper (§4).
    #[default]
    Rescq,
    /// Static greedy shortest-path baseline \[18\], layer-synchronized, naive
    /// single-ancilla Rz protocol.
    Greedy,
    /// Static AutoBraid baseline \[16\]: distance-sorted edge-disjoint routing
    /// within each layer, naive Rz protocol.
    Autobraid,
}

impl SchedulerKind {
    /// All schedulers, in the order the paper's figures list them.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Greedy,
        SchedulerKind::Autobraid,
        SchedulerKind::Rescq,
    ];

    /// Whether this is a static (layer-synchronized) baseline.
    pub fn is_static(self) -> bool {
        !matches!(self, SchedulerKind::Rescq)
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchedulerKind::Rescq => "rescq",
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::Autobraid => "autobraid",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rescq" => Ok(SchedulerKind::Rescq),
            "greedy" => Ok(SchedulerKind::Greedy),
            "autobraid" => Ok(SchedulerKind::Autobraid),
            other => Err(format!("unknown scheduler `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_match_paper() {
        let c = SurgeryCosts::default();
        assert_eq!(c.cnot_cycles, 2);
        assert_eq!(c.edge_rotation_cycles, 3);
        assert_eq!(c.zz_injection_cycles, 1);
        assert_eq!(c.cnot_injection_cycles, 2);
    }

    #[test]
    fn scheduler_parsing_round_trips() {
        for k in SchedulerKind::ALL {
            let parsed: SchedulerKind = k.to_string().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("quantum".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn staticness() {
        assert!(!SchedulerKind::Rescq.is_static());
        assert!(SchedulerKind::Greedy.is_static());
        assert!(SchedulerKind::Autobraid.is_static());
    }
}
