//! The decode backlog: in-flight syndrome windows, tracked per tile.

use std::collections::BTreeMap;

/// Identifier of a submitted syndrome window, returned by the runtime on
/// submission and passed back on retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowId(pub u64);

/// One syndrome window awaiting (or undergoing) decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyndromeWindow {
    /// Window identifier.
    pub id: WindowId,
    /// Ancilla/tile index the syndrome data came from.
    pub tile: u32,
    /// Number of measurement rounds of syndrome data in the window.
    pub rounds: u32,
    /// Round at which the window was submitted to the decoder.
    pub submitted: u64,
    /// Round at which the decode result becomes visible to the scheduler.
    pub ready_at: u64,
}

/// Tracks every in-flight syndrome window, per tile, and enforces the
/// conservation invariant `enqueued == decoded + in_flight`.
#[derive(Debug, Clone, Default)]
pub struct DecodeBacklog {
    in_flight: BTreeMap<u64, SyndromeWindow>,
    per_tile: BTreeMap<u32, u64>,
    enqueued: u64,
    decoded: u64,
    next_id: u64,
}

impl DecodeBacklog {
    /// Creates an empty backlog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new window, assigning it a fresh [`WindowId`].
    pub fn enqueue(&mut self, tile: u32, rounds: u32, submitted: u64, ready_at: u64) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id += 1;
        self.enqueued += 1;
        *self.per_tile.entry(tile).or_insert(0) += 1;
        self.in_flight.insert(
            id.0,
            SyndromeWindow {
                id,
                tile,
                rounds,
                submitted,
                ready_at,
            },
        );
        id
    }

    /// Removes a window whose result has been consumed; returns it.
    ///
    /// # Panics
    ///
    /// Panics if the window is unknown (double retirement is a scheduler
    /// bug, not a recoverable condition).
    pub fn retire(&mut self, id: WindowId) -> SyndromeWindow {
        let w = self
            .in_flight
            .remove(&id.0)
            .expect("retired window must be in flight");
        self.decoded += 1;
        let n = self.per_tile.get_mut(&w.tile).expect("tile tracked");
        *n -= 1;
        if *n == 0 {
            self.per_tile.remove(&w.tile);
        }
        w
    }

    /// Looks up an in-flight window.
    pub fn get(&self, id: WindowId) -> Option<&SyndromeWindow> {
        self.in_flight.get(&id.0)
    }

    /// Number of windows currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of windows in flight for one tile.
    pub fn in_flight_for_tile(&self, tile: u32) -> u64 {
        self.per_tile.get(&tile).copied().unwrap_or(0)
    }

    /// Total windows ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total windows decoded and retired.
    pub fn total_decoded(&self) -> u64 {
        self.decoded
    }

    /// The conservation invariant: `enqueued == decoded + in_flight`.
    pub fn is_conserved(&self) -> bool {
        self.enqueued == self.decoded + self.in_flight.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_through_lifecycle() {
        let mut b = DecodeBacklog::new();
        let a = b.enqueue(0, 7, 10, 15);
        let c = b.enqueue(1, 7, 11, 20);
        let d = b.enqueue(0, 14, 12, 30);
        assert_eq!(b.in_flight(), 3);
        assert_eq!(b.in_flight_for_tile(0), 2);
        assert!(b.is_conserved());
        b.retire(a);
        b.retire(d);
        assert_eq!(b.in_flight_for_tile(0), 0);
        assert_eq!(b.in_flight_for_tile(1), 1);
        assert!(b.is_conserved());
        b.retire(c);
        assert_eq!(b.total_enqueued(), 3);
        assert_eq!(b.total_decoded(), 3);
        assert!(b.is_conserved());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut b = DecodeBacklog::new();
        let x = b.enqueue(0, 1, 0, 0);
        let y = b.enqueue(0, 1, 0, 0);
        assert!(y > x);
        b.retire(x);
        let z = b.enqueue(0, 1, 0, 0);
        assert!(z > y, "ids are never reused");
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn double_retire_panics() {
        let mut b = DecodeBacklog::new();
        let a = b.enqueue(0, 1, 0, 0);
        b.retire(a);
        b.retire(a);
    }
}
