//! Differential testing: the union-find decoder against the exhaustive
//! minimum-weight oracle on a pinned corpus of seeded error configurations.
//!
//! The contract on every corpus graph:
//!
//! 1. **Validity** — union-find's correction always reproduces the observed
//!    syndrome (it is a legal correction), on every sample, no exceptions.
//! 2. **Half-distance agreement** — on every window whose sampled error has
//!    weight `≤ (d−1)/2` (the regime where minimum-weight decoding is
//!    guaranteed correct), union-find's residual commutes with the logical
//!    operator whenever the oracle's does. This is where the union-find
//!    guarantee is a theorem, so the tolerance is zero.
//! 3. **Bounded suboptimality** — above half distance the two decoders may
//!    legitimately disagree (union-find trades optimality for near-linear
//!    time; peeling picks a spanning-tree chain where matching picks the
//!    lightest one). On this pinned corpus the decoder loses to the oracle
//!    on ~1% of windows; the test pins a 2% ceiling so an accuracy
//!    regression in growth ordering or peeling fails loudly while honest
//!    algorithmic variance does not.
//!
//! The corpus also has to *earn* its coverage: the counters at the bottom
//! prove it exercised cluster merges, boundary peels, multi-defect windows
//! and oracle-hard (even-minimum-weight-fails) windows, so retuning the
//! grid can never quietly reduce this file to trivial cases.

use rescq_decoder::{
    decode_chain, min_weight_correction, sample_error, DetectorGraph, SyndromeBits,
    MAX_EXACT_DEFECTS,
};

/// One corpus cell: a graph shape and an error-rate grid sampled over many
/// pinned seeds.
struct CorpusCell {
    distance: u32,
    rounds: u32,
    error_rates: &'static [f64],
    seeds: u64,
}

const CORPUS: &[CorpusCell] = &[
    CorpusCell {
        distance: 3,
        rounds: 1,
        error_rates: &[0.02, 0.05, 0.08],
        seeds: 150,
    },
    CorpusCell {
        distance: 3,
        rounds: 2,
        error_rates: &[0.02, 0.05],
        seeds: 100,
    },
    CorpusCell {
        distance: 5,
        rounds: 1,
        error_rates: &[0.02, 0.04],
        seeds: 100,
    },
    CorpusCell {
        distance: 5,
        rounds: 2,
        error_rates: &[0.02],
        seeds: 60,
    },
];

/// Mixes a cell's parameters and sample index into a pinned stream seed.
fn corpus_seed(cell: &CorpusCell, p_idx: usize, sample: u64) -> u64 {
    let mut z = 0xBEEF
        ^ ((cell.distance as u64) << 48)
        ^ ((cell.rounds as u64) << 40)
        ^ ((p_idx as u64) << 32)
        ^ sample;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn union_find_matches_min_weight_oracle_on_the_corpus() {
    let mut samples = 0u64;
    let mut skipped = 0u64;
    let mut merges = 0u64;
    let mut boundary_peels = 0u64;
    let mut multi_defect = 0u64;
    let mut mw_failures = 0u64;
    let mut above_half_discrepancies = 0u64;
    for cell in CORPUS {
        let graph = DetectorGraph::new(cell.distance, cell.rounds);
        let half_distance = (cell.distance - 1) / 2;
        for (p_idx, &p) in cell.error_rates.iter().enumerate() {
            for sample in 0..cell.seeds {
                let seed = corpus_seed(cell, p_idx, sample);
                let error = sample_error(&graph, p, seed);
                let syndrome = graph.syndrome_of(&error);
                let uf = decode_chain(&graph, &error);

                // 1. Validity: the UF correction is always legal.
                assert_eq!(
                    graph.syndrome_of(&uf.correction),
                    syndrome,
                    "invalid UF correction: d={} R={} p={p} seed={seed}",
                    cell.distance,
                    cell.rounds
                );

                if syndrome.popcount() as usize > MAX_EXACT_DEFECTS {
                    skipped += 1;
                    continue;
                }
                samples += 1;
                merges += uf.merges;
                boundary_peels += uf.boundary_peels;
                if uf.defects >= 4 {
                    multi_defect += 1;
                }

                let (mw, mw_weight) = min_weight_correction(&graph, &syndrome);
                assert!(
                    mw_weight <= error.popcount(),
                    "oracle worse than the error itself"
                );
                let mut mw_residual = error.clone();
                mw_residual.xor_with(&mw);
                let mut uf_residual = error.clone();
                uf_residual.xor_with(&uf.correction);
                let mw_fails = graph.crosses_logical_cut(&mw_residual);
                let uf_fails = graph.crosses_logical_cut(&uf_residual);
                if mw_fails {
                    mw_failures += 1;
                }
                if uf_fails && !mw_fails {
                    // 2. Half-distance agreement: zero tolerance.
                    assert!(
                        error.popcount() > half_distance,
                        "UF failed a guaranteed-correctable window: d={} R={} p={p} \
                         seed={seed} weight={} defects={}",
                        cell.distance,
                        cell.rounds,
                        error.popcount(),
                        uf.defects
                    );
                    above_half_discrepancies += 1;
                }
            }
        }
    }

    // 3. Bounded suboptimality above half distance (measured ~1% on this
    // pinned corpus; 2% is the regression ceiling).
    assert!(
        above_half_discrepancies * 50 <= samples,
        "UF lost to the oracle on {above_half_discrepancies} of {samples} windows (> 2%)"
    );

    // Coverage: the pinned corpus must exercise the machinery it claims to
    // test. If retuning the grid ever hollows these out, the test tells us
    // instead of silently passing on trivial windows.
    assert!(samples > 500, "corpus too small: {samples}");
    assert!(merges > 100, "corpus never merges clusters: {merges}");
    assert!(
        boundary_peels > 100,
        "corpus never peels into a boundary: {boundary_peels}"
    );
    assert!(
        multi_defect > 50,
        "corpus lacks multi-defect windows: {multi_defect}"
    );
    assert!(
        skipped < samples / 4,
        "too many windows exceeded the oracle's defect cap: {skipped} of {samples}"
    );
    // The corpus is hard enough that even the oracle fails somewhere —
    // otherwise the agreement clauses would be vacuously weak.
    assert!(mw_failures > 0, "corpus never stresses the oracle");
}

/// Hand-built adversarial windows: shapes known to stress peeling order.
#[test]
fn union_find_handles_adversarial_shapes() {
    // A full-width horizontal ladder of defects on d=5: forces one large
    // merged cluster whose peeling must fan corrections out of a single
    // erasure tree.
    let g = DetectorGraph::new(5, 1);
    let mut error = SyndromeBits::new(g.num_edges());
    let spatial = g.spatial_per_round();
    // Flip every horizontal edge in row 0 (the last (d-1)*(d-1) spatial
    // edges are horizontal; row 0 is the first d-1 of them).
    let horizontal_base = spatial - (g.distance() - 1) * (g.distance() - 1);
    for k in 0..g.distance() - 1 {
        error.set(horizontal_base + k);
    }
    let out = decode_chain(&g, &error);
    assert_eq!(g.syndrome_of(&out.correction), g.syndrome_of(&error));

    // A time-like error column on d=3 R=2: measurement errors only, whose
    // corrections must stay off the Pauli frame's spatial address space.
    let g = DetectorGraph::new(3, 2);
    let mut error = SyndromeBits::new(g.num_edges());
    error.set(g.spatial_per_round() * 2); // first time edge
    let out = decode_chain(&g, &error);
    assert_eq!(g.syndrome_of(&out.correction), g.syndrome_of(&error));
    let mut residual = error.clone();
    residual.xor_with(&out.correction);
    assert!(
        !g.crosses_logical_cut(&residual),
        "time errors are never logical"
    );
}
