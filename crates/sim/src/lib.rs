//! # rescq-sim
//!
//! The cycle-accurate, seeded symbolic execution engine of the RESCQ
//! reproduction: it executes a Clifford+Rz [`rescq_circuit::Circuit`] on a
//! STAR-architecture fabric under one of three schedulers (RESCQ, greedy,
//! AutoBraid — §5.1), modelling non-deterministic `|mθ⟩` preparation,
//! injection ladders, lattice-surgery routing congestion, edge rotations and
//! the classical MST recomputation pipeline.
//!
//! Entry points: [`simulate`] for one run, [`runner`] for multi-seed sweeps.
//!
//! # Quick example
//!
//! ```
//! use rescq_circuit::{Angle, Circuit};
//! use rescq_core::SchedulerKind;
//! use rescq_sim::{simulate, SimConfig};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1).rz(1, Angle::radians(0.37));
//!
//! let rescq = simulate(&c, &SimConfig::builder().seed(7).build()).unwrap();
//! let greedy = simulate(
//!     &c,
//!     &SimConfig::builder().scheduler(SchedulerKind::Greedy).seed(7).build(),
//! )
//! .unwrap();
//! assert!(rescq.total_cycles() > 0.0 && greedy.total_cycles() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifacts;
mod config;
mod engine;
mod fabric;
mod metrics;
mod priority;
pub mod runner;

pub use artifacts::{build_layout, simulate_prepared, simulate_prepared_traced, SimArtifacts};
pub use config::{SimConfig, SimConfigBuilder};
pub use engine::{simulate, simulate_traced, simulate_with_cycle_probe, SimError};
pub use fabric::Fabric;
pub use metrics::{metrics_snapshot, ExecutionReport, LatencyHistogram, RunCounters};
pub use priority::factory_qubits;
