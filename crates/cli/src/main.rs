//! The `sim` binary: config-driven RESCQ simulations and figure
//! regeneration, mirroring the paper artifact's workflow.
//!
//! ```text
//! sim run <config-file> [--csv DIR]        one experiment from a config file
//! sim analyze <trace.json|config>          bottleneck report from a trace or config
//! sim sweep <spec.toml> [options]          a declarative parameter sweep (rescq-harness)
//! sim merge-checkpoints <spec.toml> <out.csv> <in.ckpt...>  merge shard checkpoints
//! sim bench <name> [options]               one Table 3 benchmark, all schedulers
//! sim list                                  list Table 3 benchmarks
//! sim fig <3|5|10|11|12|13|14|15|16|a2>     regenerate a figure (--full for paper scale)
//! sim table3                                regenerate Table 3
//! ```

use rescq_bench::experiments::{self, ExperimentScale};
use rescq_cli::{output, parse_config, RunSpec};
use rescq_core::SchedulerKind;
use rescq_sim::runner::run_seeds;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("merge-checkpoints") => cmd_merge_checkpoints(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("list") => cmd_list(),
        Some("table3") => cmd_table3(),
        Some("fig") => cmd_fig(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `sim help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("sim — RESCQ scheduling simulator (paper reproduction)");
    println!();
    println!("Usage:");
    println!("  sim run <config-file> [--csv DIR] [--engine-threads N]");
    println!("            [--priority-classes SPEC]   class lattice, e.g.");
    println!("                                   factory>injection>compute>speculative | off");
    println!("            [--trace-out FILE]     write a Chrome trace-event JSON of one");
    println!("                                   traced run (base seed; open in");
    println!("                                   chrome://tracing or Perfetto)");
    println!("            [--metrics-out FILE]   write the base-seed metrics snapshot");
    println!("                                   (.json = JSON, else text exposition)");
    println!("                                      run an experiment from a config file");
    println!("  sim analyze <trace.json|config> [--json FILE] [--top K]");
    println!("                                      bottleneck report: critical path with");
    println!("                                   stall-cause attribution, hot ancillas,");
    println!("                                   region utilization. Accepts a --trace-out");
    println!("                                   JSON or a run config (re-runs base seed");
    println!("                                   traced)");
    println!("  sim sweep <spec.toml> [--threads N] [--csv FILE] [--json FILE]");
    println!("            [--checkpoint FILE] [--shard i/n] [--quiet | --progress]");
    println!("            [--layout-cache DIR]  persist layouts across invocations");
    println!("                                      run a declarative parameter sweep");
    println!("  sim merge-checkpoints <spec.toml> <out.csv> <in.ckpt...> [--json FILE]");
    println!("            [--allow-missing]         merge shard checkpoints into one CSV/JSON");
    println!("  sim bench <name> [--seeds N] [--compression F] [--distance D] [--csv DIR]");
    println!("            [--decoder ideal|fixed|adaptive|union_find] [--decoder-throughput F]");
    println!("            [--decoder-workers N] [--decoder-prep]");
    println!("            [--engine-threads N]   realtime-engine shards (0 = auto;");
    println!("                                   schedule is bit-identical for any N)");
    println!("            [--priority-classes SPEC]  class-aware ledger arbitration");
    println!("  sim bench --baseline FILE [--seeds N]   record a perf baseline (BENCH_*.json)");
    println!("            of the standard suite (ising_n420 + factory_n12 @ 25%); with a");
    println!("            positional <name>, record that benchmark instead");
    println!("  sim bench --compare BASE.json NEW.json [--warn-pct P] [--fail-pct P]");
    println!("                                      diff two baselines (exit 1 above fail)");
    println!("  sim list                            list Table 3 benchmarks");
    println!("  sim table3                          regenerate Table 3");
    println!("  sim fig <3|5|10|11|12|13|14|15|16|a2|decoder> [--full]");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_circuit(name: &str) -> Result<rescq_circuit::Circuit, String> {
    if let Some(path) = name.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return rescq_circuit::parse_circuit(&text, None).map_err(|e| e.to_string());
    }
    rescq_workloads::generate(name, 1)
        .ok_or_else(|| format!("unknown benchmark `{name}`; `sim list` shows the suite"))
}

fn run_spec(
    spec: &RunSpec,
    csv_dir: Option<PathBuf>,
) -> Result<rescq_sim::runner::SweepSummary, String> {
    let circuit = load_circuit(&spec.benchmark)?;
    println!(
        "{}: {} qubits, {} gates ({})",
        spec.benchmark,
        circuit.num_qubits(),
        circuit.len(),
        circuit.stats()
    );
    let summary = run_seeds(
        &circuit,
        &spec.config,
        spec.base_seed,
        spec.seeds,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    )
    .map_err(|e| e.to_string())?;
    for r in &summary.reports {
        println!("  {}", output::summarize(r));
    }
    println!("  => {summary}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let base = dir.join(format!("{}_{}", spec.benchmark, spec.config.scheduler));
        output::write_reports_csv(&base.with_extension("csv"), &summary.reports)
            .map_err(|e| e.to_string())?;
        output::write_histogram_csv(
            &base.with_extension("cnot_hist.csv"),
            &summary.merged_cnot_latency(),
        )
        .map_err(|e| e.to_string())?;
        output::write_histogram_csv(
            &base.with_extension("rz_hist.csv"),
            &summary.merged_rz_latency(),
        )
        .map_err(|e| e.to_string())?;
        println!("  csv written under {}", dir.display());
    }
    Ok(summary)
}

/// Applies the shared `--priority-classes` flag (`off` = class-blind).
fn apply_priority_flag(args: &[String], config: &mut rescq_sim::SimConfig) -> Result<(), String> {
    if let Some(spec) = flag_value(args, "--priority-classes") {
        config.priority_classes = rescq_core::ClassLattice::parse_setting(&spec)?;
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().filter(|a| !a.starts_with("--")).ok_or(
        "usage: sim run <config-file> [--csv DIR] [--engine-threads N] [--trace-out FILE]",
    )?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec = parse_config(&text).map_err(|e| e.to_string())?;
    if let Some(t) = flag_value(args, "--engine-threads") {
        spec.config.engine_threads = t.parse().map_err(|_| "bad --engine-threads")?;
    }
    apply_priority_flag(args, &mut spec.config)?;
    let summary = run_spec(&spec, flag_value(args, "--csv").map(PathBuf::from))?;
    if let Some(out) = flag_value(args, "--metrics-out") {
        // The base seed's report, as a versioned snapshot. Every metric in
        // it is schedule-derived, so the file is identical whether or not
        // the run was traced, at any engine thread count.
        let report = summary
            .reports
            .first()
            .ok_or("run produced no reports to snapshot")?;
        let snapshot = rescq_sim::metrics_snapshot(report);
        let body = if out.ends_with(".json") {
            snapshot.to_json()
        } else {
            snapshot.to_text()
        };
        std::fs::write(&out, body).map_err(|e| format!("{out}: {e}"))?;
        println!("  metrics snapshot written to {out}");
    }
    if let Some(out) = flag_value(args, "--trace-out") {
        write_trace(&spec, &PathBuf::from(out))?;
    }
    Ok(())
}

/// Produces the bottleneck report of `sim analyze`: from a `--trace-out`
/// Chrome trace file (first positional starting with `{`), or from a run
/// config, in which case the base seed re-runs with a recorder attached
/// (tracing is inert, so this reproduces the main run's schedule exactly).
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    use rescq_telemetry::{analyze_events, parse_trace, RingRecorder};
    const USAGE: &str = "usage: sim analyze <trace.json|run-config> [--json FILE] [--top K]";
    let path = args.first().filter(|a| !a.starts_with("--")).ok_or(USAGE)?;
    let top_k: usize = match flag_value(args, "--top") {
        Some(k) => k.parse().map_err(|_| "bad --top")?,
        None => 8,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = if text.trim_start().starts_with('{') {
        let parsed = parse_trace(&text)?;
        analyze_events(&parsed.events, parsed.dropped, parsed.truncated)
    } else {
        let mut spec = parse_config(&text).map_err(|e| e.to_string())?;
        if let Some(t) = flag_value(args, "--engine-threads") {
            spec.config.engine_threads = t.parse().map_err(|_| "bad --engine-threads")?;
        }
        apply_priority_flag(args, &mut spec.config)?;
        let circuit = load_circuit(&spec.benchmark)?;
        let mut config = spec.config.clone();
        config.seed = spec.base_seed;
        let recorder = RingRecorder::new();
        rescq_sim::simulate_traced(&circuit, &config, Some(&recorder))
            .map_err(|e| e.to_string())?;
        let events: Vec<_> = recorder.events().iter().map(|t| t.event).collect();
        analyze_events(&events, recorder.dropped(), false)
    };
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    print!("{}", report.render_text(top_k));
    if let Some(json) = flag_value(args, "--json") {
        std::fs::write(&json, report.to_json(top_k)).map_err(|e| format!("{json}: {e}"))?;
        println!("machine-readable report written to {json}");
    }
    Ok(())
}

/// Re-runs the spec's base seed with a [`rescq_telemetry::RingRecorder`]
/// attached and writes the captured stream as Chrome trace-event JSON.
/// Tracing never perturbs the schedule, so this run reproduces the first
/// seed of the main sweep exactly.
fn write_trace(spec: &RunSpec, out: &std::path::Path) -> Result<(), String> {
    use rescq_telemetry::RingRecorder;
    let circuit = load_circuit(&spec.benchmark)?;
    let mut config = spec.config.clone();
    config.seed = spec.base_seed;
    let recorder = RingRecorder::new();
    let report = rescq_sim::simulate_traced(&circuit, &config, Some(&recorder))
        .map_err(|e| e.to_string())?;
    std::fs::write(out, recorder.to_chrome_trace())
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "trace: {} events ({} dropped) written to {}",
        recorder.len(),
        recorder.dropped(),
        out.display()
    );
    let totals = recorder.phase_totals_ns();
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "  phase wall-clock: schedule {:.1}ms, start {:.1}ms, propose {:.1}ms, commit {:.1}ms",
        ms(totals[0]),
        ms(totals[1]),
        ms(totals[2]),
        ms(totals[3]),
    );
    println!(
        "  stall attribution: ancilla {}cy, decoder {}cy, route {}cy, class {}cy",
        report.counters.stall_ancilla_cycles,
        report.counters.stall_decoder_cycles,
        report.counters.stall_route_cycles,
        report.counters.stall_class_cycles,
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    use rescq_harness::{run_sweep, ProgressMode, RunOptions, Shard, SweepSpec};
    let path = args.first().filter(|a| !a.starts_with("--")).ok_or(
        "usage: sim sweep <spec.toml> [--threads N] [--csv FILE] [--json FILE] \
         [--checkpoint FILE] [--shard i/n] [--layout-cache DIR] [--quiet | --progress]",
    )?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = SweepSpec::parse(&text).map_err(|e| e.to_string())?;
    let mut opts = RunOptions::default();
    if let Some(t) = flag_value(args, "--threads") {
        opts.threads = t.parse().map_err(|_| "bad --threads")?;
    }
    opts.checkpoint = flag_value(args, "--checkpoint").map(PathBuf::from);
    opts.layout_cache_dir = flag_value(args, "--layout-cache").map(PathBuf::from);
    if let Some(shard) = flag_value(args, "--shard") {
        opts.shard = Some(Shard::parse(&shard)?);
    }
    if args.iter().any(|a| a == "--quiet") {
        opts.progress = ProgressMode::Off;
    } else if args.iter().any(|a| a == "--progress") {
        opts.progress = ProgressMode::Always;
    }

    let jobs = spec.num_points() * spec.seeds as usize;
    match opts.shard {
        Some(shard) => println!(
            "sweep: {} points x {} seeds = {} jobs (running shard {shard})",
            spec.num_points(),
            spec.seeds,
            jobs
        ),
        None => println!(
            "sweep: {} points x {} seeds = {} jobs",
            spec.num_points(),
            spec.seeds,
            jobs
        ),
    }
    let results = run_sweep(&spec, &opts).map_err(|e| e.to_string())?;
    print_sweep_results(&results)?;

    if let Some(csv) = flag_value(args, "--csv") {
        std::fs::write(&csv, results.to_csv()).map_err(|e| format!("{csv}: {e}"))?;
        println!("per-job rows written to {csv}");
    }
    if let Some(json) = flag_value(args, "--json") {
        std::fs::write(&json, results.to_json()).map_err(|e| format!("{json}: {e}"))?;
        println!("summary json written to {json}");
    }
    if let Some(first) = results.first_error() {
        let failed = results
            .records
            .iter()
            .filter(|r| r.outcome.is_err())
            .count();
        return Err(format!(
            "{failed} of {} jobs failed; first error: {first}",
            results.records.len()
        ));
    }
    Ok(())
}

fn print_sweep_results(results: &rescq_harness::SweepResults) -> Result<(), String> {
    println!(
        "{:<20} {:<10} {:>5} {:>6} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "workload",
        "scheduler",
        "d",
        "comp",
        "decoder",
        "mean cy",
        "p50 cy",
        "p99 cy",
        "stall%",
        "preempt",
        "seeds"
    );
    for s in results.summaries() {
        println!(
            "{:<20} {:<10} {:>5} {:>5.0}% {:>8} {:>10.1} {:>10.1} {:>10.1} {:>7.1}% {:>8} {:>7}",
            s.job.workload,
            s.job.config.scheduler.to_string(),
            s.job.config.distance,
            s.job.config.compression * 100.0,
            s.job.decoder.to_string(),
            s.mean_cycles,
            s.p50_cycles,
            s.p99_cycles,
            s.stall_fraction * 100.0,
            s.preemptions,
            s.completed,
        );
    }
    let resumed = results.resumed_count();
    println!(
        "{} jobs in {:.2}s ({} resumed from checkpoint); cache: {}",
        results.records.len(),
        results.elapsed_secs,
        resumed,
        results.cache
    );
    Ok(())
}

/// Merges shard checkpoint files back into one CSV (and optionally JSON),
/// validating fingerprints against the spec that produced them.
fn cmd_merge_checkpoints(args: &[String]) -> Result<(), String> {
    use rescq_harness::{merge_checkpoints, SweepSpec};
    const USAGE: &str = "usage: sim merge-checkpoints <spec.toml> <out.csv> <in.ckpt...> \
                         [--json FILE] [--allow-missing]";
    // Collect positionals by position, skipping flag *values* by index (a
    // checkpoint path that happens to equal the `--json` value must not be
    // dropped).
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--json" => skip_value = true,
            "--allow-missing" => {}
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            _ => positional.push(a),
        }
    }
    let json_out = flag_value(args, "--json");
    let [spec_path, out, inputs @ ..] = positional.as_slice() else {
        return Err(USAGE.into());
    };
    if inputs.is_empty() {
        return Err(USAGE.into());
    }
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = SweepSpec::parse(&text).map_err(|e| e.to_string())?;
    let input_paths: Vec<PathBuf> = inputs.iter().map(PathBuf::from).collect();
    let results = merge_checkpoints(&spec, &input_paths).map_err(|e| e.to_string())?;

    let missing = results
        .records
        .iter()
        .filter(|r| r.outcome.is_err())
        .count();
    if missing > 0 && !args.iter().any(|a| a == "--allow-missing") {
        return Err(format!(
            "{missing} of {} jobs missing from the inputs (pass --allow-missing to merge anyway)",
            results.records.len()
        ));
    }
    print_sweep_results(&results)?;
    std::fs::write(out, results.to_csv()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "merged {} rows from {} checkpoint(s) into {out}",
        results.resumed_count(),
        input_paths.len()
    );
    if let Some(json) = json_out {
        std::fs::write(&json, results.to_json()).map_err(|e| format!("{json}: {e}"))?;
        println!("summary json written to {json}");
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--compare") {
        return cmd_bench_compare(args);
    }
    let name = args.first().filter(|a| !a.starts_with("--"));
    if let Some(out) = flag_value(args, "--baseline") {
        return cmd_bench_baseline(args, name, &PathBuf::from(out));
    }
    let name = name.ok_or(
        "usage: sim bench <name> [--seeds N] [--compression F] [--distance D] \
         | sim bench --baseline FILE | sim bench --compare BASE.json NEW.json",
    )?;
    let mut spec = RunSpec {
        benchmark: name.clone(),
        ..RunSpec::default()
    };
    if let Some(s) = flag_value(args, "--seeds") {
        spec.seeds = s.parse().map_err(|_| "bad --seeds")?;
    }
    if let Some(c) = flag_value(args, "--compression") {
        spec.config.compression = c.parse().map_err(|_| "bad --compression")?;
    }
    if let Some(d) = flag_value(args, "--distance") {
        spec.config.distance = d.parse().map_err(|_| "bad --distance")?;
    }
    if let Some(d) = flag_value(args, "--decoder") {
        spec.config.decoder.kind = d.parse().map_err(|e: String| e)?;
    }
    if let Some(t) = flag_value(args, "--decoder-throughput") {
        spec.config.decoder.throughput = t.parse().map_err(|_| "bad --decoder-throughput")?;
    }
    if let Some(w) = flag_value(args, "--decoder-workers") {
        spec.config.decoder.workers = w.parse().map_err(|_| "bad --decoder-workers")?;
    }
    if args.iter().any(|a| a == "--decoder-prep") {
        spec.config.decoder.decode_prep = true;
    }
    if let Some(t) = flag_value(args, "--engine-threads") {
        spec.config.engine_threads = t.parse().map_err(|_| "bad --engine-threads")?;
    }
    apply_priority_flag(args, &mut spec.config)?;
    let csv = flag_value(args, "--csv").map(PathBuf::from);
    for sched in SchedulerKind::ALL {
        spec.config.scheduler = sched;
        run_spec(&spec, csv.clone())?;
    }
    Ok(())
}

/// Records a schema-versioned perf baseline (`BENCH_*.json`): wall-clock
/// per run, cycles per wall-second, and the traced per-phase breakdown,
/// averaged over seeds. With no positional benchmark, the standard perf
/// suite runs: `ising_n420` (uncompressed) + `factory_n12` at 25%
/// compression, both under the RESCQ scheduler.
fn cmd_bench_baseline(
    args: &[String],
    name: Option<&String>,
    out: &std::path::Path,
) -> Result<(), String> {
    use rescq_telemetry::{PerfBaseline, PerfEntry, RingRecorder};
    use std::time::Instant;
    let seeds: u32 = match flag_value(args, "--seeds") {
        Some(s) => s.parse().map_err(|_| "bad --seeds")?,
        None => 2,
    };
    let suite: Vec<(String, f64)> = match name {
        Some(n) => {
            let comp = match flag_value(args, "--compression") {
                Some(c) => c.parse().map_err(|_| "bad --compression")?,
                None => 0.0,
            };
            vec![(n.clone(), comp)]
        }
        None => vec![("ising_n420".into(), 0.0), ("factory_n12".into(), 0.25)],
    };
    let mut baseline = PerfBaseline::new();
    for (bench, compression) in suite {
        let circuit = load_circuit(&bench)?;
        let mut config = rescq_sim::SimConfig::builder()
            .compression(compression)
            .build();
        let artifacts = rescq_sim::SimArtifacts::prepare(std::sync::Arc::new(circuit), &config)
            .map_err(|e| e.to_string())?;
        let mut wall_ns = 0u64;
        let mut cycles = 0.0f64;
        let mut phase_ns = [0u64; 4];
        for s in 0..seeds {
            config.seed = 1 + s as u64;
            // A small ring suffices: the phase histograms and totals
            // accumulate outside the ring, and the events themselves are
            // discarded here.
            let recorder = RingRecorder::with_capacity(1024);
            let t0 = Instant::now();
            let report = rescq_sim::simulate_prepared_traced(&artifacts, &config, Some(&recorder))
                .map_err(|e| e.to_string())?;
            wall_ns += t0.elapsed().as_nanos() as u64;
            cycles += report.total_cycles();
            for (acc, ns) in phase_ns.iter_mut().zip(report.phase_nanos) {
                *acc += ns;
            }
        }
        let n = seeds.max(1) as f64;
        let wall_ms = wall_ns as f64 / 1e6 / n;
        let total_cycles = cycles / n;
        let entry = PerfEntry {
            name: bench.clone(),
            scheduler: "rescq".into(),
            seeds,
            total_cycles,
            wall_ms,
            cycles_per_sec: if wall_ms > 0.0 {
                total_cycles / (wall_ms / 1000.0)
            } else {
                0.0
            },
            phase_ms: phase_ns.map(|ns| ns as f64 / 1e6 / n),
        };
        println!(
            "bench {bench}: {:.1} ms/run, {:.0} cycles, {:.0} cycles/s",
            entry.wall_ms, entry.total_cycles, entry.cycles_per_sec
        );
        baseline.entries.push(entry);
    }
    std::fs::write(out, baseline.to_json()).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("perf baseline written to {}", out.display());
    Ok(())
}

/// Diffs two recorded perf baselines; exits non-zero when any entry is
/// slower than the fail threshold. CI's `perf-baseline` job drives this.
fn cmd_bench_compare(args: &[String]) -> Result<(), String> {
    use rescq_telemetry::{compare, delta_table, DeltaLevel, PerfBaseline};
    const USAGE: &str =
        "usage: sim bench --compare BASE.json NEW.json [--warn-pct P] [--fail-pct P]";
    let i = args
        .iter()
        .position(|a| a == "--compare")
        .expect("caller checked");
    let (Some(base_path), Some(new_path)) = (args.get(i + 1), args.get(i + 2)) else {
        return Err(USAGE.into());
    };
    let warn_pct: f64 = match flag_value(args, "--warn-pct") {
        Some(p) => p.parse().map_err(|_| "bad --warn-pct")?,
        None => 10.0,
    };
    let fail_pct: f64 = match flag_value(args, "--fail-pct") {
        Some(p) => p.parse().map_err(|_| "bad --fail-pct")?,
        None => 25.0,
    };
    let load = |p: &String| -> Result<PerfBaseline, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        PerfBaseline::parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let base = load(base_path)?;
    let new = load(new_path)?;
    let deltas = compare(&base, &new, warn_pct, fail_pct);
    if deltas.is_empty() {
        return Err("no matching entries between the two baselines".into());
    }
    print!("{}", delta_table(&deltas));
    if deltas.iter().any(|d| d.level == DeltaLevel::Fail) {
        return Err(format!(
            "perf regression above the {fail_pct:.0}% fail threshold"
        ));
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<28} {:>6} {:>8} {:>8} {:>10}",
        "benchmark", "qubits", "#Rz", "#CNOT", "Rz/CNOT"
    );
    for b in rescq_workloads::ALL_BENCHMARKS {
        println!(
            "{:<28} {:>6} {:>8} {:>8} {:>10.2}",
            b.name,
            b.qubits,
            b.paper_rz,
            b.paper_cnot,
            b.rz_per_cnot()
        );
    }
    Ok(())
}

fn cmd_table3() -> Result<(), String> {
    for r in experiments::table3() {
        let m = if r.paper == r.generated {
            "exact"
        } else {
            "approx"
        };
        println!(
            "{:<28} paper=({}, {}) generated=({}, {}) [{m}]",
            r.name, r.paper.0, r.paper.1, r.generated.0, r.generated.1
        );
    }
    Ok(())
}

fn cmd_fig(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("usage: sim fig <N> [--full]")?;
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else {
        ExperimentScale::reduced()
    };
    match which.as_str() {
        "3" => {
            let lers: Vec<f64> = (4..=12).map(|e| 10f64.powi(-e)).collect();
            for row in rescq_rus::fig3_series(0.9, &lers) {
                println!(
                    "ler={:.0e} rz={} t={}",
                    row.logical_error_rate, row.rz_rotations, row.t_rotations
                );
            }
        }
        "5" => {
            for d in experiments::fig5(&scale).map_err(|e| e.to_string())? {
                println!(
                    "{}: cnot mean {:.2} (≤2cy {:.0}%), rz mean {:.2}",
                    d.scheduler,
                    d.cnot.mean(),
                    d.cnot.fraction_at_most(2) * 100.0,
                    d.rz.mean()
                );
            }
        }
        "10" => {
            let (rows, gm) = experiments::fig10(&scale).map_err(|e| e.to_string())?;
            for r in &rows {
                println!(
                    "{}: greedy={:.0} autobraid={:.0} rescq*={:.0} (k={}) speedup={:.2}x",
                    r.name,
                    r.mean_cycles[0],
                    r.mean_cycles[1],
                    r.mean_cycles[2],
                    r.best_k,
                    r.speedup()
                );
            }
            println!("geomean speedup: {gm:.2}x");
        }
        "11" => print_sensitivity(experiments::fig11(&scale).map_err(|e| e.to_string())?),
        "12" => print_sensitivity(experiments::fig12(&scale).map_err(|e| e.to_string())?),
        "13" => print_sensitivity(experiments::fig13(&scale).map_err(|e| e.to_string())?),
        "14" => print_sensitivity(experiments::fig14(&scale).map_err(|e| e.to_string())?),
        "15" => {
            for comp in experiments::COMPRESSIONS {
                let mut l = rescq_lattice::Layout::new(rescq_lattice::LayoutKind::Star2x2, 8)
                    .map_err(|e| e.to_string())?;
                let achieved = l.compress(comp, 42);
                println!(
                    "-- {:.0}% requested, {:.0}% achieved --",
                    comp * 100.0,
                    achieved * 100.0
                );
                println!("{}", l.render_ascii());
            }
        }
        "16" => {
            for r in experiments::fig16() {
                println!(
                    "d={} p={:.0e}: E[cycles]={:.3} E[attempts]={:.4}",
                    r.d, r.p, r.expected_cycles, r.expected_attempts
                );
            }
        }
        "decoder" => {
            let (rows, monotone) = experiments::decoder_sweep(&scale).map_err(|e| e.to_string())?;
            for r in &rows {
                println!(
                    "{:<14} {:<10} tp={:<6} {:>8.1} cycles  stall {:>7.1}cy  backlog≤{}",
                    r.name,
                    r.decoder,
                    r.throughput,
                    r.mean_cycles,
                    r.mean_stall_cycles,
                    r.peak_backlog
                );
            }
            println!(
                "cycles monotonically non-decreasing as throughput drops: {}",
                if monotone { "yes" } else { "NO" }
            );
        }
        "a2" => {
            let a2 = experiments::appendix_a2();
            println!(
                "RUS {:.1} cycles vs Clifford+T {}–{} cycles ⇒ {:.0}×–{:.0}×",
                a2.rus_cycles, a2.t_range.0, a2.t_range.1, a2.overhead.0, a2.overhead.1
            );
        }
        other => return Err(format!("unknown figure `{other}`")),
    }
    Ok(())
}

fn print_sensitivity(points: Vec<experiments::SensitivityPoint>) {
    for p in points {
        println!(
            "{} {} x={:.2}: {:.0} cycles (idle {:.0}%)",
            p.name,
            p.scheduler,
            p.x,
            p.mean_cycles,
            p.idle_fraction * 100.0
        );
    }
}
