//! The `sim` binary's config-file format: a tiny documented `key = value`
//! dialect with `#` comments, mirroring the artifact's workflow without
//! pulling a TOML dependency (see `DESIGN.md` §4.9).
//!
//! ```text
//! # rescq simulation config
//! benchmark = dnn_n16
//! scheduler = rescq        # rescq | greedy | autobraid
//! distance = 7
//! physical_error_rate = 1e-4
//! k = 25                   # or `k = dynamic`
//! activity_window = 100
//! compression = 0.0
//! seeds = 10
//! base_seed = 1
//! engine_threads = 4       # realtime-engine shards; 0 = auto, schedule unchanged
//! priority_classes = factory>injection>compute>speculative  # or `off` (default)
//! decoder = adaptive       # ideal | fixed | adaptive | union_find
//! decoder_throughput = 0.5 # syndrome rounds decoded per round
//! decoder_workers = 4      # adaptive only
//! ```

use rescq_core::{ClassLattice, KPolicy, SchedulerKind};
use rescq_decoder::DecoderKind;
use rescq_sim::SimConfig;
use std::fmt;

/// A parsed experiment request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark name from Table 3 (or `file:<path>` for a circuit file).
    pub benchmark: String,
    /// Simulation configuration.
    pub config: SimConfig,
    /// Number of seeded runs.
    pub seeds: u64,
    /// First seed.
    pub base_seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            benchmark: "dnn_n16".to_string(),
            config: SimConfig::default(),
            seeds: 10,
            base_seed: 1,
        }
    }
}

/// Error from config parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the config text into a [`RunSpec`]. Unknown keys are errors so
/// typos surface immediately.
pub fn parse_config(text: &str) -> Result<RunSpec, ConfigError> {
    let mut spec = RunSpec::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());
        let parse_f64 = |v: &str| -> Result<f64, ConfigError> {
            v.parse()
                .map_err(|_| err(lineno, format!("bad number `{v}`")))
        };
        let parse_u64 = |v: &str| -> Result<u64, ConfigError> {
            v.parse()
                .map_err(|_| err(lineno, format!("bad integer `{v}`")))
        };
        match key {
            "benchmark" => spec.benchmark = value.to_string(),
            "scheduler" => {
                spec.config.scheduler =
                    value.parse::<SchedulerKind>().map_err(|e| err(lineno, e))?;
            }
            "distance" | "d" => spec.config.distance = parse_u64(value)? as u32,
            "physical_error_rate" | "p" => {
                spec.config.physical_error_rate = parse_f64(value)?;
            }
            "k" => {
                spec.config.k_policy = if value.eq_ignore_ascii_case("dynamic") {
                    KPolicy::Dynamic { max_concurrent: 2 }
                } else {
                    KPolicy::Fixed(parse_u64(value)? as u32)
                };
            }
            "activity_window" | "c" => {
                spec.config.activity_window = parse_u64(value)? as u32;
            }
            "compression" => spec.config.compression = parse_f64(value)?,
            "compression_seed" => spec.config.compression_seed = parse_u64(value)?,
            "seeds" | "number_of_runs" => spec.seeds = parse_u64(value)?.max(1),
            "base_seed" | "seed" => spec.base_seed = parse_u64(value)?,
            "max_cycles" => spec.config.max_cycles = parse_u64(value)?,
            "engine_threads" => {
                spec.config.engine_threads = parse_u64(value)? as usize;
            }
            "priority_classes" => {
                spec.config.priority_classes =
                    ClassLattice::parse_setting(value).map_err(|e| err(lineno, e))?;
            }
            "block_columns" => {
                spec.config.block_columns = Some(parse_u64(value)? as u32);
            }
            "decoder" => {
                spec.config.decoder.kind =
                    value.parse::<DecoderKind>().map_err(|e| err(lineno, e))?;
            }
            "decoder_throughput" => spec.config.decoder.throughput = parse_f64(value)?,
            "decoder_base_latency" => spec.config.decoder.base_latency = parse_u64(value)?,
            "decoder_workers" => {
                spec.config.decoder.workers = parse_u64(value)?.max(1) as usize;
            }
            "decoder_ring_capacity" => {
                spec.config.decoder.ring_capacity = parse_u64(value)?.max(1) as usize;
            }
            "decoder_prep" => {
                spec.config.decoder.decode_prep = match value.to_ascii_lowercase().as_str() {
                    "true" | "1" | "on" | "yes" => true,
                    "false" | "0" | "off" | "no" => false,
                    other => return Err(err(lineno, format!("bad bool `{other}`"))),
                };
            }
            other => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }
    Ok(spec)
}

/// Serializes a [`RunSpec`] back to config text (round-trip tested).
pub fn write_config(spec: &RunSpec) -> String {
    let k = match spec.config.k_policy {
        KPolicy::Fixed(k) => k.to_string(),
        KPolicy::Dynamic { .. } => "dynamic".to_string(),
    };
    let mut out = format!(
        "benchmark = {}\nscheduler = {}\ndistance = {}\nphysical_error_rate = {:e}\nk = {}\nactivity_window = {}\ncompression = {}\nseeds = {}\nbase_seed = {}\n",
        spec.benchmark,
        spec.config.scheduler,
        spec.config.distance,
        spec.config.physical_error_rate,
        k,
        spec.config.activity_window,
        spec.config.compression,
        spec.seeds,
        spec.base_seed,
    );
    if let Some(cols) = spec.config.block_columns {
        out.push_str(&format!("block_columns = {cols}\n"));
    }
    if spec.config.engine_threads != 1 {
        out.push_str(&format!(
            "engine_threads = {}\n",
            spec.config.engine_threads
        ));
    }
    if let Some(lattice) = &spec.config.priority_classes {
        out.push_str(&format!("priority_classes = {lattice}\n"));
    }
    if spec.config.decoder != rescq_decoder::DecoderConfig::default() {
        let d = &spec.config.decoder;
        out.push_str(&format!(
            "decoder = {}\ndecoder_throughput = {}\ndecoder_base_latency = {}\ndecoder_workers = {}\ndecoder_ring_capacity = {}\n",
            d.kind, d.throughput, d.base_latency, d.workers, d.ring_capacity
        ));
        if d.decode_prep {
            out.push_str("decoder_prep = true\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# an experiment
benchmark = qft_n18
scheduler = autobraid   # baseline
distance = 9
physical_error_rate = 1e-5
k = 50
activity_window = 100
compression = 0.5
seeds = 4
base_seed = 7
"#;
        let spec = parse_config(text).unwrap();
        assert_eq!(spec.benchmark, "qft_n18");
        assert_eq!(spec.config.scheduler, SchedulerKind::Autobraid);
        assert_eq!(spec.config.distance, 9);
        assert_eq!(spec.config.k_policy, KPolicy::Fixed(50));
        assert_eq!(spec.seeds, 4);
        assert_eq!(spec.base_seed, 7);
        assert!((spec.config.compression - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_k() {
        let spec = parse_config("k = dynamic\n").unwrap();
        assert!(matches!(spec.config.k_policy, KPolicy::Dynamic { .. }));
    }

    #[test]
    fn unknown_key_rejected() {
        let e = parse_config("warp_speed = 9\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp_speed"));
    }

    #[test]
    fn bad_value_reports_line() {
        let e = parse_config("benchmark = x\ndistance = seven\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn round_trip() {
        let mut spec = RunSpec {
            benchmark: "wstate_n27".into(),
            seeds: 3,
            ..RunSpec::default()
        };
        spec.config.distance = 11;
        spec.config.compression = 0.25;
        let parsed = parse_config(&write_config(&spec)).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn decoder_keys_parse_and_round_trip() {
        let spec = parse_config(
            "decoder = adaptive\ndecoder_throughput = 0.5\ndecoder_workers = 8\ndecoder_ring_capacity = 32\ndecoder_base_latency = 3\ndecoder_prep = true\n",
        )
        .unwrap();
        assert_eq!(spec.config.decoder.kind, DecoderKind::Adaptive);
        assert!((spec.config.decoder.throughput - 0.5).abs() < 1e-12);
        assert_eq!(spec.config.decoder.workers, 8);
        assert_eq!(spec.config.decoder.ring_capacity, 32);
        assert_eq!(spec.config.decoder.base_latency, 3);
        assert!(spec.config.decoder.decode_prep);
        let parsed = parse_config(&write_config(&spec)).unwrap();
        assert_eq!(parsed, spec);
        assert!(parse_config("decoder = warp\n").is_err());
        assert!(parse_config("decoder_prep = maybe\n").is_err());
    }

    #[test]
    fn default_config_omits_decoder_keys() {
        assert!(!write_config(&RunSpec::default()).contains("decoder"));
    }

    #[test]
    fn engine_threads_key_parses_and_round_trips() {
        let spec = parse_config("engine_threads = 4\n").unwrap();
        assert_eq!(spec.config.engine_threads, 4);
        let text = write_config(&spec);
        assert!(text.contains("engine_threads = 4"));
        assert_eq!(parse_config(&text).unwrap(), spec);
        // 0 = auto-detect; the default (1) stays out of written configs.
        assert_eq!(
            parse_config("engine_threads = 0\n")
                .unwrap()
                .config
                .engine_threads,
            0
        );
        assert!(!write_config(&RunSpec::default()).contains("engine_threads"));
    }

    #[test]
    fn priority_classes_key_parses_and_round_trips() {
        let spec =
            parse_config("priority_classes = factory>injection>compute>speculative\n").unwrap();
        assert_eq!(spec.config.priority_classes, Some(ClassLattice::default()));
        let text = write_config(&spec);
        assert!(text.contains("priority_classes = factory>injection>compute>speculative"));
        assert_eq!(parse_config(&text).unwrap(), spec);
        // `off` and absence both mean class-blind; the default stays out of
        // written configs.
        assert_eq!(
            parse_config("priority_classes = off\n")
                .unwrap()
                .config
                .priority_classes,
            None
        );
        assert!(!write_config(&RunSpec::default()).contains("priority_classes"));
        // A lattice missing a canonical class is rejected with the line.
        let e = parse_config("priority_classes = factory>compute>speculative\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("injection"));
    }

    #[test]
    fn artifact_alias_number_of_runs() {
        let spec = parse_config("number_of_runs = 50\n").unwrap();
        assert_eq!(spec.seeds, 50);
    }
}
