//! # rescq-core
//!
//! The RESCQ scheduling framework (the paper's primary contribution): the
//! per-ancilla operation queues with in-place ladder rewriting
//! ([`AncillaQueue`], §4.1), the [`ReservationLedger`] that makes the
//! task-level wait-for graph explicit and supports seniority-safe,
//! class-aware preemption (the [`ClassLattice`] priority lattice —
//! `factory > injection > compute > speculative` by default — decides who
//! may overtake whom; an incremental cycle check decides whether the
//! reorder is safe), the sliding-window [`ActivityTracker`] and the
//! pipelined stale-tolerant [`MstPipeline`] (§4.2 / Fig 8), Algorithm-1
//! routing with a per-generation [`PathCache`] ([`routing`]), and the
//! baseline static-routing policy the evaluation compares against.
//!
//! The cycle-accurate engine that drives these structures lives in
//! `rescq-sim`; everything here is deterministic, pure scheduling logic and
//! is unit-testable in isolation.
//!
//! # Quick example
//!
//! ```
//! use rescq_circuit::Angle;
//! use rescq_core::{AncillaQueue, QueueEntry, Role, TaskId};
//!
//! let mut queue = AncillaQueue::new();
//! queue.push(QueueEntry::new(TaskId(0), Role::PrepZz, Angle::radians(0.3)));
//! // A sibling ancilla finished preparing |mθ⟩ first: anticipate the
//! // injection failure by retargeting this ancilla to |m2θ⟩ in place.
//! queue.update_angle(TaskId(0), Angle::radians(0.3).double());
//! assert_eq!(queue.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activity;
pub mod arena;
mod dynmst;
mod queue;
mod reservation;
pub mod routing;
mod types;

pub use activity::ActivityTracker;
pub use arena::{for_each_set_bit, Bitset, VecPool};
pub use dynmst::{KPolicy, MstPipeline, TauModel};
pub use queue::{AncillaQueue, EntryStatus, QueueEntry, Role};
pub use reservation::{
    ClassLattice, LedgerEvent, LedgerStats, Preemption, ReservationId, ReservationLedger, ShardId,
    TaskClass,
};
pub use routing::{
    plan_cnot_route, plan_cnot_route_into, plan_static_route, PathCache, RoutePlan, RoutePlanMeta,
    RouteScratch, StaticRouteOutcome,
};
pub use types::{SchedulerKind, SurgeryCosts, TaskId};
