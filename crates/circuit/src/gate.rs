//! Gates of the Clifford+Rz basis used by continuous-angle architectures.
//!
//! The paper compiles every benchmark into `{Rz, H, X, CNOT}` (§5.1); we add
//! `Z` since the Pauli frame treats it identically to `X` (zero cycles) and it
//! appears in decompositions. `S` gates are represented as `Rz(π/2)`, which
//! [`Angle::is_clifford`] classifies as free.

use crate::Angle;
use std::fmt;

/// Identifier of a logical program qubit (`0..n` within a [`crate::Circuit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QubitId(pub u32);

impl QubitId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for QubitId {
    fn from(v: u32) -> Self {
        QubitId(v)
    }
}

impl From<usize> for QubitId {
    fn from(v: usize) -> Self {
        QubitId(v as u32)
    }
}

impl From<i32> for QubitId {
    /// Ergonomic conversion for integer literals.
    ///
    /// # Panics
    ///
    /// Panics on negative values.
    fn from(v: i32) -> Self {
        assert!(v >= 0, "qubit index must be non-negative, got {v}");
        QubitId(v as u32)
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a gate within a [`crate::Circuit`] (its position in program
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GateId(pub usize);

impl GateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A gate in the Clifford+Rz basis.
///
/// # Example
///
/// ```
/// use rescq_circuit::{Angle, Gate, QubitId};
///
/// let g = Gate::rz(0, Angle::T);
/// assert!(g.is_rotation());
/// assert!(g.is_continuous_rotation()); // T is non-Clifford: needs |mθ⟩
/// assert!(Gate::rz(0, Angle::S).is_free()); // S is Clifford: software
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Arbitrary-angle Z rotation; non-Clifford angles require `|mθ⟩` states.
    Rz {
        /// The qubit rotated.
        qubit: QubitId,
        /// The rotation angle.
        angle: Angle,
    },
    /// Hadamard: transversal on the surface code but swaps the X/Z boundary
    /// orientation of the patch.
    H {
        /// The qubit acted on.
        qubit: QubitId,
    },
    /// Pauli-X: tracked in the Pauli frame, zero cycles.
    X {
        /// The qubit acted on.
        qubit: QubitId,
    },
    /// Pauli-Z: tracked in the Pauli frame, zero cycles.
    Z {
        /// The qubit acted on.
        qubit: QubitId,
    },
    /// CNOT via lattice surgery (ZZ then XX measurement through an ancilla
    /// path, 2 cycles when a path exists — paper Fig 2).
    Cnot {
        /// The control qubit (interacts through its Z edge).
        control: QubitId,
        /// The target qubit (interacts through its X edge).
        target: QubitId,
    },
}

impl Gate {
    /// Convenience constructor for an `Rz`.
    pub fn rz(qubit: impl Into<QubitId>, angle: Angle) -> Self {
        Gate::Rz {
            qubit: qubit.into(),
            angle,
        }
    }

    /// Convenience constructor for a Hadamard.
    pub fn h(qubit: impl Into<QubitId>) -> Self {
        Gate::H {
            qubit: qubit.into(),
        }
    }

    /// Convenience constructor for a Pauli-X.
    pub fn x(qubit: impl Into<QubitId>) -> Self {
        Gate::X {
            qubit: qubit.into(),
        }
    }

    /// Convenience constructor for a Pauli-Z.
    pub fn z(qubit: impl Into<QubitId>) -> Self {
        Gate::Z {
            qubit: qubit.into(),
        }
    }

    /// Convenience constructor for a CNOT.
    pub fn cnot(control: impl Into<QubitId>, target: impl Into<QubitId>) -> Self {
        Gate::Cnot {
            control: control.into(),
            target: target.into(),
        }
    }

    /// The qubits the gate acts on, in (control, target) order for CNOT.
    pub fn qubits(&self) -> GateQubits {
        match *self {
            Gate::Rz { qubit, .. } | Gate::H { qubit } | Gate::X { qubit } | Gate::Z { qubit } => {
                GateQubits::One(qubit)
            }
            Gate::Cnot { control, target } => GateQubits::Two(control, target),
        }
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. })
    }

    /// Whether this is an `Rz` of any angle.
    pub fn is_rotation(&self) -> bool {
        matches!(self, Gate::Rz { .. })
    }

    /// Whether this is a *continuous-angle* rotation: an `Rz` whose angle is
    /// not Clifford, i.e. one that requires RUS `|mθ⟩` preparation. These are
    /// the gates counted in the paper's `#Rz` columns.
    pub fn is_continuous_rotation(&self) -> bool {
        matches!(self, Gate::Rz { angle, .. } if !angle.is_clifford())
    }

    /// Whether the gate costs zero lattice-surgery cycles (Pauli-frame or
    /// Clifford-software gates).
    pub fn is_free(&self) -> bool {
        match self {
            Gate::X { .. } | Gate::Z { .. } => true,
            Gate::Rz { angle, .. } => angle.is_clifford(),
            _ => false,
        }
    }

    /// Lowercase mnemonic matching the artifact's text format.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Rz { .. } => "rz",
            Gate::H { .. } => "h",
            Gate::X { .. } => "x",
            Gate::Z { .. } => "z",
            Gate::Cnot { .. } => "cx",
        }
    }

    /// The rotation angle, if this is an `Rz`.
    pub fn angle(&self) -> Option<Angle> {
        match self {
            Gate::Rz { angle, .. } => Some(*angle),
            _ => None,
        }
    }

    /// Rewrites every qubit id through `f` (used when embedding circuits).
    #[must_use]
    pub fn map_qubits(self, mut f: impl FnMut(QubitId) -> QubitId) -> Self {
        match self {
            Gate::Rz { qubit, angle } => Gate::Rz {
                qubit: f(qubit),
                angle,
            },
            Gate::H { qubit } => Gate::H { qubit: f(qubit) },
            Gate::X { qubit } => Gate::X { qubit: f(qubit) },
            Gate::Z { qubit } => Gate::Z { qubit: f(qubit) },
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rz { qubit, angle } => write!(f, "rz {} {}", qubit.0, angle),
            Gate::H { qubit } => write!(f, "h {}", qubit.0),
            Gate::X { qubit } => write!(f, "x {}", qubit.0),
            Gate::Z { qubit } => write!(f, "z {}", qubit.0),
            Gate::Cnot { control, target } => write!(f, "cx {} {}", control.0, target.0),
        }
    }
}

/// The operand qubits of a gate, avoiding allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateQubits {
    /// Single-qubit gate operand.
    One(QubitId),
    /// Two-qubit gate operands in (control, target) order.
    Two(QubitId, QubitId),
}

impl GateQubits {
    /// Number of operands (1 or 2).
    pub fn len(&self) -> usize {
        match self {
            GateQubits::One(_) => 1,
            GateQubits::Two(..) => 2,
        }
    }

    /// Always false; gates have at least one operand.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `q` is among the operands.
    pub fn contains(&self, q: QubitId) -> bool {
        match *self {
            GateQubits::One(a) => a == q,
            GateQubits::Two(a, b) => a == q || b == q,
        }
    }

    /// Iterator over the operands.
    pub fn iter(&self) -> impl Iterator<Item = QubitId> + '_ {
        let (a, b) = match *self {
            GateQubits::One(a) => (a, None),
            GateQubits::Two(a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }
}

impl IntoIterator for GateQubits {
    type Item = QubitId;
    type IntoIter = std::iter::Chain<std::iter::Once<QubitId>, std::option::IntoIter<QubitId>>;

    fn into_iter(self) -> Self::IntoIter {
        let (a, b) = match self {
            GateQubits::One(a) => (a, None),
            GateQubits::Two(a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Gate::rz(0, Angle::radians(0.3)).is_continuous_rotation());
        assert!(Gate::rz(0, Angle::T).is_continuous_rotation());
        assert!(!Gate::rz(0, Angle::S).is_continuous_rotation());
        assert!(Gate::rz(0, Angle::S).is_free());
        assert!(Gate::x(0).is_free());
        assert!(Gate::z(0).is_free());
        assert!(!Gate::h(0).is_free());
        assert!(Gate::cnot(0, 1).is_two_qubit());
    }

    #[test]
    fn qubit_access() {
        let g = Gate::cnot(2, 5);
        let qs: Vec<_> = g.qubits().into_iter().collect();
        assert_eq!(qs, vec![QubitId(2), QubitId(5)]);
        assert!(g.qubits().contains(QubitId(5)));
        assert!(!g.qubits().contains(QubitId(3)));
        assert_eq!(g.qubits().len(), 2);
        assert_eq!(Gate::h(1).qubits().len(), 1);
    }

    #[test]
    fn map_qubits_shifts() {
        let g = Gate::cnot(0, 1).map_qubits(|q| QubitId(q.0 + 10));
        assert_eq!(g, Gate::cnot(10, 11));
    }

    #[test]
    fn display_matches_artifact_format() {
        assert_eq!(Gate::rz(3, Angle::T).to_string(), "rz 3 pi/4");
        assert_eq!(Gate::cnot(0, 1).to_string(), "cx 0 1");
        assert_eq!(Gate::h(7).to_string(), "h 7");
    }
}
