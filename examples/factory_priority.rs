//! Priority-class lattice demo: T-gate factory tiles vs. logical compute.
//!
//! Runs the `factory_nN` workload (rotation-pipeline factory tiles feeding
//! a compute block) with the class-blind ledger and with the priority-class
//! lattice enabled, across compression levels, and prints the makespan
//! ratio. With the lattice, factory-region work outranks compute claims on
//! the ancilla queues (cycle-checked reorders only), which keeps the
//! `|mθ⟩` pipelines — the critical path — fed.
//!
//! ```sh
//! cargo run --release --example factory_priority
//! ```

use rescq_repro::core::ClassLattice;
use rescq_repro::sim::runner::run_seeds;
use rescq_repro::sim::SimConfig;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let seeds: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let name = format!("factory_n{n}");
    let circuit = rescq_repro::workloads::generate(&name, 1).expect("factory workload");
    println!(
        "{name}: {} qubits, {} gates ({})",
        circuit.num_qubits(),
        circuit.len(),
        circuit.stats()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "comp", "class-blind cy", "class-aware cy", "ratio"
    );
    for compression in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let run = |lattice: Option<ClassLattice>| -> (f64, u64, u64, u64) {
            let config = SimConfig::builder()
                .compression(compression)
                .priority_classes(lattice)
                .build();
            let summary = run_seeds(&circuit, &config, 1, seeds, 4).unwrap();
            let (mut p, mut pc, mut prej) = (0, 0, 0);
            for r in &summary.reports {
                p += r.counters.preemptions;
                pc += r.counters.preemptions_class;
                prej += r.counters.preemptions_rejected_cycle;
            }
            (summary.mean_cycles(), p, pc, prej)
        };
        let (blind, ..) = run(None);
        let (aware, p, pc, prej) = run(Some(ClassLattice::default()));
        println!(
            "{:>5.0}% {blind:>14.1} {aware:>14.1} {:>7.2}x   preempt={p} class={pc} rej={prej}",
            compression * 100.0,
            blind / aware
        );
    }
}
