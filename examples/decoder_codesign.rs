//! Decoder/scheduler co-design on top of `rescq-harness`, mirroring
//! `compression_codesign.rs` (ROADMAP follow-on of PR 1): for each grid
//! compression level, find the *cheapest* classical-decoder configuration
//! `(throughput, workers)` whose decode stalls stay within budget — i.e.
//! whose makespan is within a target fraction of the same fabric's run
//! under an ideal (zero-latency) decoder.
//!
//! (The raw per-window stall sum is reported too, but it is a cumulative
//! latency metric — concurrent windows overlap, so it routinely exceeds
//! the makespan and is not usable as a feasibility threshold by itself.)
//!
//! The whole (compression × decoder × seed) grid runs as ONE harness sweep:
//! the circuit is generated once, each compressed fabric is built once, and
//! the jobs share everything read-only across the worker pool.
//!
//! ```sh
//! cargo run --release --example decoder_codesign
//! ```

use rescq_repro::decoder::DecoderKind;
use rescq_repro::harness::{run_sweep, DecoderPoint, PointSummary, RunOptions, SweepSpec};

/// Budget: makespan may exceed the ideal-decoder makespan by at most this.
/// (Every injection outcome waits at least `base_latency + rounds/throughput`
/// before its ladder advances, and ladder steps are serial, so even fast
/// decoders carry an irreducible few-percent inflation on Rz-dense code.)
const INFLATION_BUDGET: f64 = 0.25;

/// Hardware cost proxy of a decoder point: aggregate decode bandwidth
/// (throughput × workers).
fn cost(p: &PointSummary) -> f64 {
    let d = &p.job.config.decoder;
    d.throughput * d.workers.max(1) as f64
}

fn main() {
    let compressions = [0.0, 0.5, 1.0];
    // The candidate grid: adaptive decoders over throughput × workers, plus
    // the ideal reference point per compression.
    let mut decoders = vec!["ideal".to_string()];
    decoders.extend([0.5, 1.0, 2.0, 4.0, 8.0].iter().flat_map(|tp| {
        [1usize, 2, 4]
            .iter()
            .map(move |w| format!("adaptive:{tp}x{w}"))
    }));

    let spec = SweepSpec {
        workloads: vec!["gcm_n13".to_string()],
        compressions: compressions.to_vec(),
        decoders: decoders
            .iter()
            .map(|d| d.parse::<DecoderPoint>().expect("valid point"))
            .collect(),
        seeds: 3,
        ..SweepSpec::default()
    };

    println!(
        "decoder co-design on gcm_n13: {} points x {} seeds, budget = ideal makespan +{:.0}%",
        spec.num_points(),
        spec.seeds,
        INFLATION_BUDGET * 100.0
    );
    let results = run_sweep(&spec, &RunOptions::default()).expect("sweep runs");
    if let Some(e) = results.first_error() {
        eprintln!("warning: some points failed: {e}");
    }
    println!(
        "{} jobs in {:.2}s; cache: {}\n",
        results.records.len(),
        results.elapsed_secs,
        results.cache
    );

    let summaries = results.summaries();
    let at = |compression: f64| {
        summaries
            .iter()
            .filter(move |s| s.job.config.compression == compression && s.completed > 0)
    };

    println!(
        "{:>12} {:>15} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "compression", "cheapest", "bandwidth", "mean cy", "ideal cy", "inflation", "stall%"
    );
    for &compression in &compressions {
        let Some(ideal) = at(compression).find(|s| s.job.config.decoder.kind == DecoderKind::Ideal)
        else {
            println!("{:>11.0}% (ideal reference missing)", compression * 100.0);
            continue;
        };
        let best = at(compression)
            .filter(|s| s.job.config.decoder.kind != DecoderKind::Ideal)
            .filter(|s| s.mean_cycles <= ideal.mean_cycles * (1.0 + INFLATION_BUDGET))
            .min_by(|a, b| {
                cost(a).total_cmp(&cost(b)).then(
                    a.job
                        .config
                        .decoder
                        .workers
                        .cmp(&b.job.config.decoder.workers),
                )
            });
        match best {
            Some(s) => println!(
                "{:>11.0}% {:>15} {:>10.2} {:>10.1} {:>10.1} {:>9.1}% {:>7.0}%",
                compression * 100.0,
                s.job.decoder.to_string(),
                cost(s),
                s.mean_cycles,
                ideal.mean_cycles,
                (s.mean_cycles / ideal.mean_cycles - 1.0) * 100.0,
                s.stall_fraction * 100.0
            ),
            None => println!(
                "{:>11.0}% {:>15}    no candidate within +{:.0}% of ideal ({:.1} cy)",
                compression * 100.0,
                "(none)",
                INFLATION_BUDGET * 100.0,
                ideal.mean_cycles
            ),
        }
    }

    // The co-design story: how much decode bandwidth each fabric needs.
    println!("\nmakespan inflation over ideal (rows = compression):");
    print!("{:>12}", "");
    for d in decoders.iter().skip(1) {
        print!(" {d:>14}");
    }
    println!();
    for &compression in &compressions {
        let ideal_cy = at(compression)
            .find(|s| s.job.config.decoder.kind == DecoderKind::Ideal)
            .map(|s| s.mean_cycles)
            .unwrap_or(f64::NAN);
        print!("{:>11.0}%", compression * 100.0);
        for d in decoders.iter().skip(1) {
            match at(compression).find(|s| s.job.decoder.to_string() == *d) {
                Some(s) => print!(" {:>13.1}%", (s.mean_cycles / ideal_cy - 1.0) * 100.0),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}
