//! # rescq-telemetry
//!
//! Zero-dependency instrumentation for the RESCQ reproduction: a
//! [`Recorder`] sink trait, a bounded in-memory [`RingRecorder`] with
//! per-phase wall-clock histograms, Chrome trace-event export
//! ([`chrome`]), schema-versioned perf baselines ([`perf`]), and the
//! sweep progress heartbeat ([`progress`]).
//!
//! ## Determinism contract
//!
//! Instrumentation observes the simulation, it never steers it. The
//! engines consult a recorder only through an `Option<&dyn Recorder>`
//! that is `None` by default, so a disabled recorder costs one inlined
//! `is_some()` check per site and nothing else — no allocation, no
//! locking, no timing calls. With a recorder attached, every recorded
//! quantity that feeds back into reports is derived from simulation
//! time (rounds/cycles), never wall-clock; wall-clock lives only in the
//! trace, the phase histograms, and perf baselines. Schedules and
//! reports are therefore byte-identical with tracing on or off, at any
//! engine thread count (property `tracing_is_inert`).
//!
//! ## Example
//!
//! ```
//! use rescq_telemetry::{Event, Phase, Recorder, RingRecorder};
//!
//! let rec = RingRecorder::new();
//! rec.record(Event::PhaseSpan { phase: Phase::Schedule, round: 7, dur_ns: 1200 });
//! rec.record(Event::Claim { round: 7, task: 0, ancilla: 3, cross_shard: false });
//! assert_eq!(rec.len(), 2);
//! let json = rec.to_chrome_trace();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod chrome;
pub mod perf;
pub mod progress;
pub mod snapshot;

pub use analyze::{analyze_events, parse_trace, AnalyzeReport, AncillaUtil, ParsedTrace, PathLink};
pub use chrome::{normalize_timestamps, validate_trace, TraceStats};
pub use perf::{
    compare, delta_table, DeltaLevel, PerfBaseline, PerfDelta, PerfEntry, PERF_SCHEMA_VERSION,
};
pub use progress::{progress_line, Heartbeat};
pub use snapshot::{HistogramSummary, MetricsSnapshot, METRICS_SCHEMA_VERSION};

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// The four phases of one realtime-engine dispatch pass (the sharded
/// schedule → start → propose → commit barrier protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Phase 1: drain the scheduling worklist (newly ready gates).
    Schedule,
    /// Phase 2: try to start every live task.
    Start,
    /// Phase 3: region workers scan their shards and propose actions.
    Propose,
    /// Phase 4: commit proposed actions in canonical ancilla order.
    Commit,
}

impl Phase {
    /// All phases, in protocol order.
    pub const ALL: [Phase; 4] = [Phase::Schedule, Phase::Start, Phase::Propose, Phase::Commit];

    /// Stable lowercase name (trace event / CSV / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Schedule => "schedule",
            Phase::Start => "start",
            Phase::Propose => "propose",
            Phase::Commit => "commit",
        }
    }

    /// Dense index in `0..4`, matching [`Phase::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Phase::Schedule => 0,
            Phase::Start => 1,
            Phase::Propose => 2,
            Phase::Commit => 3,
        }
    }
}

/// Why a live task failed to make progress during a cycle — the
/// stall-attribution buckets. Attribution is derived from schedule
/// state alone (deterministic, thread-count invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The task's ancilla claims sit behind other holders on the
    /// reservation queues (no free prep/surgery sites).
    AncillaContention,
    /// The task waits on a syndrome-decode result that is not ready
    /// yet (classical decoder backlog).
    DecoderBacklog,
    /// A CNOT has a planned route but cannot acquire it end to end.
    RouteBlocked,
    /// The task's resources were preempted by a strictly
    /// higher-class task (priority-lattice displacement).
    ClassDisplacement,
}

impl StallCause {
    /// All causes, in canonical (CSV column) order.
    pub const ALL: [StallCause; 4] = [
        StallCause::AncillaContention,
        StallCause::DecoderBacklog,
        StallCause::RouteBlocked,
        StallCause::ClassDisplacement,
    ];

    /// Stable snake_case name (trace event / CSV / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::AncillaContention => "ancilla_contention",
            StallCause::DecoderBacklog => "decoder_backlog",
            StallCause::RouteBlocked => "route_blocked",
            StallCause::ClassDisplacement => "class_displacement",
        }
    }

    /// Dense index in `0..4`, matching [`StallCause::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            StallCause::AncillaContention => 0,
            StallCause::DecoderBacklog => 1,
            StallCause::RouteBlocked => 2,
            StallCause::ClassDisplacement => 3,
        }
    }
}

/// One structured trace event. Every variant is `Copy` and carries only
/// plain integers — producing an event never allocates.
///
/// `round` is simulation time in measurement rounds; `task` is the
/// emitting gate's index in the circuit; `ancilla` is a dense ancilla
/// index in the routing graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// One engine dispatch phase completed, taking `dur_ns` wall-clock.
    PhaseSpan {
        /// Which of the four phases ran.
        phase: Phase,
        /// Simulation round of the dispatch pass.
        round: u64,
        /// Wall-clock duration of the phase in nanoseconds.
        dur_ns: u64,
    },
    /// A ledger claim was registered on an ancilla queue.
    Claim {
        /// Simulation round.
        round: u64,
        /// Claiming task (gate index).
        task: u64,
        /// Claimed ancilla (dense index).
        ancilla: u32,
        /// The ancilla lies outside the claiming task's home shard.
        cross_shard: bool,
    },
    /// The ledger applied a preemption (queue reorder).
    Preemption {
        /// Simulation round.
        round: u64,
        /// Preempting task (gate index).
        task: u64,
        /// Ancilla whose queue was reordered.
        ancilla: u32,
        /// The preemption was granted by the priority-class lattice
        /// (seniority alone would have refused the reorder).
        class_won: bool,
    },
    /// The ledger rejected a preemption: the reorder would have closed
    /// a cycle in the task wait-for graph.
    PreemptionRejected {
        /// Simulation round.
        round: u64,
        /// The task whose preemption attempt was refused.
        task: u64,
        /// Ancilla whose queue would have been reordered.
        ancilla: u32,
    },
    /// A syndrome window was submitted to the classical decoder.
    WindowEnqueued {
        /// Simulation round of submission.
        round: u64,
        /// Decoder window id.
        window: u64,
        /// Round the decode result becomes visible.
        ready_at: u64,
    },
    /// A decode window's result was consumed (retired).
    WindowRetired {
        /// Simulation round of retirement.
        round: u64,
        /// Decoder window id.
        window: u64,
        /// Rounds the consumer stalled waiting for the result.
        stalled_rounds: u64,
    },
    /// A CNOT route was planned (or re-planned after a stall).
    RoutePlanned {
        /// Simulation round.
        round: u64,
        /// The CNOT task (gate index).
        task: u64,
        /// Route length in ancilla hops.
        hops: u32,
        /// This was a re-plan of a previously stalled route.
        replanned: bool,
    },
    /// A live task made no progress this cycle, attributed to `cause`.
    Stall {
        /// Simulation round of the cycle tick.
        round: u64,
        /// The stalled task (gate index).
        task: u64,
        /// The attributed cause.
        cause: StallCause,
    },
    /// A wait-for edge was inserted into the ledger's task graph:
    /// `waiter` enqueued behind `holder` on an ancilla queue. The
    /// analytics layer reconstructs blocking chains from these.
    WaitEdge {
        /// Simulation round.
        round: u64,
        /// The task that now waits (gate index).
        waiter: u64,
        /// The task it waits behind (gate index).
        holder: u64,
        /// The ancilla queue carrying the edge.
        ancilla: u32,
    },
    /// An ancilla's occupancy state changed (sampled on the cycle
    /// tick; emitted only on change, so the stream is a compact
    /// state-transition series, not a per-cycle dump).
    AncillaState {
        /// Simulation round of the sample.
        round: u64,
        /// Ancilla (dense index).
        ancilla: u32,
        /// The ancilla's region in the shard partition.
        region: u32,
        /// Reservation-queue depth at the sample.
        depth: u32,
        /// The ancilla is occupied or held (not free this round).
        busy: bool,
    },
    /// A harness sweep job finished (progress heartbeat payload).
    JobDone {
        /// Global job index.
        index: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// Wall-clock nanoseconds the job took (0 when resumed).
        wall_ns: u64,
        /// The job was restored from a checkpoint instead of run.
        resumed: bool,
    },
}

/// A sink for trace [`Event`]s.
///
/// `record` takes `&self` so a single recorder can be shared by
/// concurrent producers (harness workers, engine threads);
/// implementations synchronise internally. Implementations must never
/// panic on any event and must not feed anything back into the
/// simulation — see the crate-level determinism contract.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Consumes one event.
    fn record(&self, ev: Event);
}

/// Power-of-two-bucketed nanosecond histogram (for phase wall-clock
/// timing). Bucket `i` holds samples in `[2^(i−1), 2^i)` ns.
#[derive(Debug, Clone)]
pub struct NsHistogram {
    counts: [u64; 48],
    count: u64,
    total_ns: u64,
}

impl Default for NsHistogram {
    fn default() -> Self {
        NsHistogram {
            counts: [0; 48],
            count: 0,
            total_ns: 0,
        }
    }
}

impl NsHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(47)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the power-of-two bucket holding the
    /// target rank. Exact for samples that are 0; otherwise accurate
    /// to within the bucket (a factor of 2). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank target in 1..=count, then interpolate within
        // the bucket that rank falls in.
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                if i == 0 {
                    return 0; // bucket 0 holds exactly the value 0
                }
                let lo = 1u64 << (i - 1);
                let hi = 1u64 << i;
                let frac = (target - cum as f64) / n as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            cum = next;
        }
        // Unreachable when counts are consistent; fall back to the
        // top bucket's lower bound.
        1u64 << 46
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact
    /// for counts and totals, bucket-resolution for quantiles).
    pub fn merge(&mut self, other: &NsHistogram) {
        for (slot, &n) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += n;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Iterates the non-empty buckets as `(upper_bound_ns, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
    }
}

/// One event plus the wall-clock instant (nanoseconds since the
/// recorder's creation) it was recorded at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// The event.
    pub event: Event,
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<TimedEvent>,
    dropped: u64,
    phase_hist: [NsHistogram; 4],
}

/// A bounded in-memory [`Recorder`]: a ring buffer of [`TimedEvent`]s
/// plus per-phase wall-clock histograms. When the ring is full the
/// oldest events are dropped (and counted), so memory use is constant
/// no matter how long the run.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    epoch: Instant,
    inner: Mutex<RingInner>,
}

impl Default for RingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl RingRecorder {
    /// Default ring capacity in events.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// Creates a recorder with [`RingRecorder::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a recorder holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity.clamp(1, 4096)),
                dropped: 0,
                phase_hist: Default::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner.lock().expect("ring recorder lock poisoned")
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.lock().events.iter().copied().collect()
    }

    /// Per-phase wall-clock histograms, indexed by [`Phase::index`].
    pub fn phase_histograms(&self) -> [NsHistogram; 4] {
        self.lock().phase_hist.clone()
    }

    /// Total wall-clock nanoseconds per phase, indexed by
    /// [`Phase::index`].
    pub fn phase_totals_ns(&self) -> [u64; 4] {
        let inner = self.lock();
        let mut out = [0u64; 4];
        for (slot, h) in out.iter_mut().zip(inner.phase_hist.iter()) {
            *slot = h.total_ns();
        }
        out
    }

    /// Renders the buffered events as a Chrome trace-event JSON
    /// document (`chrome://tracing` / Perfetto loadable).
    pub fn to_chrome_trace(&self) -> String {
        let inner = self.lock();
        let events: Vec<TimedEvent> = inner.events.iter().copied().collect();
        chrome::render(&events, inner.dropped)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: Event) {
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.lock();
        if let Event::PhaseSpan { phase, dur_ns, .. } = ev {
            inner.phase_hist[phase.index()].record(dur_ns);
        }
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TimedEvent { at_ns, event: ev });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_cause_tables_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn histogram_counts_and_means() {
        let mut h = NsHistogram::new();
        for ns in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total_ns(), 1_001_006);
        assert!((h.mean_ns() - 1_001_006.0 / 6.0).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert!(buckets.iter().map(|&(_, n)| n).sum::<u64>() == 6);
        // 2 and 3 land in the same power-of-two bucket [2, 4).
        assert!(buckets.iter().any(|&(ub, n)| ub == 4 && n == 2));
    }

    #[test]
    fn quantiles_bracket_exact_small_samples() {
        // All-zero samples: every quantile is exactly 0.
        let mut zeros = NsHistogram::new();
        for _ in 0..5 {
            zeros.record(0);
        }
        assert_eq!(zeros.quantile(0.5), 0);
        assert_eq!(zeros.quantile(0.99), 0);

        // Exact sample set; the estimate must land in the same
        // power-of-two bucket as the exact nearest-rank quantile.
        let samples: [u64; 8] = [10, 20, 30, 40, 100, 200, 1000, 4000];
        let mut h = NsHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        for (q, exact) in [(0.5, 40u64), (0.99, 4000u64), (0.0, 10u64)] {
            let est = h.quantile(q);
            let (lo, hi) = (exact.next_power_of_two() / 2, exact.next_power_of_two());
            assert!(
                est >= lo && est <= hi,
                "q={q}: est {est} outside bucket [{lo}, {hi}] of exact {exact}"
            );
        }
        // Monotone in q.
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert!(h.quantile(0.5) >= h.quantile(0.1));
        assert_eq!(NsHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything() {
        let (mut a, mut b, mut all) = (NsHistogram::new(), NsHistogram::new(), NsHistogram::new());
        for ns in [0u64, 3, 70, 900] {
            a.record(ns);
            all.record(ns);
        }
        for ns in [5u64, 60_000, 1_000_000] {
            b.record(ns);
            all.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.total_ns(), all.total_ns());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
        assert_eq!(a.quantile(0.99), all.quantile(0.99));
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            all.nonzero_buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let rec = RingRecorder::with_capacity(2);
        for round in 0..5 {
            rec.record(Event::Stall {
                round,
                task: 0,
                cause: StallCause::AncillaContention,
            });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let evs = rec.events();
        assert!(matches!(evs[0].event, Event::Stall { round: 3, .. }));
        assert!(matches!(evs[1].event, Event::Stall { round: 4, .. }));
    }

    #[test]
    fn phase_spans_feed_the_histograms() {
        let rec = RingRecorder::new();
        rec.record(Event::PhaseSpan {
            phase: Phase::Commit,
            round: 1,
            dur_ns: 500,
        });
        rec.record(Event::PhaseSpan {
            phase: Phase::Commit,
            round: 2,
            dur_ns: 1500,
        });
        let totals = rec.phase_totals_ns();
        assert_eq!(totals[Phase::Commit.index()], 2000);
        assert_eq!(totals[Phase::Schedule.index()], 0);
        assert_eq!(rec.phase_histograms()[Phase::Commit.index()].count(), 2);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = RingRecorder::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..100 {
                        rec.record(Event::JobDone {
                            index: t * 100 + i,
                            total: 400,
                            wall_ns: 10,
                            resumed: false,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.len(), 400);
    }
}
