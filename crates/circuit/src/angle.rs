//! Rotation angles for `Rz(θ)` gates.
//!
//! The RESCQ execution model cares about one algebraic property of an angle:
//! what happens under repeated *doubling*. A failed `|mθ⟩` injection applies
//! `Rz(−θ)` instead of `Rz(θ)`, so the repeat-until-success ladder must next
//! execute `Rz(2θ)`, then `Rz(4θ)`, … (paper §3.2). If some `Rz(2^k·θ)` is a
//! Clifford gate the ladder terminates early because Cliffords are executed in
//! software on the surface code, making the expected number of injections
//! strictly less than 2 (paper Eq. 1 and the remark following it).
//!
//! [`Angle`] therefore distinguishes *dyadic multiples of π* — `num·π/2^k`,
//! which reach a Clifford after finitely many doublings — from generic
//! [`Angle::Radians`] values, which never do.

use std::f64::consts::PI;
use std::fmt;
use std::ops::Add;

/// A rotation angle, exact when it is a dyadic multiple of π.
///
/// Dyadic angles are kept normalized: the numerator is odd (or the angle is
/// exactly zero with `k = 0`) and the value is wrapped into `(−2π, 2π]` — a
/// `Rz` rotation is periodic in `2π` up to global phase.
///
/// # Example
///
/// ```
/// use rescq_circuit::Angle;
///
/// let t = Angle::T; // π/4
/// assert!(!t.is_clifford());
/// assert!(t.double().is_clifford()); // π/2 is the S gate
/// assert_eq!(t.double(), Angle::dyadic_pi(1, 1));
/// ```
#[derive(Debug, Clone, Copy)]
pub enum Angle {
    /// Exactly `num·π / 2^k` radians.
    DyadicPi {
        /// Numerator; odd after normalization unless the angle is zero.
        num: i64,
        /// Power-of-two denominator exponent.
        k: u32,
    },
    /// A generic angle in radians; never becomes Clifford under doubling.
    Radians(f64),
}

impl Angle {
    /// The zero rotation (identity).
    pub const ZERO: Angle = Angle::DyadicPi { num: 0, k: 0 };
    /// `π` — the Pauli-Z rotation (up to phase).
    pub const PI: Angle = Angle::DyadicPi { num: 1, k: 0 };
    /// `π/2` — the S gate.
    pub const S: Angle = Angle::DyadicPi { num: 1, k: 1 };
    /// `π/4` — the T gate, the canonical magic-state angle.
    pub const T: Angle = Angle::DyadicPi { num: 1, k: 2 };

    /// Creates the exact dyadic angle `num·π / 2^k`, normalized.
    ///
    /// # Example
    ///
    /// ```
    /// use rescq_circuit::Angle;
    /// // 4π/8 normalizes to π/2.
    /// assert_eq!(Angle::dyadic_pi(4, 3), Angle::dyadic_pi(1, 1));
    /// ```
    pub fn dyadic_pi(num: i64, k: u32) -> Self {
        Self::normalize(num, k)
    }

    /// Creates a generic angle from radians.
    ///
    /// Generic angles never terminate the correction ladder early; use
    /// [`Angle::dyadic_pi`] for angles that are exact fractions of π.
    pub fn radians(theta: f64) -> Self {
        Angle::Radians(Self::wrap_radians(theta))
    }

    fn wrap_radians(theta: f64) -> f64 {
        let tau = 2.0 * PI;
        let mut r = theta % tau;
        if r > PI {
            r -= tau;
        } else if r <= -PI {
            r += tau;
        }
        r
    }

    fn normalize(num: i64, k: u32) -> Self {
        let mut num = num as i128;
        let mut k = k;
        if num == 0 {
            return Angle::DyadicPi { num: 0, k: 0 };
        }
        while num % 2 == 0 && k > 0 {
            num /= 2;
            k -= 1;
        }
        // Wrap modulo 2π: num·π/2^k ≡ (num mod 2^(k+1))·π/2^k, into (−2^k, 2^k].
        let modulus: i128 = 1i128 << (k + 1);
        let mut num = num.rem_euclid(modulus);
        if num > modulus / 2 {
            num -= modulus;
        }
        if num == 0 {
            return Angle::DyadicPi { num: 0, k: 0 };
        }
        // Wrapping can re-introduce factors of two (e.g. 3π ≡ π).
        let mut num = num as i64;
        while num % 2 == 0 && k > 0 {
            num /= 2;
            k -= 1;
        }
        Angle::DyadicPi { num, k }
    }

    /// The angle after a failed injection: `2θ` (paper §3.2).
    #[must_use]
    pub fn double(self) -> Self {
        match self {
            Angle::DyadicPi { num, k } => {
                if k > 0 {
                    Self::normalize(num, k - 1)
                } else {
                    Self::normalize(num.wrapping_mul(2), 0)
                }
            }
            Angle::Radians(theta) => Angle::radians(2.0 * theta),
        }
    }

    /// Whether `Rz(self)` is a Clifford gate (a multiple of π/2): the surface
    /// code executes it natively / in the Pauli frame, costing zero cycles.
    pub fn is_clifford(self) -> bool {
        match self {
            Angle::DyadicPi { k, .. } => k <= 1,
            Angle::Radians(theta) => theta == 0.0,
        }
    }

    /// Whether the angle is exactly zero (identity rotation).
    pub fn is_zero(self) -> bool {
        match self {
            Angle::DyadicPi { num, .. } => num == 0,
            Angle::Radians(theta) => theta == 0.0,
        }
    }

    /// Whether the rotation is a Pauli (multiple of π).
    pub fn is_pauli(self) -> bool {
        match self {
            Angle::DyadicPi { k, .. } => k == 0,
            Angle::Radians(theta) => theta == 0.0,
        }
    }

    /// Number of doublings until the ladder reaches a Clifford angle, or
    /// `None` for generic angles (never terminates early).
    ///
    /// # Example
    ///
    /// ```
    /// use rescq_circuit::Angle;
    /// assert_eq!(Angle::T.doublings_to_clifford(), Some(1));
    /// assert_eq!(Angle::dyadic_pi(1, 5).doublings_to_clifford(), Some(4));
    /// assert_eq!(Angle::radians(0.3).doublings_to_clifford(), None);
    /// ```
    pub fn doublings_to_clifford(self) -> Option<u32> {
        match self {
            Angle::DyadicPi { k, .. } => Some(k.saturating_sub(1)),
            // Not a redundant guard: float literal patterns are deprecated.
            Angle::Radians(theta) => (theta == 0.0).then_some(0),
        }
    }

    /// Numeric value in radians, wrapped into `(−π, π]` for dyadic angles
    /// ≤ 2π.
    pub fn to_radians(self) -> f64 {
        match self {
            Angle::DyadicPi { num, k } => num as f64 * PI / (1u64 << k) as f64,
            Angle::Radians(theta) => theta,
        }
    }

    /// Whether this is an exact dyadic-π angle.
    pub fn is_dyadic(self) -> bool {
        matches!(self, Angle::DyadicPi { .. })
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl PartialEq for Angle {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Angle::DyadicPi { num: n1, k: k1 }, Angle::DyadicPi { num: n2, k: k2 }) => {
                n1 == n2 && k1 == k2
            }
            (Angle::Radians(a), Angle::Radians(b)) => a == b,
            _ => false,
        }
    }
}

impl Add for Angle {
    type Output = Angle;

    /// Sum of two rotations (used when merging adjacent `Rz` gates).
    fn add(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Angle::DyadicPi { num: n1, k: k1 }, Angle::DyadicPi { num: n2, k: k2 }) => {
                let k = k1.max(k2);
                let a = (n1 as i128) << (k - k1);
                let b = (n2 as i128) << (k - k2);
                let sum = a + b;
                // The sum fits i64 after wrapping because both inputs are
                // normalized into (−2^k, 2^k].
                let modulus: i128 = 1i128 << (k + 1);
                let mut wrapped = sum.rem_euclid(modulus);
                if wrapped > modulus / 2 {
                    wrapped -= modulus;
                }
                Angle::normalize(wrapped as i64, k)
            }
            (a, b) => Angle::radians(a.to_radians() + b.to_radians()),
        }
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Angle::DyadicPi { num: 0, .. } => write!(f, "0"),
            Angle::DyadicPi { num, k: 0 } => {
                if num == 1 {
                    write!(f, "pi")
                } else if num == -1 {
                    write!(f, "-pi")
                } else {
                    write!(f, "{num}*pi")
                }
            }
            Angle::DyadicPi { num, k } => {
                let den = 1u64 << k;
                if num == 1 {
                    write!(f, "pi/{den}")
                } else if num == -1 {
                    write!(f, "-pi/{den}")
                } else {
                    write!(f, "{num}*pi/{den}")
                }
            }
            Angle::Radians(theta) => write!(f, "{theta}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_wraps() {
        assert_eq!(Angle::dyadic_pi(4, 3), Angle::dyadic_pi(1, 1));
        assert_eq!(Angle::dyadic_pi(8, 2), Angle::ZERO); // 2π ≡ 0
        assert_eq!(Angle::dyadic_pi(3, 0), Angle::PI); // 3π ≡ π
        assert_eq!(Angle::dyadic_pi(-1, 2), Angle::dyadic_pi(-1, 2));
        assert_eq!(Angle::dyadic_pi(7, 2), Angle::dyadic_pi(-1, 2)); // 7π/4 ≡ −π/4
    }

    #[test]
    fn doubling_ladder_reaches_clifford() {
        let mut a = Angle::dyadic_pi(1, 4); // π/16
        let mut steps = 0;
        while !a.is_clifford() {
            a = a.double();
            steps += 1;
        }
        assert_eq!(steps, 3);
        assert_eq!(a, Angle::S);
        assert_eq!(Angle::dyadic_pi(1, 4).doublings_to_clifford(), Some(3));
    }

    #[test]
    fn doubling_pauli_wraps_to_zero() {
        assert_eq!(Angle::PI.double(), Angle::ZERO);
        assert!(Angle::PI.is_clifford());
    }

    #[test]
    fn radians_never_clifford() {
        let a = Angle::radians(0.7);
        assert!(!a.is_clifford());
        assert_eq!(a.doublings_to_clifford(), None);
        let d = a.double();
        assert!((d.to_radians() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn radians_wraps_into_pi_range() {
        let a = Angle::radians(3.0 * PI);
        assert!((a.to_radians() - PI).abs() < 1e-12);
        let b = Angle::radians(-3.5 * PI);
        assert!(b.to_radians().abs() <= PI + 1e-12);
    }

    #[test]
    fn addition_merges_dyadics() {
        let sum = Angle::T + Angle::T;
        assert_eq!(sum, Angle::S);
        let sum = Angle::dyadic_pi(1, 3) + Angle::dyadic_pi(1, 2);
        assert_eq!(sum, Angle::dyadic_pi(3, 3));
        let cancel = Angle::T + Angle::dyadic_pi(-1, 2);
        assert!(cancel.is_zero());
    }

    #[test]
    fn addition_falls_back_to_radians() {
        let sum = Angle::T + Angle::radians(0.1);
        assert!(!sum.is_dyadic());
        assert!((sum.to_radians() - (PI / 4.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Angle::T.to_string(), "pi/4");
        assert_eq!(Angle::dyadic_pi(-3, 3).to_string(), "-3*pi/8");
        assert_eq!(Angle::PI.to_string(), "pi");
        assert_eq!(Angle::ZERO.to_string(), "0");
    }

    #[test]
    fn large_k_does_not_overflow() {
        let a = Angle::dyadic_pi(1, 60);
        assert_eq!(a.doublings_to_clifford(), Some(59));
        let mut b = a;
        for _ in 0..59 {
            b = b.double();
        }
        assert!(b.is_clifford());
    }
}
