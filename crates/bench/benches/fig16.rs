//! Figure 16 + Table 1 + Appendix A.2: the RUS preparation/injection models.

use rand::SeedableRng;
use rescq_bench::{experiments, print_header};
use rescq_rus::{InjectionStrategy, PreparationModel, RusParams};

fn main() {
    print_header(
        "Figure 16 — |mθ⟩ preparation cost vs d and p",
        "cycles fall with d (rise with p); attempts rise with d — with Monte-Carlo check",
    );
    println!(
        "{:>4} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "d", "p", "E[cycles]", "MC cycles", "E[attempts]", "MC attempts"
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(161616);
    for row in experiments::fig16() {
        let m = PreparationModel::new(RusParams::new(row.d, row.p));
        let n = 4000;
        let mut rounds = 0u64;
        let mut attempts = 0u64;
        for _ in 0..n {
            rounds += m.sample_prep_rounds(&mut rng);
            attempts += m.sample_attempts(&mut rng);
        }
        println!(
            "{:>4} {:>8.0e} {:>12.3} {:>12.3} {:>12.4} {:>12.4}",
            row.d,
            row.p,
            row.expected_cycles,
            rounds as f64 / n as f64 / row.d as f64,
            row.expected_attempts,
            attempts as f64 / n as f64
        );
    }

    print_header("Table 1 — injection strategies", "");
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "strategy", "exposed edge", "ancillas", "cycles"
    );
    for s in [InjectionStrategy::Zz, InjectionStrategy::Cnot] {
        println!(
            "{:>10} {:>12} {:>10} {:>8}",
            s.to_string(),
            s.exposed_edge_name(),
            s.ancillas_required(),
            s.cycles()
        );
    }

    print_header("Appendix A.2 — |mθ⟩ vs T injection", "");
    let a2 = experiments::appendix_a2();
    println!("RUS Rz cost: {:.1} cycles (paper: ≈8.4)", a2.rus_cycles);
    println!(
        "Clifford+T Rz cost: {}–{} cycles (paper: 200–1300)",
        a2.t_range.0, a2.t_range.1
    );
    println!(
        "overhead: {:.0}×–{:.0}× (paper: 20–150×)",
        a2.overhead.0, a2.overhead.1
    );
}
