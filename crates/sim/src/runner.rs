//! Multi-seed experiment runner: the paper executes every benchmark multiple
//! times with unique seeds and reports means with min/max error bars
//! (Fig 10); this module runs those sweeps, in parallel across worker
//! threads.

use crate::artifacts::{simulate_prepared, SimArtifacts};
use crate::{ExecutionReport, SimConfig, SimError};
use rescq_circuit::Circuit;
use std::fmt;
use std::sync::Arc;

/// Aggregate statistics of a multi-seed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Per-seed reports, in seed order.
    pub reports: Vec<ExecutionReport>,
}

impl SweepSummary {
    /// Mean total cycles across seeds.
    pub fn mean_cycles(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.total_cycles()).sum::<f64>() / self.reports.len() as f64
    }

    /// Minimum total cycles (error-bar low).
    pub fn min_cycles(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.total_cycles())
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum total cycles (error-bar high).
    pub fn max_cycles(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.total_cycles())
            .fold(0.0, f64::max)
    }

    /// Mean data-qubit idle fraction.
    pub fn mean_idle_fraction(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.idle_fraction()).sum::<f64>() / self.reports.len() as f64
    }

    /// Merged CNOT latency histogram across seeds.
    pub fn merged_cnot_latency(&self) -> crate::LatencyHistogram {
        let mut h = crate::LatencyHistogram::new();
        for r in &self.reports {
            h.merge(&r.cnot_latency);
        }
        h
    }

    /// Merged Rz latency histogram across seeds.
    pub fn merged_rz_latency(&self) -> crate::LatencyHistogram {
        let mut h = crate::LatencyHistogram::new();
        for r in &self.reports {
            h.merge(&r.rz_latency);
        }
        h
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: mean {:.0} cycles (min {:.0}, max {:.0})",
            self.reports.len(),
            self.mean_cycles(),
            self.min_cycles(),
            self.max_cycles()
        )
    }
}

/// Runs `num_seeds` simulations of `circuit` (seeds `base_seed..`), in
/// parallel across up to `threads` workers.
///
/// The circuit's DAG and the fabric layout are built once and shared
/// read-only across every seed (they depend only on the configuration, not
/// the seed), so adding seeds costs only engine time.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered (runs are independent, so any
/// failure is deterministic for its seed).
pub fn run_seeds(
    circuit: &Circuit,
    config: &SimConfig,
    base_seed: u64,
    num_seeds: u64,
    threads: usize,
) -> Result<SweepSummary, SimError> {
    let artifacts = SimArtifacts::prepare(Arc::new(circuit.clone()), config)?;
    let seeds: Vec<u64> = (0..num_seeds).map(|i| base_seed + i).collect();
    let threads = threads.max(1).min(seeds.len().max(1));
    let mut results: Vec<Option<Result<ExecutionReport, SimError>>> =
        (0..seeds.len()).map(|_| None).collect();

    if threads <= 1 {
        for (slot, &seed) in results.iter_mut().zip(&seeds) {
            let mut cfg = config.clone();
            cfg.seed = seed;
            *slot = Some(simulate_prepared(&artifacts, &cfg));
        }
    } else {
        let chunk = seeds.len().div_ceil(threads);
        let artifacts = &artifacts;
        std::thread::scope(|scope| {
            for (slots, seed_chunk) in results.chunks_mut(chunk).zip(seeds.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, &seed) in slots.iter_mut().zip(seed_chunk) {
                        let mut cfg = config.clone();
                        cfg.seed = seed;
                        *slot = Some(simulate_prepared(artifacts, &cfg));
                    }
                });
            }
        });
    }

    let mut reports = Vec::with_capacity(seeds.len());
    for r in results {
        reports.push(r.expect("all slots filled")?);
    }
    Ok(SweepSummary { reports })
}

/// Geometric mean of a slice of positive ratios (the paper reports geomean
/// speedups across benchmarks).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescq_circuit::Angle;

    fn tiny_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .rz(1, Angle::radians(0.3))
            .cnot(1, 2)
            .rz(2, Angle::T);
        c
    }

    #[test]
    fn sweep_runs_all_seeds() {
        let c = tiny_circuit();
        let s = run_seeds(&c, &SimConfig::default(), 100, 4, 1).unwrap();
        assert_eq!(s.reports.len(), 4);
        let seeds: Vec<u64> = s.reports.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103]);
        assert!(s.min_cycles() <= s.mean_cycles());
        assert!(s.mean_cycles() <= s.max_cycles());
    }

    #[test]
    fn parallel_matches_serial() {
        let c = tiny_circuit();
        let serial = run_seeds(&c, &SimConfig::default(), 1, 6, 1).unwrap();
        let parallel = run_seeds(&c, &SimConfig::default(), 1, 6, 3).unwrap();
        assert_eq!(serial.reports, parallel.reports);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
