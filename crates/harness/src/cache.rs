//! Content-addressed artifact cache shared by every worker of a sweep.
//!
//! Two independent key spaces, because they have different granularity:
//!
//! - **circuits** (and their dependency DAGs) are keyed by
//!   `(workload, circuit_seed)` — every sweep point over the same workload
//!   shares one parse/transpile;
//! - **layouts** (and their ancilla routing graphs) are keyed by the fabric
//!   geometry `(kind, block_columns, qubits, compression, compression_seed)`
//!   — a layout is shared across *workloads* of the same width and across
//!   every scheduler/decoder/seed point on it.
//!
//! Each map slot holds an `Arc<OnceLock<…>>`: the map lock is only held to
//! fetch the slot, and the first worker to reach a slot builds the artifact
//! while later workers block on the `OnceLock` instead of duplicating the
//! work. Failures are cached too (a workload that does not generate fails
//! every job that needs it, once).
//!
//! Layouts can additionally spill to disk ([`ArtifactCache::with_layout_dir`]):
//! qft_n160-sized compressed layouts take seconds to build (every removal
//! re-checks connectivity) but serialize to a few kilobytes, so persisting
//! them under their content address lets repeated sweep *invocations* share
//! the build, not just workers within one process. Entries are validated on
//! load — geometry key, payload checksum, structural cross-checks — and any
//! mismatch or corruption is a silent miss that rebuilds and overwrites.

use rescq_circuit::{fnv1a_64, Circuit, DependencyDag};
use rescq_lattice::{AncillaGraph, Layout, LayoutKind};
use rescq_sim::{build_layout, SimConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached circuit with its dependency DAG.
pub type CircuitArtifact = Result<(Arc<Circuit>, Arc<DependencyDag>), String>;
/// A cached layout with its ancilla routing graph.
pub type LayoutArtifact = Result<(Arc<Layout>, Arc<AncillaGraph>), String>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CircuitKey {
    workload: String,
    seed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LayoutKey {
    kind: LayoutKind,
    block_columns: Option<u32>,
    qubits: u32,
    /// Bit pattern of the compression fraction (exact, hashable).
    compression_bits: u64,
    compression_seed: u64,
}

impl LayoutKey {
    fn of(qubits: u32, config: &SimConfig) -> Self {
        LayoutKey {
            kind: config.layout,
            block_columns: config.block_columns,
            qubits,
            compression_bits: config.compression.to_bits(),
            compression_seed: config.compression_seed,
        }
    }

    /// The canonical content address: written into (and verified against)
    /// every on-disk entry, and hashed into the entry's file name.
    fn canonical(&self) -> String {
        format!(
            "kind={:?}|cols={:?}|qubits={}|comp={:016x}|compseed={}",
            self.kind,
            self.block_columns,
            self.qubits,
            self.compression_bits,
            self.compression_seed
        )
    }

    /// The file hosting this key's on-disk entry.
    fn disk_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!(
            "layout-{:016x}.txt",
            fnv1a_64(self.canonical().bytes())
        ))
    }
}

/// Cache hit/build counters (one sweep's sharing factor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct circuits built.
    pub circuit_builds: u64,
    /// Circuit requests served from the cache.
    pub circuit_hits: u64,
    /// Distinct layouts built.
    pub layout_builds: u64,
    /// Layout requests served from the cache.
    pub layout_hits: u64,
    /// Layouts restored from the on-disk cache instead of being rebuilt
    /// (a subset of `layout_builds` — the slot was still materialized once
    /// this process).
    pub layout_disk_hits: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuits {} built / {} reused; layouts {} built / {} reused",
            self.circuit_builds, self.circuit_hits, self.layout_builds, self.layout_hits
        )?;
        if self.layout_disk_hits > 0 {
            write!(f, " ({} from disk)", self.layout_disk_hits)?;
        }
        Ok(())
    }
}

/// The shared artifact cache of one sweep execution.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    circuits: Mutex<HashMap<CircuitKey, Arc<OnceLock<CircuitArtifact>>>>,
    layouts: Mutex<HashMap<LayoutKey, Arc<OnceLock<LayoutArtifact>>>>,
    /// Directory for content-addressed on-disk layout entries, if spilling
    /// is enabled.
    layout_dir: Option<PathBuf>,
    circuit_builds: AtomicU64,
    circuit_hits: AtomicU64,
    layout_builds: AtomicU64,
    layout_hits: AtomicU64,
    layout_disk_hits: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// An empty cache that additionally persists layouts under `dir`
    /// (created on first write), keyed by the same content address as the
    /// in-memory map, so layouts survive across sweep invocations.
    pub fn with_layout_dir(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache {
            layout_dir: Some(dir.into()),
            ..ArtifactCache::default()
        }
    }

    /// The circuit (and DAG) for `workload`, building it on first request.
    ///
    /// `file:<path>` workloads are read and parsed from disk; everything
    /// else resolves through [`rescq_workloads::generate`].
    ///
    /// # Errors
    ///
    /// Returns the (cached) build error for unknown workloads or unreadable
    /// files.
    pub fn circuit(&self, workload: &str, circuit_seed: u64) -> CircuitArtifact {
        let key = CircuitKey {
            workload: workload.to_string(),
            seed: circuit_seed,
        };
        let cell = {
            let mut map = self.circuits.lock().expect("circuit cache poisoned");
            match map.entry(key) {
                Entry::Occupied(e) => {
                    self.circuit_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.circuit_builds.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        cell.get_or_init(|| build_circuit(workload, circuit_seed))
            .clone()
    }

    /// The layout (and routing graph) for a configuration over a
    /// `qubits`-wide circuit, building it on first request.
    ///
    /// # Errors
    ///
    /// Returns the (cached) build error for unroutable geometries.
    pub fn layout(&self, qubits: u32, config: &SimConfig) -> LayoutArtifact {
        let key = LayoutKey::of(qubits, config);
        let cell = {
            let mut map = self.layouts.lock().expect("layout cache poisoned");
            match map.entry(key.clone()) {
                Entry::Occupied(e) => {
                    self.layout_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.layout_builds.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        cell.get_or_init(|| {
            if let Some(dir) = &self.layout_dir {
                if let Some(layout) = load_disk_layout(&key.disk_path(dir), &key, qubits, config) {
                    self.layout_disk_hits.fetch_add(1, Ordering::Relaxed);
                    let graph = AncillaGraph::from_grid(layout.grid());
                    return Ok((Arc::new(layout), Arc::new(graph)));
                }
            }
            let layout = build_layout(qubits, config).map_err(|e| e.to_string())?;
            if let Some(dir) = &self.layout_dir {
                store_disk_layout(dir, &key, &layout);
            }
            let graph = AncillaGraph::from_grid(layout.grid());
            Ok((Arc::new(layout), Arc::new(graph)))
        })
        .clone()
    }

    /// A snapshot of the hit/build counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            circuit_builds: self.circuit_builds.load(Ordering::Relaxed),
            circuit_hits: self.circuit_hits.load(Ordering::Relaxed),
            layout_builds: self.layout_builds.load(Ordering::Relaxed),
            layout_hits: self.layout_hits.load(Ordering::Relaxed),
            layout_disk_hits: self.layout_disk_hits.load(Ordering::Relaxed),
        }
    }
}

/// Loads, validates and parses one on-disk layout entry. Any failure —
/// unreadable file, wrong header, foreign geometry key, checksum mismatch,
/// structural damage, or disagreement with the *requested* geometry — is a
/// miss (the caller rebuilds and overwrites the entry).
fn load_disk_layout(
    path: &Path,
    key: &LayoutKey,
    qubits: u32,
    config: &SimConfig,
) -> Option<Layout> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.splitn(4, '\n');
    if lines.next() != Some("rescq-layout-cache v1") {
        return None;
    }
    let key_line = lines.next()?.strip_prefix("key ")?;
    if key_line != key.canonical() {
        return None; // geometry mismatch (or a hash collision): invalidate
    }
    let checksum_line = lines.next()?.strip_prefix("checksum ")?;
    let payload = lines.next()?;
    let checksum = u64::from_str_radix(checksum_line, 16).ok()?;
    if fnv1a_64(payload.bytes()) != checksum {
        return None; // corrupted payload
    }
    let layout = Layout::from_cache_string(payload).ok()?;
    // Belt and braces: the parsed fabric must describe what was requested.
    if layout.kind() != config.layout || layout.num_qubits() != qubits || !layout.is_routable() {
        return None;
    }
    Some(layout)
}

/// Best-effort write of one on-disk layout entry (cache write failures must
/// never fail a sweep). The write goes through a temp file + rename so a
/// concurrent sweep process never observes a half-written entry.
fn store_disk_layout(dir: &Path, key: &LayoutKey, layout: &Layout) {
    let payload = layout.to_cache_string();
    let entry = format!(
        "rescq-layout-cache v1\nkey {}\nchecksum {:016x}\n{payload}",
        key.canonical(),
        fnv1a_64(payload.bytes())
    );
    let path = key.disk_path(dir);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&tmp, entry)?;
        std::fs::rename(&tmp, &path)
    };
    if write().is_err() {
        let _ = std::fs::remove_file(&tmp);
        eprintln!("warning: layout-cache write to {} failed", path.display());
    }
}

fn build_circuit(workload: &str, circuit_seed: u64) -> CircuitArtifact {
    let circuit = if let Some(path) = workload.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        rescq_circuit::parse_circuit(&text, None).map_err(|e| e.to_string())?
    } else {
        rescq_workloads::generate(workload, circuit_seed)
            .ok_or_else(|| format!("unknown workload `{workload}`"))?
    };
    let dag = Arc::new(DependencyDag::new(&circuit));
    Ok((Arc::new(circuit), dag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_built_once_per_key() {
        let cache = ArtifactCache::new();
        let (a, _) = cache.circuit("dnn_n16", 1).unwrap();
        let (b, _) = cache.circuit("dnn_n16", 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let (c, _) = cache.circuit("dnn_n16", 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different artifact");
        let s = cache.stats();
        assert_eq!(s.circuit_builds, 2);
        assert_eq!(s.circuit_hits, 1);
    }

    #[test]
    fn layouts_keyed_by_geometry() {
        let cache = ArtifactCache::new();
        let base = SimConfig::default();
        let (l1, g1) = cache.layout(9, &base).unwrap();
        let (l2, g2) = cache.layout(9, &base).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2) && Arc::ptr_eq(&g1, &g2));
        // Scheduler and seed do not affect the key…
        let mut other = base.clone();
        other.scheduler = rescq_core::SchedulerKind::Greedy;
        other.seed = 99;
        let (l3, _) = cache.layout(9, &other).unwrap();
        assert!(Arc::ptr_eq(&l1, &l3));
        // …but compression does.
        let mut compressed = base.clone();
        compressed.compression = 0.5;
        let (l4, _) = cache.layout(9, &compressed).unwrap();
        assert!(!Arc::ptr_eq(&l1, &l4));
        assert!(l4.compression() > 0.0);
        let s = cache.stats();
        assert_eq!(s.layout_builds, 2);
        assert_eq!(s.layout_hits, 2);
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rescq_layout_cache_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn compressed_config() -> SimConfig {
        SimConfig::builder().compression(0.5).build()
    }

    #[test]
    fn disk_layout_cache_persists_across_invocations() {
        let dir = temp_dir("roundtrip");
        let config = compressed_config();

        let first = ArtifactCache::with_layout_dir(&dir);
        let (l1, _) = first.layout(16, &config).unwrap();
        assert_eq!(first.stats().layout_disk_hits, 0, "cold cache builds");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1, "entry spilled");

        // A fresh cache (a new sweep invocation) restores from disk.
        let second = ArtifactCache::with_layout_dir(&dir);
        let (l2, g2) = second.layout(16, &config).unwrap();
        let s = second.stats();
        assert_eq!(s.layout_disk_hits, 1, "warm cache loads from disk");
        assert_eq!(l2.render_ascii(), l1.render_ascii());
        assert_eq!(l2.compression(), l1.compression());
        assert_eq!(g2.len(), l2.ancilla_tiles().len());
        assert!(s.to_string().contains("from disk"));

        // Different geometry writes a second entry, untouched by the first.
        second.layout(9, &SimConfig::default()).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_rebuilt_and_overwritten() {
        let dir = temp_dir("corrupt");
        let config = compressed_config();
        let seed_cache = ArtifactCache::with_layout_dir(&dir);
        let (golden, _) = seed_cache.layout(12, &config).unwrap();
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();

        for damage in [
            "total garbage".to_string(),
            // Valid header, mangled payload (checksum catches it).
            std::fs::read_to_string(&entry).unwrap().replace('a', "v"),
            // Valid checksum over a structurally broken payload.
            {
                let payload = "rescq-layout v1\nkind star2x2\n";
                format!(
                    "rescq-layout-cache v1\nkey {}\nchecksum {:016x}\n{payload}",
                    std::fs::read_to_string(&entry)
                        .unwrap()
                        .lines()
                        .nth(1)
                        .unwrap()
                        .strip_prefix("key ")
                        .unwrap(),
                    fnv1a_64(payload.bytes())
                )
            },
            String::new(),
        ] {
            std::fs::write(&entry, &damage).unwrap();
            let cache = ArtifactCache::with_layout_dir(&dir);
            let (l, _) = cache.layout(12, &config).unwrap();
            assert_eq!(cache.stats().layout_disk_hits, 0, "corrupt entry is a miss");
            assert_eq!(l.render_ascii(), golden.render_ascii(), "rebuild is exact");
        }
        // The rebuild overwrote the damaged entry with a valid one.
        let healed = ArtifactCache::with_layout_dir(&dir);
        healed.layout(12, &config).unwrap();
        assert_eq!(healed.stats().layout_disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_geometry_key_in_entry_is_invalidated() {
        let dir = temp_dir("foreign");
        let config = compressed_config();
        let cache = ArtifactCache::with_layout_dir(&dir);
        cache.layout(12, &config).unwrap();
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        // Simulate a hash collision / stale file: same path, another key.
        let text = std::fs::read_to_string(&entry).unwrap();
        let foreign = text.replace("qubits=12", "qubits=13");
        std::fs::write(&entry, foreign).unwrap();
        let reread = ArtifactCache::with_layout_dir(&dir);
        reread.layout(12, &config).unwrap();
        assert_eq!(
            reread.stats().layout_disk_hits,
            0,
            "mismatched key must not restore"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_workload_error_is_cached() {
        let cache = ArtifactCache::new();
        assert!(cache.circuit("nope_n0", 1).is_err());
        assert!(cache.circuit("nope_n0", 1).is_err());
        let s = cache.stats();
        assert_eq!(s.circuit_builds, 1);
        assert_eq!(s.circuit_hits, 1);
    }
}
