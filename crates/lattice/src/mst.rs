//! Minimum spanning tree with the paper's incremental edge-weight updates
//! (§4.2, §5.4.1).
//!
//! RESCQ routes CNOTs along the MST of the ancilla graph weighted by recent
//! *activity*: the minimax-path property of MSTs guarantees the tree contains,
//! for every node pair, the path minimizing the maximum edge weight — i.e. the
//! path whose busiest ancilla was least busy (§4.2). Because activities change
//! every cycle, §5.4.1 maintains the tree incrementally; only two of the four
//! weight-update cases require structural work:
//!
//! 1. a **non-tree** edge's weight **decreases** → insert it, evict the
//!    heaviest edge of the created cycle;
//! 2. a **tree** edge's weight **increases** → remove it, reconnect the two
//!    components with the lightest crossing edge.
//!
//! Ties are broken by edge id so the tree equals the unique Kruskal MST under
//! the `(weight, id)` total order — property-tested in this module.

use crate::graph::UnionFind;
use std::collections::VecDeque;

/// Identifier of an edge within an [`IncrementalMst`] (its index in the edge
/// list passed at construction).
pub type EdgeId = u32;

/// Dense node index (matches [`crate::AncillaGraph`] indices).
pub type NodeId = u32;

#[derive(Debug, Clone, Copy)]
struct Edge {
    a: NodeId,
    b: NodeId,
    weight: u32,
}

/// Reusable BFS working set for [`IncrementalMst::tree_path_into`]. Holding
/// one of these across queries keeps repeated path lookups allocation-free
/// once its capacity has plateaued at the node count.
#[derive(Debug, Default, Clone)]
pub struct TreePathScratch {
    prev: Vec<u32>,
    queue: VecDeque<NodeId>,
}

/// A dynamically maintained minimum spanning forest over a fixed edge set.
///
/// Construction runs Kruskal; [`IncrementalMst::update_weight`] applies the
/// §5.4.1 cases. On a connected graph the structure is a spanning tree.
///
/// # Example
///
/// ```
/// use rescq_lattice::IncrementalMst;
///
/// // A 4-cycle: 0-1-2-3-0.
/// let edges = vec![(0, 1, 5), (1, 2, 1), (2, 3, 1), (3, 0, 1)];
/// let mut mst = IncrementalMst::new(4, &edges);
/// assert!(!mst.contains_edge(0)); // the weight-5 edge is excluded
///
/// // Its weight drops below the others: it enters, evicting the heaviest
/// // cycle edge.
/// mst.update_weight(0, 0);
/// assert!(mst.contains_edge(0));
/// assert_eq!(mst.total_weight(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalMst {
    num_nodes: usize,
    edges: Vec<Edge>,
    in_tree: Vec<bool>,
    /// Tree adjacency: `(neighbor, edge id)`.
    tree_adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// Reusable working set for [`Self::update_weight`]'s cycle query (case
    /// 1) — per-cycle weight updates must not hit the allocator once warm.
    upd_scratch: TreePathScratch,
    /// Path-node buffer paired with `upd_scratch`.
    upd_path: Vec<NodeId>,
    /// Reusable reachability marks for [`Self::update_weight`]'s reconnect
    /// search (case 2).
    upd_seen: Vec<bool>,
    /// BFS queue paired with `upd_seen`.
    upd_queue: VecDeque<NodeId>,
}

impl IncrementalMst {
    /// Builds the MST of `(a, b, weight)` edges over `num_nodes` nodes via
    /// Kruskal with `(weight, id)` tie-breaking.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `≥ num_nodes`.
    pub fn new(num_nodes: usize, edges: &[(NodeId, NodeId, u32)]) -> Self {
        let edges: Vec<Edge> = edges
            .iter()
            .map(|&(a, b, weight)| {
                assert!((a as usize) < num_nodes && (b as usize) < num_nodes);
                Edge { a, b, weight }
            })
            .collect();
        let mut mst = IncrementalMst {
            num_nodes,
            in_tree: vec![false; edges.len()],
            tree_adj: vec![Vec::new(); num_nodes],
            edges,
            upd_scratch: TreePathScratch::default(),
            upd_path: Vec::new(),
            upd_seen: vec![false; num_nodes],
            upd_queue: VecDeque::new(),
        };
        mst.rebuild();
        mst
    }

    /// Recomputes the tree from scratch (Kruskal). Exposed for benchmarking
    /// against the incremental path.
    pub fn rebuild(&mut self) {
        for v in &mut self.in_tree {
            *v = false;
        }
        for adj in &mut self.tree_adj {
            adj.clear();
        }
        let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
        order.sort_by_key(|&i| (self.edges[i as usize].weight, i));
        let mut uf = UnionFind::new(self.num_nodes);
        for id in order {
            let e = self.edges[id as usize];
            if uf.union(e.a, e.b) {
                self.link(id);
            }
        }
    }

    fn link(&mut self, id: EdgeId) {
        let e = self.edges[id as usize];
        self.in_tree[id as usize] = true;
        self.tree_adj[e.a as usize].push((e.b, id));
        self.tree_adj[e.b as usize].push((e.a, id));
    }

    fn unlink(&mut self, id: EdgeId) {
        let e = self.edges[id as usize];
        self.in_tree[id as usize] = false;
        self.tree_adj[e.a as usize].retain(|&(_, eid)| eid != id);
        self.tree_adj[e.b as usize].retain(|&(_, eid)| eid != id);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges in the underlying graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether edge `id` is currently in the tree.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.in_tree[id as usize]
    }

    /// Current weight of edge `id`.
    pub fn weight(&self, id: EdgeId) -> u32 {
        self.edges[id as usize].weight
    }

    /// Endpoints of edge `id`.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = self.edges[id as usize];
        (e.a, e.b)
    }

    /// Sum of tree edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges
            .iter()
            .zip(&self.in_tree)
            .filter(|(_, &t)| t)
            .map(|(e, _)| e.weight as u64)
            .sum()
    }

    /// Number of tree edges (`num_nodes − #components`).
    pub fn tree_size(&self) -> usize {
        self.in_tree.iter().filter(|&&t| t).count()
    }

    /// Updates edge `id` to `new_weight`, restructuring per §5.4.1.
    ///
    /// Only two cases do structural work; the other two just store the
    /// weight. Amortized cost on grid graphs is `O(path length)`.
    pub fn update_weight(&mut self, id: EdgeId, new_weight: u32) {
        let old = self.edges[id as usize].weight;
        self.edges[id as usize].weight = new_weight;
        if new_weight < old && !self.in_tree[id as usize] {
            // Case 1: cheaper non-tree edge. Insert and evict the heaviest
            // edge on the tree path between its endpoints (the cycle). The
            // path query runs through the held scratch — weight updates
            // arrive every cycle, so this must not hit the allocator warm.
            let e = self.edges[id as usize];
            let mut scratch = std::mem::take(&mut self.upd_scratch);
            let mut nodes = std::mem::take(&mut self.upd_path);
            let connected = self.tree_path_into(e.a, e.b, &mut scratch, &mut nodes);
            self.upd_scratch = scratch;
            if !connected {
                // Endpoints were in different components: the edge now joins
                // them.
                self.upd_path = nodes;
                self.link(id);
                return;
            }
            let mut worst: Option<(u32, EdgeId)> = None;
            for pair in nodes.windows(2) {
                let (u, v) = (pair[0], pair[1]);
                let &(_, eid) = self.tree_adj[u as usize]
                    .iter()
                    .find(|&&(n, _)| n == v)
                    .expect("consecutive path nodes are tree-adjacent");
                let key = (self.edges[eid as usize].weight, eid);
                if worst.is_none_or(|w| key > w) {
                    worst = Some(key);
                }
            }
            self.upd_path = nodes;
            let worst_key = worst.expect("cycle has at least one edge");
            if (new_weight, id) < worst_key {
                self.unlink(worst_key.1);
                self.link(id);
            }
        } else if new_weight > old && self.in_tree[id as usize] {
            // Case 2: tree edge became heavier. Remove it and reconnect with
            // the lightest crossing edge (possibly itself).
            self.unlink(id);
            let e = self.edges[id as usize];
            self.mark_component(e.a);
            let mut best: Option<(u32, EdgeId)> = Some((new_weight, id));
            for (eid, edge) in self.edges.iter().enumerate() {
                let eid = eid as EdgeId;
                if self.in_tree[eid as usize] {
                    continue;
                }
                if self.upd_seen[edge.a as usize] != self.upd_seen[edge.b as usize] {
                    let key = (edge.weight, eid);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            if let Some((_, eid)) = best {
                self.link(eid);
            }
        }
    }

    /// Marks nodes reachable from `start` using tree edges in
    /// `self.upd_seen` (reset first; reused across calls).
    fn mark_component(&mut self, start: NodeId) {
        self.upd_seen.clear();
        self.upd_seen.resize(self.num_nodes, false);
        self.upd_queue.clear();
        self.upd_seen[start as usize] = true;
        self.upd_queue.push_back(start);
        while let Some(u) = self.upd_queue.pop_front() {
            for &(v, _) in &self.tree_adj[u as usize] {
                if !self.upd_seen[v as usize] {
                    self.upd_seen[v as usize] = true;
                    self.upd_queue.push_back(v);
                }
            }
        }
    }

    /// The unique tree path between `a` and `b` as node ids (inclusive), or
    /// `None` if they are in different components.
    pub fn tree_path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        let mut scratch = TreePathScratch::default();
        let mut out = Vec::new();
        self.tree_path_into(a, b, &mut scratch, &mut out)
            .then_some(out)
    }

    /// [`Self::tree_path`] into a caller-provided buffer: writes the path
    /// into `out` (cleared first) and returns whether one exists. The BFS
    /// working set lives in `scratch`, so repeated queries — e.g. path-cache
    /// refills after an MST generation bump — allocate nothing once the
    /// scratch capacity has plateaued.
    pub fn tree_path_into(
        &self,
        a: NodeId,
        b: NodeId,
        scratch: &mut TreePathScratch,
        out: &mut Vec<NodeId>,
    ) -> bool {
        out.clear();
        if a == b {
            out.push(a);
            return true;
        }
        // `prev` doubles as the seen-marker: `UNSEEN` = unvisited, `ROOT`
        // marks the BFS source (node ids never reach either sentinel).
        const UNSEEN: u32 = u32::MAX;
        const ROOT: u32 = u32::MAX - 1;
        scratch.prev.clear();
        scratch.prev.resize(self.num_nodes, UNSEEN);
        scratch.queue.clear();
        scratch.prev[a as usize] = ROOT;
        scratch.queue.push_back(a);
        while let Some(u) = scratch.queue.pop_front() {
            if u == b {
                out.push(b);
                let mut cur = b;
                while scratch.prev[cur as usize] != ROOT {
                    cur = scratch.prev[cur as usize];
                    out.push(cur);
                }
                out.reverse();
                return true;
            }
            for &(v, _) in &self.tree_adj[u as usize] {
                if scratch.prev[v as usize] == UNSEEN {
                    scratch.prev[v as usize] = u;
                    scratch.queue.push_back(v);
                }
            }
        }
        out.clear();
        false
    }

    /// The edge ids along the tree path between `a` and `b`.
    pub fn tree_path_edges(&self, a: NodeId, b: NodeId) -> Option<Vec<EdgeId>> {
        let nodes = self.tree_path(a, b)?;
        let mut out = Vec::with_capacity(nodes.len().saturating_sub(1));
        for pair in nodes.windows(2) {
            let (u, v) = (pair[0], pair[1]);
            let &(_, eid) = self.tree_adj[u as usize]
                .iter()
                .find(|&&(n, _)| n == v)
                .expect("consecutive path nodes are tree-adjacent");
            out.push(eid);
        }
        Some(out)
    }

    /// Maximum edge weight along the tree path (the minimax bottleneck).
    pub fn bottleneck(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let edges = self.tree_path_edges(a, b)?;
        Some(
            edges
                .iter()
                .map(|&e| self.edges[e as usize].weight)
                .max()
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_edges(w: u32, h: u32) -> Vec<(NodeId, NodeId, u32)> {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    edges.push((i, i + 1, 1));
                }
                if y + 1 < h {
                    edges.push((i, i + w, 1));
                }
            }
        }
        edges
    }

    #[test]
    fn kruskal_spans_connected_graph() {
        let mst = IncrementalMst::new(9, &grid_edges(3, 3));
        assert_eq!(mst.tree_size(), 8);
        for a in 0..9 {
            for b in 0..9 {
                assert!(mst.tree_path(a, b).is_some());
            }
        }
    }

    #[test]
    fn case1_insert_cheaper_edge() {
        // Square cycle with one expensive edge.
        let edges = vec![(0, 1, 10), (1, 2, 1), (2, 3, 1), (3, 0, 1)];
        let mut mst = IncrementalMst::new(4, &edges);
        assert!(!mst.contains_edge(0));
        assert_eq!(mst.total_weight(), 3);
        mst.update_weight(0, 0);
        assert!(mst.contains_edge(0));
        assert_eq!(mst.total_weight(), 2);
        assert_eq!(mst.tree_size(), 3);
    }

    #[test]
    fn case1_no_swap_when_still_heaviest() {
        let edges = vec![(0, 1, 10), (1, 2, 1), (2, 3, 1), (3, 0, 1)];
        let mut mst = IncrementalMst::new(4, &edges);
        mst.update_weight(0, 5); // cheaper but still the worst
        assert!(!mst.contains_edge(0));
        assert_eq!(mst.total_weight(), 3);
    }

    #[test]
    fn case2_tree_edge_heavier_gets_replaced() {
        let edges = vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 5)];
        let mut mst = IncrementalMst::new(4, &edges);
        assert!(mst.contains_edge(1));
        mst.update_weight(1, 100);
        assert!(!mst.contains_edge(1));
        assert!(mst.contains_edge(3)); // the weight-5 edge reconnects
        assert_eq!(mst.tree_size(), 3);
        assert_eq!(mst.total_weight(), 1 + 1 + 5);
    }

    #[test]
    fn case2_no_alternative_keeps_edge() {
        // A path graph: removing any edge cannot be repaired.
        let edges = vec![(0, 1, 1), (1, 2, 1)];
        let mut mst = IncrementalMst::new(3, &edges);
        mst.update_weight(0, 50);
        assert!(mst.contains_edge(0));
        assert_eq!(mst.tree_size(), 2);
    }

    #[test]
    fn passive_cases_do_not_restructure() {
        let edges = vec![(0, 1, 10), (1, 2, 1), (2, 3, 1), (3, 0, 1)];
        let mut mst = IncrementalMst::new(4, &edges);
        let before: Vec<bool> = (0..4).map(|i| mst.contains_edge(i)).collect();
        mst.update_weight(1, 0); // tree edge decreases: case 3, no-op
        mst.update_weight(0, 20); // non-tree edge increases: case 4, no-op
        let after: Vec<bool> = (0..4).map(|i| mst.contains_edge(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn bottleneck_is_minimax() {
        let mut edges = grid_edges(3, 3);
        // Make the direct edge 0-1 expensive; the detour 0-3-4-1 is cheaper.
        edges[0].2 = 9;
        let mst = IncrementalMst::new(9, &edges);
        assert_eq!(mst.bottleneck(0, 1), Some(1));
    }

    #[test]
    fn incremental_matches_fresh_kruskal_on_sequence() {
        let mut edges = grid_edges(4, 4);
        let mut inc = IncrementalMst::new(16, &edges);
        // A fixed pseudo-random weight stream.
        let mut state = 0x12345678u64;
        for step in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let eid = (state >> 33) as usize % edges.len();
            let w = ((state >> 16) % 50) as u32;
            edges[eid].2 = w;
            inc.update_weight(eid as u32, w);
            let fresh = IncrementalMst::new(16, &edges);
            assert_eq!(
                inc.total_weight(),
                fresh.total_weight(),
                "diverged at step {step}"
            );
            assert_eq!(inc.tree_size(), 15);
        }
    }

    #[test]
    fn tree_path_endpoints() {
        let mst = IncrementalMst::new(9, &grid_edges(3, 3));
        let p = mst.tree_path(0, 8).unwrap();
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 8);
        assert_eq!(mst.tree_path(4, 4).unwrap(), vec![4]);
        let pe = mst.tree_path_edges(0, 8).unwrap();
        assert_eq!(pe.len(), p.len() - 1);
    }

    #[test]
    fn disconnected_components_handled() {
        let edges = vec![(0, 1, 1), (2, 3, 1)];
        let mut mst = IncrementalMst::new(4, &edges);
        assert_eq!(mst.tree_size(), 2);
        assert!(mst.tree_path(0, 3).is_none());
        mst.update_weight(0, 5);
        assert!(mst.contains_edge(0)); // no alternative: stays
    }
}
