//! Figure 10: normalized average execution time of greedy, AutoBraid and
//! RESCQ* (best k) at d = 7, p = 1e-4. The paper reports a 2× geomean
//! speedup for RESCQ.

use rescq_bench::{experiments, print_header};

fn main() {
    let scale = experiments::ExperimentScale::from_env();
    print_header(
        "Figure 10 — execution time vs baselines (d=7, p=1e-4)",
        "normalized to greedy = 1.0; RESCQ* = best k in {25,50,100,200}",
    );
    let (rows, gm) = experiments::fig10(&scale).expect("fig10 experiment");
    println!(
        "{:<28} {:>9} {:>10} {:>9} {:>7} {:>9}",
        "benchmark", "greedy", "autobraid", "rescq*", "k*", "speedup"
    );
    for r in &rows {
        let base = r.mean_cycles[0];
        println!(
            "{:<28} {:>9.3} {:>10.3} {:>9.3} {:>7} {:>8.2}x",
            r.name,
            1.0,
            r.mean_cycles[1] / base,
            r.mean_cycles[2] / base,
            r.best_k,
            r.speedup()
        );
    }
    println!("geomean RESCQ speedup over best baseline: {gm:.2}x (paper: ≈2x)");
}
