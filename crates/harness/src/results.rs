//! Deterministic aggregation of sweep results: per-job rows, per-point
//! summary statistics, and CSV/JSON writers.
//!
//! Rows are always emitted in job-index order — the executor stores results
//! by index, so output is byte-identical no matter how many workers ran the
//! sweep. Floats are formatted with Rust's shortest-round-trip `Display`,
//! so a checkpointed row parses back to exactly the value that was written.

use crate::cache::CacheStats;
use crate::spec::{fmt_k, fmt_priority, JobSpec, SweepSpec};
use rescq_sim::ExecutionReport;
use std::fmt::Write as _;

/// The scalar metrics of one completed job (one seeded run).
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// The run seed.
    pub seed: u64,
    /// Makespan in lattice-surgery cycles.
    pub total_cycles: f64,
    /// Data-qubit idle fraction.
    pub idle_fraction: f64,
    /// Cycles feed-forward decisions stalled on the decoder.
    pub stall_cycles: f64,
    /// Syndrome windows submitted to the decoder.
    pub decode_windows: u64,
    /// Largest decode backlog observed.
    pub peak_backlog: u64,
    /// Injection attempts.
    pub injections: u64,
    /// Injection failures.
    pub injection_failures: u64,
    /// Preparations started.
    pub preps_started: u64,
    /// Preparations cancelled.
    pub preps_cancelled: u64,
    /// Ledger preemptions applied (constrained-fabric RESCQ).
    pub preemptions: u64,
    /// Preemptions the ledger rejected to keep the wait-for graph acyclic.
    pub preemptions_rejected: u64,
    /// Peak distinct edges in the task wait-for graph.
    pub waitgraph_peak_edges: u64,
    /// Preemptions granted by the priority-class lattice (the preemptor's
    /// class strictly outranked a displaced entry; 0 in class-blind runs).
    pub preemptions_class: u64,
    /// Task-cycles stalled on ancilla contention (no free route tiles).
    pub stall_ancilla: u64,
    /// Task-cycles stalled on decoder backlog (feed-forward gated).
    pub stall_decoder: u64,
    /// Task-cycles stalled on a blocked CNOT route.
    pub stall_route: u64,
    /// Task-cycles stalled after displacement by a higher priority class.
    pub stall_class: u64,
    /// Median CNOT completion latency in cycles.
    pub cnot_p50: u64,
    /// 99th-percentile CNOT completion latency in cycles.
    pub cnot_p99: u64,
    /// 99th-percentile decode-window latency in cycles.
    pub decode_p99: u64,
    /// Defects the union-find decoder observed (0 for latency models).
    pub decode_defects: u64,
    /// Union-find cluster-growth half-steps performed.
    pub decode_growth_steps: u64,
    /// Windows whose residual error crossed the logical cut.
    pub decode_failures: u64,
}

impl JobMetrics {
    /// Extracts the metrics a sweep keeps from a full report.
    pub fn from_report(report: &ExecutionReport) -> Self {
        JobMetrics {
            seed: report.seed,
            total_cycles: report.total_cycles(),
            idle_fraction: report.idle_fraction(),
            stall_cycles: report.decoder_stall_cycles(),
            decode_windows: report.counters.decode_windows,
            peak_backlog: report.counters.decoder_peak_backlog,
            injections: report.counters.injections,
            injection_failures: report.counters.injection_failures,
            preps_started: report.counters.preps_started,
            preps_cancelled: report.counters.preps_cancelled,
            preemptions: report.counters.preemptions,
            preemptions_rejected: report.counters.preemptions_rejected_cycle,
            waitgraph_peak_edges: report.counters.waitgraph_peak_edges,
            preemptions_class: report.counters.preemptions_class,
            stall_ancilla: report.counters.stall_ancilla_cycles,
            stall_decoder: report.counters.stall_decoder_cycles,
            stall_route: report.counters.stall_route_cycles,
            stall_class: report.counters.stall_class_cycles,
            cnot_p50: report.cnot_latency.percentile(0.5),
            cnot_p99: report.cnot_latency.percentile(0.99),
            decode_p99: report.decode_latency.percentile(0.99),
            decode_defects: report.counters.decode_defects,
            decode_growth_steps: report.counters.decode_growth_steps,
            decode_failures: report.counters.decode_failures,
        }
    }
}

/// One job with its outcome (metrics, or the error that stopped it).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job that ran.
    pub job: JobSpec,
    /// Metrics on success, error text on failure.
    pub outcome: Result<JobMetrics, String>,
    /// Whether the result was restored from a checkpoint instead of run.
    pub resumed: bool,
}

/// The CSV column header of per-job rows. `engine_threads` and `priority`
/// sit with the grid columns (they are spec axes, not results — the
/// schedule is bit-identical along `engine_threads`, and `priority` names
/// the arbitration policy a point ran under). The union-find decode-work
/// counters are the last metric columns, per the strip-last-column
/// convention for newly added counters; they are sim-time derived, so the
/// rows stay byte-identical whether or not a run was traced.
pub const CSV_HEADER: &str = "workload,scheduler,distance,error_rate,k,compression,decoder,\
engine_threads,priority,seed,\
total_cycles,idle_fraction,stall_cycles,decode_windows,peak_backlog,injections,\
injection_failures,preps_started,preps_cancelled,preemptions,preemptions_rejected,\
waitgraph_peak_edges,preemptions_class,stall_ancilla,stall_decoder,stall_route,stall_class,\
cnot_p50,cnot_p99,decode_p99,decode_defects,decode_growth_steps,decode_failures";

/// Formats one job + metrics as a CSV row (no trailing newline).
pub fn csv_row(job: &JobSpec, m: &JobMetrics) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        job.workload,
        job.config.scheduler,
        job.config.distance,
        job.config.physical_error_rate,
        fmt_k(job.config.k_policy),
        job.config.compression,
        job.decoder,
        job.config.engine_threads,
        fmt_priority(&job.config.priority_classes),
        m.seed,
        m.total_cycles,
        m.idle_fraction,
        m.stall_cycles,
        m.decode_windows,
        m.peak_backlog,
        m.injections,
        m.injection_failures,
        m.preps_started,
        m.preps_cancelled,
        m.preemptions,
        m.preemptions_rejected,
        m.waitgraph_peak_edges,
        m.preemptions_class,
        m.stall_ancilla,
        m.stall_decoder,
        m.stall_route,
        m.stall_class,
        m.cnot_p50,
        m.cnot_p99,
        m.decode_p99,
        m.decode_defects,
        m.decode_growth_steps,
        m.decode_failures,
    )
}

/// Parses the metric columns of a [`csv_row`] back into [`JobMetrics`]
/// (used by checkpoint resume; the job columns are identified by
/// fingerprint, not re-parsed).
pub fn parse_csv_metrics(row: &str) -> Result<JobMetrics, String> {
    let cols: Vec<&str> = row.split(',').collect();
    // 33 columns since the union-find decode-work counters; older
    // 20/21/23/27/30-column checkpoint rows fail here and are skipped
    // gracefully by the checkpoint loader (the jobs simply re-run).
    if cols.len() != 33 {
        return Err(format!("expected 33 columns, got {}", cols.len()));
    }
    let f = |i: usize| -> Result<f64, String> {
        cols[i]
            .parse()
            .map_err(|_| format!("bad float `{}` in column {i}", cols[i]))
    };
    let u = |i: usize| -> Result<u64, String> {
        cols[i]
            .parse()
            .map_err(|_| format!("bad integer `{}` in column {i}", cols[i]))
    };
    Ok(JobMetrics {
        seed: u(9)?,
        total_cycles: f(10)?,
        idle_fraction: f(11)?,
        stall_cycles: f(12)?,
        decode_windows: u(13)?,
        peak_backlog: u(14)?,
        injections: u(15)?,
        injection_failures: u(16)?,
        preps_started: u(17)?,
        preps_cancelled: u(18)?,
        preemptions: u(19)?,
        preemptions_rejected: u(20)?,
        waitgraph_peak_edges: u(21)?,
        preemptions_class: u(22)?,
        stall_ancilla: u(23)?,
        stall_decoder: u(24)?,
        stall_route: u(25)?,
        stall_class: u(26)?,
        cnot_p50: u(27)?,
        cnot_p99: u(28)?,
        decode_p99: u(29)?,
        decode_defects: u(30)?,
        decode_growth_steps: u(31)?,
        decode_failures: u(32)?,
    })
}

/// Aggregate statistics of one sweep point across its seeds.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// Index of the point in expansion order.
    pub point: usize,
    /// The point's first job (carries every grid coordinate).
    pub job: JobSpec,
    /// Seeds that completed successfully.
    pub completed: u64,
    /// Mean makespan in cycles.
    pub mean_cycles: f64,
    /// Median makespan.
    pub p50_cycles: f64,
    /// 99th-percentile makespan.
    pub p99_cycles: f64,
    /// Minimum makespan.
    pub min_cycles: f64,
    /// Maximum makespan.
    pub max_cycles: f64,
    /// Mean decoder stall cycles.
    pub mean_stall_cycles: f64,
    /// Mean stall fraction of the makespan (`stall / total`, averaged).
    pub stall_fraction: f64,
    /// Largest decode backlog across seeds.
    pub peak_backlog: u64,
    /// Total ledger preemptions across seeds.
    pub preemptions: u64,
    /// Total cycle-rejected preemptions across seeds.
    pub preemptions_rejected: u64,
    /// Total class-lattice-granted preemptions across seeds.
    pub preemptions_class: u64,
    /// Largest wait-for-graph edge peak across seeds.
    pub waitgraph_peak_edges: u64,
    /// Total task-cycles stalled on ancilla contention across seeds.
    pub stall_ancilla: u64,
    /// Total task-cycles stalled on decoder backlog across seeds.
    pub stall_decoder: u64,
    /// Total task-cycles stalled on blocked routes across seeds.
    pub stall_route: u64,
    /// Total task-cycles stalled by class displacement across seeds.
    pub stall_class: u64,
    /// Mean of the per-seed median CNOT latencies (cycles).
    pub cnot_p50: f64,
    /// Worst per-seed p99 CNOT latency across seeds (cycles).
    pub cnot_p99: u64,
    /// Worst per-seed p99 decode-window latency across seeds (cycles).
    pub decode_p99: u64,
    /// Total defects the union-find decoder observed across seeds.
    pub decode_defects: u64,
    /// Total union-find growth half-steps across seeds.
    pub decode_growth_steps: u64,
    /// Total logical-cut crossings after correction across seeds.
    pub decode_failures: u64,
}

/// Smallest value `v` in sorted `xs` such that at least `p` of samples ≤ `v`.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Everything a sweep run produced, in deterministic order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The spec that ran.
    pub spec: SweepSpec,
    /// One record per job, sorted by job index.
    pub records: Vec<JobRecord>,
    /// Artifact-cache counters.
    pub cache: CacheStats,
    /// Wall-clock seconds the execution took.
    pub elapsed_secs: f64,
}

impl SweepResults {
    /// The first job error, if any job failed.
    pub fn first_error(&self) -> Option<&str> {
        self.records
            .iter()
            .find_map(|r| r.outcome.as_ref().err().map(String::as_str))
    }

    /// Number of records restored from a checkpoint.
    pub fn resumed_count(&self) -> usize {
        self.records.iter().filter(|r| r.resumed).count()
    }

    /// Successful `(job, metrics)` pairs in job order.
    pub fn ok_rows(&self) -> impl Iterator<Item = (&JobSpec, &JobMetrics)> {
        self.records
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok().map(|m| (&r.job, m)))
    }

    /// The per-job CSV document (header + one row per successful job, in
    /// job order; failed jobs are omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for (job, m) in self.ok_rows() {
            out.push_str(&csv_row(job, m));
            out.push('\n');
        }
        out
    }

    /// Per-point aggregate statistics, in point order. Records are grouped
    /// by their job's point index (not fixed-size chunks), so sharded
    /// result sets — where a point may hold fewer than `seeds` records —
    /// aggregate correctly too.
    pub fn summaries(&self) -> Vec<PointSummary> {
        let mut out = Vec::new();
        let mut chunks: Vec<&[JobRecord]> = Vec::new();
        let mut start = 0;
        for i in 1..=self.records.len() {
            if i == self.records.len() || self.records[i].job.point != self.records[start].job.point
            {
                chunks.push(&self.records[start..i]);
                start = i;
            }
        }
        for chunk in chunks {
            let Some(first) = chunk.first() else { continue };
            let ok: Vec<&JobMetrics> = chunk
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .collect();
            let mut cycles: Vec<f64> = ok.iter().map(|m| m.total_cycles).collect();
            cycles.sort_by(f64::total_cmp);
            let n = ok.len().max(1) as f64;
            let mean_cycles = ok.iter().map(|m| m.total_cycles).sum::<f64>() / n;
            let mean_stall = ok.iter().map(|m| m.stall_cycles).sum::<f64>() / n;
            let stall_fraction = ok
                .iter()
                .map(|m| {
                    if m.total_cycles > 0.0 {
                        m.stall_cycles / m.total_cycles
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / n;
            out.push(PointSummary {
                point: first.job.point,
                job: first.job.clone(),
                completed: ok.len() as u64,
                mean_cycles,
                p50_cycles: percentile(&cycles, 0.5),
                p99_cycles: percentile(&cycles, 0.99),
                min_cycles: cycles.first().copied().unwrap_or(0.0),
                max_cycles: cycles.last().copied().unwrap_or(0.0),
                mean_stall_cycles: mean_stall,
                stall_fraction,
                peak_backlog: ok.iter().map(|m| m.peak_backlog).max().unwrap_or(0),
                preemptions: ok.iter().map(|m| m.preemptions).sum(),
                preemptions_rejected: ok.iter().map(|m| m.preemptions_rejected).sum(),
                preemptions_class: ok.iter().map(|m| m.preemptions_class).sum(),
                waitgraph_peak_edges: ok.iter().map(|m| m.waitgraph_peak_edges).max().unwrap_or(0),
                stall_ancilla: ok.iter().map(|m| m.stall_ancilla).sum(),
                stall_decoder: ok.iter().map(|m| m.stall_decoder).sum(),
                stall_route: ok.iter().map(|m| m.stall_route).sum(),
                stall_class: ok.iter().map(|m| m.stall_class).sum(),
                cnot_p50: ok.iter().map(|m| m.cnot_p50 as f64).sum::<f64>() / n,
                cnot_p99: ok.iter().map(|m| m.cnot_p99).max().unwrap_or(0),
                decode_p99: ok.iter().map(|m| m.decode_p99).max().unwrap_or(0),
                decode_defects: ok.iter().map(|m| m.decode_defects).sum(),
                decode_growth_steps: ok.iter().map(|m| m.decode_growth_steps).sum(),
                decode_failures: ok.iter().map(|m| m.decode_failures).sum(),
            });
        }
        out
    }

    /// The whole result set as a JSON document: cache stats, per-point
    /// summaries and per-job rows.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"points\": {}, \"jobs\": {}, \"elapsed_secs\": {},",
            self.spec.num_points(),
            self.records.len(),
            self.elapsed_secs
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{\"circuit_builds\": {}, \"circuit_hits\": {}, \"layout_builds\": {}, \"layout_hits\": {}}},",
            self.cache.circuit_builds,
            self.cache.circuit_hits,
            self.cache.layout_builds,
            self.cache.layout_hits
        );
        out.push_str("  \"summaries\": [\n");
        let summaries = self.summaries();
        for (i, s) in summaries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"scheduler\": \"{}\", \"distance\": {}, \"error_rate\": {}, \"k\": \"{}\", \"compression\": {}, \"decoder\": \"{}\", \"engine_threads\": {}, \"priority\": \"{}\", \"completed\": {}, \"mean_cycles\": {}, \"p50_cycles\": {}, \"p99_cycles\": {}, \"min_cycles\": {}, \"max_cycles\": {}, \"mean_stall_cycles\": {}, \"stall_fraction\": {}, \"peak_backlog\": {}, \"preemptions\": {}, \"preemptions_rejected\": {}, \"preemptions_class\": {}, \"waitgraph_peak_edges\": {}, \"stall_ancilla\": {}, \"stall_decoder\": {}, \"stall_route\": {}, \"stall_class\": {}, \"cnot_p50\": {}, \"cnot_p99\": {}, \"decode_p99\": {}, \"decode_defects\": {}, \"decode_growth_steps\": {}, \"decode_failures\": {}}}",
                json_escape(&s.job.workload),
                s.job.config.scheduler,
                s.job.config.distance,
                s.job.config.physical_error_rate,
                fmt_k(s.job.config.k_policy),
                s.job.config.compression,
                s.job.decoder,
                s.job.config.engine_threads,
                fmt_priority(&s.job.config.priority_classes),
                s.completed,
                s.mean_cycles,
                s.p50_cycles,
                s.p99_cycles,
                s.min_cycles,
                s.max_cycles,
                s.mean_stall_cycles,
                s.stall_fraction,
                s.peak_backlog,
                s.preemptions,
                s.preemptions_rejected,
                s.preemptions_class,
                s.waitgraph_peak_edges,
                s.stall_ancilla,
                s.stall_decoder,
                s.stall_route,
                s.stall_class,
                s.cnot_p50,
                s.cnot_p99,
                s.decode_p99,
                s.decode_defects,
                s.decode_growth_steps,
                s.decode_failures
            );
            out.push_str(if i + 1 < summaries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"rows\": [\n");
        let rows: Vec<String> = self
            .ok_rows()
            .map(|(job, m)| format!("    \"{}\"", json_escape(&csv_row(job, m))))
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_sorted_samples() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn csv_metrics_round_trip() {
        let spec = SweepSpec {
            workloads: vec!["dnn_n16".into()],
            ..SweepSpec::default()
        };
        let job = spec.expand().remove(0);
        let m = JobMetrics {
            seed: 1,
            total_cycles: 123.456789,
            idle_fraction: 0.9876543210123,
            stall_cycles: 1.0 / 3.0,
            decode_windows: 42,
            peak_backlog: 7,
            injections: 100,
            injection_failures: 49,
            preps_started: 120,
            preps_cancelled: 3,
            preemptions: 2,
            preemptions_rejected: 5,
            waitgraph_peak_edges: 17,
            preemptions_class: 3,
            stall_ancilla: 11,
            stall_decoder: 6,
            stall_route: 4,
            stall_class: 1,
            cnot_p50: 21,
            cnot_p99: 35,
            decode_p99: 12,
            decode_defects: 9,
            decode_growth_steps: 88,
            decode_failures: 1,
        };
        let row = csv_row(&job, &m);
        assert_eq!(
            parse_csv_metrics(&row).unwrap(),
            m,
            "floats must round-trip"
        );
        assert!(parse_csv_metrics("a,b,c").is_err());
    }
}
