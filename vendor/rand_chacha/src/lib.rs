//! Offline vendored ChaCha8 random number generator.
//!
//! A faithful ChaCha stream cipher core with 8 double-rounds, exposing the
//! [`rand::RngCore`] / [`rand::SeedableRng`] shim traits. The keystream is a
//! real ChaCha8 keystream (RFC 7539 block function with 8 rounds); only the
//! `seed_from_u64` key-expansion (SplitMix64) differs from upstream
//! `rand_chacha`, so seeds are deterministic within this workspace but not
//! bit-compatible with crates.io builds.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha8 generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + nonce state words 4..14 of the initial block matrix.
    key: [u32; 8],
    stream: [u32; 2],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    index: usize,
}

fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x61707865,
            0x3320646E,
            0x79622D32,
            0x6B206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream[0],
            self.stream[1],
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let mut rng = ChaCha8Rng {
            key,
            stream: [0, 0],
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4700..5300).contains(&heads), "heads={heads}");
    }

    #[test]
    fn uniform_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean={mean}");
    }

    #[test]
    fn keystream_words_look_dispersed() {
        // Weak avalanche check: adjacent seeds disagree on most words.
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} identical words");
    }
}
