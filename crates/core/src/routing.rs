//! CNOT path selection.
//!
//! [`plan_cnot_route`] implements the paper's Algorithm 1: consider every
//! pair of (control-adjacent, target-adjacent) ancillas — up to 4 × 4 = 16
//! candidates — connect each pair along the activity-weighted MST, charge
//! 3-cycle edge rotations when the touched side does not expose the required
//! boundary, estimate the start time from the per-ancilla expected free
//! times, and pick the earliest-finishing plan. Tree paths are cached per MST
//! generation (§5.4.2's `O(1)` amortized claim).
//!
//! [`plan_static_route`] is the baselines' routing: BFS shortest path over
//! currently-free ancillas from the control's Z-edge neighbours to the
//! target's X-edge neighbours, requesting an edge rotation when a side has no
//! usable ancilla (paper Fig 4).
//!
//! Both planners are pure functions of their inputs (tree, cache
//! generation, free-time estimates): candidates are enumerated in a fixed
//! adjacency order and ties keep the first candidate — hash maps are only
//! ever used for keyed lookups, never iterated — so route choice is
//! deterministic and thread-count invariant, part of the engine's
//! bit-identical schedule contract.

use crate::SurgeryCosts;
use rescq_circuit::QubitId;
use rescq_lattice::{
    AncillaGraph, AncillaIndex, DataAdjacency, EdgeType, IncrementalMst, Layout, Orientation,
    TreePathScratch,
};
use std::collections::HashMap;

/// A chosen CNOT route.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Ancilla path from the control-side endpoint to the target-side
    /// endpoint, inclusive (dense ancilla indices).
    pub path: Vec<AncillaIndex>,
    /// Whether the control patch must be edge-rotated first (3 cycles).
    pub rotate_control: bool,
    /// Whether the target patch must be edge-rotated first (3 cycles).
    pub rotate_target: bool,
    /// Estimated start round of the surgery (Algorithm 1's `startTime`).
    pub est_start_rounds: u64,
}

impl RoutePlan {
    /// Total estimated completion round: start + rotations + the 2-cycle
    /// surgery (Algorithm 1's `E[𝓅 completes]`).
    pub fn est_completion_rounds(&self, costs: &SurgeryCosts, rounds_per_cycle: u32) -> u64 {
        self.meta().est_completion_rounds(costs, rounds_per_cycle)
    }

    fn meta(&self) -> RoutePlanMeta {
        RoutePlanMeta {
            rotate_control: self.rotate_control,
            rotate_target: self.rotate_target,
            est_start_rounds: self.est_start_rounds,
        }
    }
}

/// The non-path fields of a chosen CNOT route — what
/// [`plan_cnot_route_into`] returns alongside the path it writes into the
/// caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePlanMeta {
    /// Whether the control patch must be edge-rotated first (3 cycles).
    pub rotate_control: bool,
    /// Whether the target patch must be edge-rotated first (3 cycles).
    pub rotate_target: bool,
    /// Estimated start round of the surgery (Algorithm 1's `startTime`).
    pub est_start_rounds: u64,
}

impl RoutePlanMeta {
    /// Total estimated completion round: start + rotations + the 2-cycle
    /// surgery (Algorithm 1's `E[𝓅 completes]`).
    pub fn est_completion_rounds(&self, costs: &SurgeryCosts, rounds_per_cycle: u32) -> u64 {
        let rot = (u64::from(self.rotate_control) + u64::from(self.rotate_target))
            * costs.edge_rotation_cycles as u64;
        self.est_start_rounds + (rot + costs.cnot_cycles as u64) * rounds_per_cycle as u64
    }
}

/// A cached MST tree path. Slots are kept forever and refilled *in place*
/// when the MST generation moves past their stamp, so steady-state lookups
/// never touch the allocator (the map's key set plateaus at the set of
/// endpoint pairs the circuit ever routes between).
#[derive(Debug)]
struct TreeSlot {
    generation: u64,
    has_path: bool,
    path: Vec<AncillaIndex>,
}

/// Cache of MST tree paths, stamped per entry with the MST generation that
/// produced them (§5.4.2), plus a permanent cache of geometric shortest
/// paths (pure functions of the static graph).
#[derive(Debug, Default)]
pub struct PathCache {
    paths: HashMap<(AncillaIndex, AncillaIndex), TreeSlot>,
    geo_paths: HashMap<(AncillaIndex, AncillaIndex), Option<Vec<AncillaIndex>>>,
    bfs: TreePathScratch,
    hits: u64,
    misses: u64,
}

impl PathCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Copies the tree path from `a` to `b` (inclusive, oriented to start at
    /// `a`) into `out` and returns whether one exists. Stale slots are
    /// refilled in place rather than dropped.
    fn get_into(
        &mut self,
        mst: &IncrementalMst,
        generation: u64,
        a: AncillaIndex,
        b: AncillaIndex,
        out: &mut Vec<AncillaIndex>,
    ) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        let slot = self.paths.entry(key).or_insert_with(|| TreeSlot {
            // Deliberately stale stamp: forces the refill branch below.
            generation: generation.wrapping_add(1),
            has_path: false,
            // A tree path visits each node at most once, so this capacity
            // is never outgrown: refills after MST reshapes (which change
            // the path and can lengthen it) stay allocation-free.
            path: Vec::with_capacity(mst.num_nodes()),
        });
        if slot.generation == generation {
            self.hits += 1;
        } else {
            self.misses += 1;
            slot.has_path = mst.tree_path_into(key.0, key.1, &mut self.bfs, &mut slot.path);
            slot.generation = generation;
        }
        if !slot.has_path {
            return false;
        }
        out.clear();
        if slot.path.first() == Some(&a) {
            out.extend_from_slice(&slot.path);
        } else {
            out.extend(slot.path.iter().rev().copied());
        }
        true
    }

    /// Copies the geometric shortest path between two ancillas (oriented to
    /// start at `a`) into `out`; memoised forever (the graph never changes,
    /// so neither does the answer).
    fn get_geo_into(
        &mut self,
        graph: &AncillaGraph,
        a: AncillaIndex,
        b: AncillaIndex,
        out: &mut Vec<AncillaIndex>,
    ) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        let cached = self
            .geo_paths
            .entry(key)
            .or_insert_with(|| graph.shortest_path(&[key.0], &[key.1], |_| false));
        let Some(p) = cached else {
            return false;
        };
        out.clear();
        if p.first() == Some(&a) {
            out.extend_from_slice(p);
        } else {
            out.extend(p.iter().rev().copied());
        }
        true
    }
}

/// Reusable candidate-path buffers for [`plan_cnot_route_into`]. One of
/// these lives in the engine's scratch arena; its capacity plateaus at the
/// longest candidate path.
#[derive(Debug, Default)]
pub struct RouteScratch {
    tree: Vec<AncillaIndex>,
    direct: Vec<AncillaIndex>,
}

/// Plans a CNOT route with Algorithm 1 (RESCQ).
///
/// `expected_free` returns the estimated round at which an ancilla's queue
/// drains (`E[f_a]`, §4.2). Returns `None` only when control or target has no
/// adjacent ancilla at all.
///
/// Thin allocating wrapper over [`plan_cnot_route_into`] (which the engine's
/// hot path calls with recycled buffers).
#[allow(clippy::too_many_arguments)]
pub fn plan_cnot_route(
    layout: &Layout,
    graph: &AncillaGraph,
    mst: &IncrementalMst,
    mst_generation: u64,
    cache: &mut PathCache,
    control: QubitId,
    target: QubitId,
    orientations: &[Orientation],
    costs: &SurgeryCosts,
    rounds_per_cycle: u32,
    expected_free: impl FnMut(AncillaIndex) -> u64,
) -> Option<RoutePlan> {
    let mut scratch = RouteScratch::default();
    let mut path = Vec::new();
    let meta = plan_cnot_route_into(
        graph,
        mst,
        mst_generation,
        cache,
        control,
        target,
        &layout.data_adjacency(control),
        &layout.data_adjacency(target),
        orientations,
        costs,
        rounds_per_cycle,
        expected_free,
        &mut scratch,
        &mut path,
    )?;
    Some(RoutePlan {
        path,
        rotate_control: meta.rotate_control,
        rotate_target: meta.rotate_target,
        est_start_rounds: meta.est_start_rounds,
    })
}

/// [`plan_cnot_route`] writing the winning path into `best_path` (cleared
/// first; left cleared when no route exists) and returning its metadata.
/// The endpoint adjacencies (`c_adj`, `t_adj`) are passed in — the engine
/// precomputes them per qubit — and candidate paths stage through `scratch`,
/// so a steady-state call performs no heap allocation once cache slots and
/// buffer capacities have plateaued.
#[allow(clippy::too_many_arguments)]
pub fn plan_cnot_route_into(
    graph: &AncillaGraph,
    mst: &IncrementalMst,
    mst_generation: u64,
    cache: &mut PathCache,
    control: QubitId,
    target: QubitId,
    c_adj: &DataAdjacency,
    t_adj: &DataAdjacency,
    orientations: &[Orientation],
    costs: &SurgeryCosts,
    rounds_per_cycle: u32,
    mut expected_free: impl FnMut(AncillaIndex) -> u64,
    scratch: &mut RouteScratch,
    best_path: &mut Vec<AncillaIndex>,
) -> Option<RoutePlanMeta> {
    let rot_rounds = costs.edge_rotation_cycles as u64 * rounds_per_cycle as u64;
    let c_orient = orientations[control.index()];
    let t_orient = orientations[target.index()];

    best_path.clear();
    let mut best: Option<RoutePlanMeta> = None;
    for &(c_side, c_tile) in &c_adj.side {
        let Some(a_c) = graph.index_of(c_tile) else {
            continue;
        };
        for &(t_side, t_tile) in &t_adj.side {
            let Some(a_t) = graph.index_of(t_tile) else {
                continue;
            };
            let mut start: u64 = 0;
            // Control interacts through its Z edge (lattice-surgery CNOT).
            let rotate_control = c_orient.edge_at(c_side) != EdgeType::Z;
            if rotate_control {
                start = start.max(expected_free(a_c) + rot_rounds);
            }
            let rotate_target = t_orient.edge_at(t_side) != EdgeType::X;
            if rotate_target {
                start = start.max(expected_free(a_t) + rot_rounds);
            }
            // Two path candidates per endpoint pair: the activity-weighted
            // MST tree path (cheap, precomputed) and the geometric shortest
            // path. On sparse compressed grids tree paths degenerate into
            // long detours whose ancillas rarely all free up together;
            // Algorithm 1 picks whichever candidate finishes first.
            let has_tree = cache.get_into(mst, mst_generation, a_c, a_t, &mut scratch.tree);
            let has_direct = cache.get_geo_into(graph, a_c, a_t, &mut scratch.direct);
            let candidates = [
                has_tree.then_some(&scratch.tree),
                has_direct.then_some(&scratch.direct),
            ];
            for path in candidates.into_iter().flatten() {
                let mut start = start;
                for &a in path {
                    start = start.max(expected_free(a));
                }
                let meta = RoutePlanMeta {
                    rotate_control,
                    rotate_target,
                    est_start_rounds: start,
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        // Earliest completion wins; ties break towards
                        // shorter paths (fewer ancillas claimed ⇒ less
                        // future congestion).
                        let key = (
                            meta.est_completion_rounds(costs, rounds_per_cycle),
                            path.len(),
                        );
                        key < (
                            b.est_completion_rounds(costs, rounds_per_cycle),
                            best_path.len(),
                        )
                    }
                };
                if better {
                    best = Some(meta);
                    best_path.clone_from(path);
                }
            }
        }
    }
    best
}

/// Outcome of the baselines' routing attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticRouteOutcome {
    /// A free path exists now.
    Route {
        /// Ancilla path, control side → target side, inclusive.
        path: Vec<AncillaIndex>,
    },
    /// A boundary must be edge-rotated first, using the given free ancilla.
    NeedRotation {
        /// Which qubit to rotate.
        qubit: QubitId,
        /// The free adjacent ancilla assisting the rotation.
        using: AncillaIndex,
    },
    /// All candidate resources are busy; retry later.
    Blocked,
}

/// Plans a baseline (greedy / AutoBraid) route: BFS over currently-free
/// ancillas. When a qubit's required boundary has no *usable* adjacent
/// ancilla but another side has a free one, an edge rotation is requested
/// (Fig 4b); with every resource busy the outcome is [`StaticRouteOutcome::Blocked`].
pub fn plan_static_route(
    layout: &Layout,
    graph: &AncillaGraph,
    control: QubitId,
    target: QubitId,
    orientations: &[Orientation],
    mut busy: impl FnMut(AncillaIndex) -> bool,
) -> StaticRouteOutcome {
    let endpoints = |q: QubitId, want: EdgeType, busy: &mut dyn FnMut(AncillaIndex) -> bool| {
        let orient = orientations[q.index()];
        let mut free_good = Vec::new();
        let mut any_good = false;
        let mut free_other = None;
        for &(side, tile) in &layout.data_adjacency(q).side {
            let Some(idx) = graph.index_of(tile) else {
                continue;
            };
            if orient.edge_at(side) == want {
                any_good = true;
                if !busy(idx) {
                    free_good.push(idx);
                }
            } else if !busy(idx) && free_other.is_none() {
                free_other = Some(idx);
            }
        }
        (free_good, any_good, free_other)
    };

    let (c_free, c_any, c_other) = endpoints(control, EdgeType::Z, &mut busy);
    let (t_free, t_any, t_other) = endpoints(target, EdgeType::X, &mut busy);

    // No geometric Z-side ancilla at all → the control must rotate.
    if !c_any {
        return match c_other {
            Some(a) => StaticRouteOutcome::NeedRotation {
                qubit: control,
                using: a,
            },
            None => StaticRouteOutcome::Blocked,
        };
    }
    if !t_any {
        return match t_other {
            Some(a) => StaticRouteOutcome::NeedRotation {
                qubit: target,
                using: a,
            },
            None => StaticRouteOutcome::Blocked,
        };
    }
    if c_free.is_empty() {
        // Correct side exists but is busy; a free wrong-side ancilla lets us
        // rotate instead of waiting (Fig 4b's scenario).
        return match c_other {
            Some(a) => StaticRouteOutcome::NeedRotation {
                qubit: control,
                using: a,
            },
            None => StaticRouteOutcome::Blocked,
        };
    }
    if t_free.is_empty() {
        return match t_other {
            Some(a) => StaticRouteOutcome::NeedRotation {
                qubit: target,
                using: a,
            },
            None => StaticRouteOutcome::Blocked,
        };
    }

    match graph.shortest_path(&c_free, &t_free, busy) {
        Some(path) => StaticRouteOutcome::Route { path },
        None => StaticRouteOutcome::Blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescq_lattice::LayoutKind;

    fn setup(n: u32) -> (Layout, AncillaGraph, IncrementalMst) {
        let layout = Layout::new(LayoutKind::Star2x2, n).unwrap();
        let graph = AncillaGraph::from_grid(layout.grid());
        let edges: Vec<(u32, u32, u32)> = graph.edges().iter().map(|&(a, b)| (a, b, 0)).collect();
        let mst = IncrementalMst::new(graph.len(), &edges);
        (layout, graph, mst)
    }

    #[test]
    fn adjacent_qubits_route_without_rotation() {
        let (layout, graph, mst) = setup(4);
        let orientations = vec![Orientation::Standard; 4];
        let mut cache = PathCache::new();
        let plan = plan_cnot_route(
            &layout,
            &graph,
            &mst,
            0,
            &mut cache,
            QubitId(0),
            QubitId(1),
            &orientations,
            &SurgeryCosts::default(),
            7,
            |_| 0,
        )
        .expect("route exists");
        assert!(!plan.rotate_control);
        assert!(!plan.rotate_target);
        assert_eq!(plan.est_start_rounds, 0);
        assert!(!plan.path.is_empty());
    }

    #[test]
    fn rotated_control_pays_penalty() {
        let (layout, graph, mst) = setup(4);
        // Control's patch was flipped by a Hadamard: Z edges now vertical.
        let mut orientations = vec![Orientation::Standard; 4];
        orientations[0] = Orientation::Rotated;
        let mut cache = PathCache::new();
        let plan = plan_cnot_route(
            &layout,
            &graph,
            &mst,
            0,
            &mut cache,
            QubitId(0),
            QubitId(1),
            &orientations,
            &SurgeryCosts::default(),
            7,
            |_| 0,
        )
        .expect("route exists");
        // q0 at (0,1) has ancilla neighbours N (Z under Standard) and E (X).
        // Rotated: N is X, E is Z → either rotate, or approach via E which is
        // now a Z edge — Algorithm 1 should find the rotation-free option.
        assert!(!plan.rotate_control, "E side is a Z edge after rotation");
    }

    #[test]
    fn busy_path_prefers_quieter_candidates() {
        let (layout, graph, mst) = setup(9);
        let orientations = vec![Orientation::Standard; 9];
        let mut cache = PathCache::new();
        // Make one specific endpoint very busy; the planner should avoid it
        // if an alternative with equal geometry exists.
        let busy_tile = layout.data_adjacency(QubitId(0)).side[0].1;
        let busy_idx = graph.index_of(busy_tile).unwrap();
        let plan = plan_cnot_route(
            &layout,
            &graph,
            &mst,
            0,
            &mut cache,
            QubitId(0),
            QubitId(3),
            &orientations,
            &SurgeryCosts::default(),
            7,
            |a| if a == busy_idx { 1000 } else { 0 },
        )
        .expect("route exists");
        assert!(
            !plan.path.contains(&busy_idx) || plan.est_start_rounds >= 1000,
            "planner should route around the busy ancilla when possible"
        );
    }

    #[test]
    fn path_cache_hits_on_repeat() {
        let (layout, graph, mst) = setup(9);
        let orientations = vec![Orientation::Standard; 9];
        let mut cache = PathCache::new();
        for _ in 0..3 {
            let _ = plan_cnot_route(
                &layout,
                &graph,
                &mst,
                0,
                &mut cache,
                QubitId(0),
                QubitId(8),
                &orientations,
                &SurgeryCosts::default(),
                7,
                |_| 0,
            );
        }
        assert!(cache.hits() > 0, "repeated queries should hit the cache");
    }

    #[test]
    fn static_route_simple() {
        let (layout, graph, _) = setup(4);
        let orientations = vec![Orientation::Standard; 4];
        let out = plan_static_route(
            &layout,
            &graph,
            QubitId(0),
            QubitId(1),
            &orientations,
            |_| false,
        );
        match out {
            StaticRouteOutcome::Route { path } => assert!(!path.is_empty()),
            other => panic!("expected a route, got {other:?}"),
        }
    }

    #[test]
    fn static_route_blocked_when_all_busy() {
        let (layout, graph, _) = setup(4);
        let orientations = vec![Orientation::Standard; 4];
        let out = plan_static_route(
            &layout,
            &graph,
            QubitId(0),
            QubitId(1),
            &orientations,
            |_| true,
        );
        assert_eq!(out, StaticRouteOutcome::Blocked);
    }

    #[test]
    fn static_route_requests_rotation_when_z_side_busy() {
        let (layout, graph, _) = setup(4);
        let orientations = vec![Orientation::Standard; 4];
        // Mark every Z-side (north/south) ancilla of q0 busy while keeping
        // its east (X-side) ancilla free: Fig 4b's rotate-instead-of-wait.
        let z_side: Vec<_> = layout
            .data_adjacency(QubitId(0))
            .side
            .iter()
            .filter(|&&(s, _)| s.is_horizontal_boundary())
            .map(|&(_, t)| graph.index_of(t).unwrap())
            .collect();
        assert!(!z_side.is_empty());
        let out = plan_static_route(
            &layout,
            &graph,
            QubitId(0),
            QubitId(1),
            &orientations,
            |a| z_side.contains(&a),
        );
        match out {
            StaticRouteOutcome::NeedRotation { qubit, .. } => assert_eq!(qubit, QubitId(0)),
            other => panic!("expected rotation request, got {other:?}"),
        }
    }
}
