//! §5.4.1 micro-benchmark: incremental MST maintenance cost.
//!
//! The paper reports ≈92 µs per k=200 update batch on a 100×100 grid and
//! ≈330 µs on 1000×1000 (M2 MacBook Air). This bench measures our
//! `IncrementalMst` on the same shapes, plus the full-rebuild alternative the
//! incremental scheme replaces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rescq_lattice::IncrementalMst;

fn grid_edges(w: u32, h: u32) -> Vec<(u32, u32, u32)> {
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                edges.push((i, i + 1, 1));
            }
            if y + 1 < h {
                edges.push((i, i + w, 1));
            }
        }
    }
    edges
}

fn bench_updates(c: &mut Criterion, side: u32, k: usize) {
    let edges = grid_edges(side, side);
    let mst = IncrementalMst::new((side * side) as usize, &edges);
    let mut rng = ChaCha8Rng::seed_from_u64(54);
    let updates: Vec<(u32, u32)> = (0..k)
        .map(|_| {
            (
                rng.gen_range(0..edges.len() as u32),
                rng.gen_range(0..100u32),
            )
        })
        .collect();
    c.bench_function(&format!("mst_incremental_{side}x{side}_k{k}"), |b| {
        b.iter_batched(
            || mst.clone(),
            |mut m| {
                for &(e, w) in &updates {
                    m.update_weight(e, w);
                }
                m
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_rebuild(c: &mut Criterion, side: u32) {
    let edges = grid_edges(side, side);
    c.bench_function(&format!("mst_full_kruskal_{side}x{side}"), |b| {
        b.iter(|| IncrementalMst::new((side * side) as usize, &edges))
    });
}

fn benches(c: &mut Criterion) {
    // The paper's two measurement points at k = 200.
    bench_updates(c, 100, 200);
    bench_rebuild(c, 100);
    if std::env::var("RESCQ_BENCH_FULL").is_ok() {
        bench_updates(c, 1000, 200);
        bench_rebuild(c, 1000);
    }
    // A fabric-sized grid (420-qubit benchmark ⇒ ~36×36 ancilla network).
    bench_updates(c, 36, 200);
}

criterion_group! {
    name = mst;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(mst);
