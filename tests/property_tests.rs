//! Property-based tests spanning crates: parser round-trips, DAG ordering,
//! compression safety, engine determinism on random circuits, decode-backlog
//! conservation, and ideal-decoder equivalence.
//!
//! The container builds offline, so instead of `proptest` these use a small
//! seeded-case harness: every property runs against `CASES` randomly
//! generated inputs drawn from a fixed-seed ChaCha8 stream, making failures
//! reproducible by case index.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rescq_decoder::{DecodeBacklog, DecoderConfig};
use rescq_repro::circuit::{parse_circuit, write_circuit, Angle, Circuit, DependencyDag, Gate};
use rescq_repro::core::SchedulerKind;
use rescq_repro::lattice::{Layout, LayoutKind};
use rescq_repro::sim::{simulate, SimConfig};

const CASES: u64 = 24;

/// Runs `body` once per case with a per-case RNG; panics name the case seed
/// so failures replay exactly.
fn for_each_case(name: &str, body: impl Fn(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0000 ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn arb_gate(rng: &mut ChaCha8Rng, num_qubits: u32) -> Gate {
    let q = rng.gen_range(0..num_qubits);
    match rng.gen_range(0..6u32) {
        0 => Gate::h(q),
        1 => Gate::x(q),
        2 => Gate::z(q),
        3 => Gate::rz(q, Angle::radians(rng.gen_range(0.01f64..3.0))),
        4 => Gate::rz(
            q,
            Angle::dyadic_pi(rng.gen_range(1i64..16), rng.gen_range(0u32..6)),
        ),
        _ => {
            let c = rng.gen_range(0..num_qubits);
            let mut t = rng.gen_range(0..num_qubits - 1);
            if t >= c {
                t += 1;
            }
            Gate::cnot(c, t)
        }
    }
}

fn arb_circuit(rng: &mut ChaCha8Rng) -> Circuit {
    let n = rng.gen_range(2u32..8);
    let len = rng.gen_range(1usize..40);
    let gates: Vec<Gate> = (0..len).map(|_| arb_gate(rng, n)).collect();
    Circuit::from_gates(n, gates).unwrap()
}

#[test]
fn text_format_round_trips() {
    for_each_case("text_format_round_trips", |rng| {
        let circuit = arb_circuit(rng);
        let text = write_circuit(&circuit);
        let parsed = parse_circuit(&text, Some(circuit.num_qubits())).unwrap();
        assert_eq!(parsed.gates(), circuit.gates());
    });
}

#[test]
fn dag_layers_respect_dependencies() {
    for_each_case("dag_layers_respect_dependencies", |rng| {
        let circuit = arb_circuit(rng);
        let dag = DependencyDag::new(&circuit);
        let order: Vec<_> = dag.layers().iter().flatten().copied().collect();
        assert!(dag.respects_dependencies(&order));
    });
}

#[test]
fn compression_preserves_routability() {
    for_each_case("compression_preserves_routability", |rng| {
        let n = rng.gen_range(2u32..20);
        let fraction = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0u64..1000);
        let mut layout = Layout::new(LayoutKind::Star2x2, n).unwrap();
        layout.compress(fraction, seed);
        assert!(layout.is_routable());
    });
}

#[test]
fn engines_are_deterministic() {
    for_each_case("engines_are_deterministic", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        for scheduler in [SchedulerKind::Rescq, SchedulerKind::Greedy] {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let a = simulate(&circuit, &config).unwrap();
            let b = simulate(&circuit, &config).unwrap();
            assert_eq!(a.total_rounds, b.total_rounds);
            assert_eq!(a.gates_executed, circuit.len());
        }
    });
}

#[test]
fn doubling_ladder_always_terminates_for_dyadics() {
    for_each_case("doubling_ladder_always_terminates_for_dyadics", |rng| {
        let mut a = Angle::dyadic_pi(rng.gen_range(1i64..1000), rng.gen_range(0u32..40));
        let mut steps = 0;
        while !a.is_clifford() {
            a = a.double();
            steps += 1;
            assert!(steps <= 40, "ladder failed to terminate");
        }
    });
}

/// Decode-backlog conservation: under random interleavings of enqueues and
/// retirements, `enqueued == decoded + in-flight` at every step.
#[test]
fn decode_backlog_conserves_windows() {
    for_each_case("decode_backlog_conserves_windows", |rng| {
        let mut backlog = DecodeBacklog::new();
        let mut live = Vec::new();
        for step in 0..rng.gen_range(10u32..200) {
            let retire = !live.is_empty() && rng.gen_bool(0.4);
            if retire {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                backlog.retire(id);
            } else {
                let tile = rng.gen_range(0u32..8);
                let rounds = rng.gen_range(1u32..64);
                let id = backlog.enqueue(tile, rounds, step as u64, step as u64 + 5);
                live.push(id);
            }
            assert!(backlog.is_conserved(), "conservation broken at step {step}");
            assert_eq!(backlog.in_flight(), live.len());
        }
        for id in live {
            backlog.retire(id);
        }
        assert!(backlog.is_conserved());
        assert_eq!(backlog.total_enqueued(), backlog.total_decoded());
    });
}

/// The engines keep the backlog conserved end to end: every window submitted
/// during a run is decoded by the time the run completes.
#[test]
fn simulated_runs_drain_the_decode_backlog() {
    for_each_case("simulated_runs_drain_the_decode_backlog", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        let decoder = if rng.gen_bool(0.5) {
            DecoderConfig::fixed(rng.gen_range(0.25f64..2.0))
        } else {
            DecoderConfig::adaptive(rng.gen_range(0.25f64..2.0), rng.gen_range(1usize..5))
        };
        for scheduler in [SchedulerKind::Rescq, SchedulerKind::Greedy] {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .decoder(decoder)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let r = simulate(&circuit, &config).unwrap();
            assert_eq!(
                r.counters.decode_windows,
                r.decode_latency.count(),
                "{scheduler}: every submitted window must be decoded and consumed"
            );
            assert_eq!(r.counters.decode_windows, r.counters.injections);
        }
    });
}

/// The ideal decoder is invisible: explicitly configuring it reproduces the
/// default configuration's reports bit for bit, with zero stall rounds.
#[test]
fn ideal_decoder_reproduces_existing_results_exactly() {
    for_each_case("ideal_decoder_reproduces_existing_results_exactly", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(0u64..50);
        for scheduler in [
            SchedulerKind::Rescq,
            SchedulerKind::Greedy,
            SchedulerKind::Autobraid,
        ] {
            let base = SimConfig::builder()
                .scheduler(scheduler)
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let explicit = SimConfig::builder()
                .scheduler(scheduler)
                .decoder(DecoderConfig::ideal())
                .seed(seed)
                .max_cycles(500_000)
                .build();
            let a = simulate(&circuit, &base).unwrap();
            let b = simulate(&circuit, &explicit).unwrap();
            assert_eq!(a, b, "{scheduler}: ideal decoder must be invisible");
            assert_eq!(a.counters.decoder_stall_rounds, 0);
            assert_eq!(a.decoder_stall_cycles(), 0.0);
        }
    });
}
