//! The reservation ledger: an explicit, checkable wait-for graph over the
//! per-ancilla queues, with seniority-safe preemption.
//!
//! RESCQ's per-ancilla FIFO queues (§4.1) keep the task-level wait-for
//! relation acyclic by construction: tasks are enqueued atomically in
//! scheduling order, so every queue agrees on the relative order of any two
//! tasks and every wait-for edge points from a younger task to an older one.
//! That invariant is also what made the scheduler fragile: *any* reordering
//! (yielding a speculative preparation to an older stalled CNOT, re-planning
//! a route into fresh queue positions) risks creating inconsistent orders
//! across ancillas — two tasks each waiting behind the other — and a naive
//! move-top-entry-to-back yield deadlocks exactly that way.
//!
//! [`ReservationLedger`] makes the relation first-class. It owns every
//! [`AncillaQueue`], assigns each entry a [`ReservationId`], and maintains
//! the wait-for multigraph incrementally as entries are pushed, popped,
//! removed and reordered: queue `[e₀, e₁, …]` contributes one `task(eⱼ) →
//! task(eᵢ)` edge for every `i < j` with distinct tasks ("`eⱼ` waits for
//! `eᵢ`"). [`ReservationLedger::try_preempt`] reorders an older stalled
//! task ahead of the younger speculative preparations blocking it **only
//! when an incremental cycle check proves the reversed edges keep the graph
//! acyclic** — the mechanism the naive yield lacked. Rejected preemptions
//! leave the ledger untouched and are counted, so schedulers can observe
//! how often the safety check bites.

use crate::queue::{AncillaQueue, EntryStatus, QueueEntry, Role};
use crate::types::TaskId;
use rescq_circuit::Angle;
use std::collections::{HashMap, HashSet};

/// Identifier of one queue reservation (unique within a ledger's lifetime).
///
/// Entries pushed through a [`ReservationLedger`] carry the id of the
/// reservation that backs them; entries constructed standalone carry
/// [`ReservationId::UNREGISTERED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReservationId(pub u64);

impl ReservationId {
    /// Placeholder for entries not (yet) registered with a ledger.
    pub const UNREGISTERED: ReservationId = ReservationId(0);
}

/// Identifier of one scheduling shard: a contiguous region of the ancilla
/// network served by one scheduling worker (the partition itself lives with
/// the engine; the ledger only tags claims and preemptions with the shards
/// involved so cross-shard arbitration is observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Counters describing a ledger's preemption and wait-graph history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Preemptions applied (an older task reordered ahead of younger
    /// speculative preparations).
    pub preemptions: u64,
    /// Preemptions rejected because the reversed wait-for edges would have
    /// created a cycle (the naive-yield deadlock, caught).
    pub preemptions_rejected_cycle: u64,
    /// Applied preemptions whose target ancilla lay outside the preempting
    /// task's home shard ([`ReservationLedger::try_preempt_across`]).
    pub preemptions_cross_shard: u64,
    /// Claims registered on an ancilla hosted outside the claiming task's
    /// home shard ([`ReservationLedger::push_claim`]).
    pub claims_cross_shard: u64,
    /// Largest number of distinct edges the wait-for graph ever held.
    pub waitgraph_peak_edges: u64,
}

/// Outcome of a [`ReservationLedger::try_preempt`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preemption {
    /// The reorder was applied; the graph is still acyclic. Carries the task
    /// whose entry was displaced from the queue top (its in-flight
    /// preparation, if any, must be cancelled by the caller).
    Applied {
        /// Task whose entry sat at the top before the reorder.
        displaced_top: TaskId,
    },
    /// The reorder would have made the wait-for graph cyclic; nothing
    /// changed.
    RejectedCycle,
    /// The task has no entry here, is already at the top, or something ahead
    /// of it is not a preemptible speculative preparation (wrong role,
    /// already executing or holding a state, or not younger); nothing
    /// changed.
    NotEligible,
}

/// The reservation ledger: every ancilla queue plus the task-level wait-for
/// graph they imply, kept in sync incrementally.
///
/// # Example
///
/// ```
/// use rescq_circuit::Angle;
/// use rescq_core::{Preemption, QueueEntry, ReservationLedger, Role, TaskId};
///
/// let mut ledger = ReservationLedger::new(2);
/// // Task 1's speculative prep reached ancilla 0 first; task 0's CNOT
/// // route entry queued behind it.
/// ledger.push(0, QueueEntry::new(TaskId(1), Role::PrepZz, Angle::T));
/// ledger.push(0, QueueEntry::new(TaskId(0), Role::Route, Angle::ZERO));
/// // The older CNOT preempts: the reorder is provably cycle-free.
/// assert_eq!(
///     ledger.try_preempt(TaskId(0), 0),
///     Preemption::Applied { displaced_top: TaskId(1) }
/// );
/// assert_eq!(ledger.queue(0).top().unwrap().task, TaskId(0));
/// assert!(ledger.is_acyclic());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReservationLedger {
    queues: Vec<AncillaQueue>,
    next_id: u64,
    /// Wait-for adjacency: waiter → (holder → multiplicity). An edge exists
    /// while any queue holds an entry of `waiter` behind one of `holder`.
    edges: HashMap<TaskId, HashMap<TaskId, u32>>,
    /// Current number of distinct (waiter, holder) pairs.
    edge_count: u64,
    stats: LedgerStats,
}

impl ReservationLedger {
    /// Creates a ledger over `num_ancillas` empty queues.
    pub fn new(num_ancillas: usize) -> Self {
        ReservationLedger {
            queues: vec![AncillaQueue::new(); num_ancillas],
            next_id: 0,
            edges: HashMap::new(),
            edge_count: 0,
            stats: LedgerStats::default(),
        }
    }

    /// Number of ancilla queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Read access to ancilla `a`'s queue.
    pub fn queue(&self, a: u32) -> &AncillaQueue {
        &self.queues[a as usize]
    }

    /// Iterates `(ancilla, queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (u32, &AncillaQueue)> {
        self.queues.iter().enumerate().map(|(i, q)| (i as u32, q))
    }

    /// Ledger counters.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// Current number of distinct wait-for edges.
    pub fn current_edges(&self) -> u64 {
        self.edge_count
    }

    /// Appends `entry` to ancilla `a`'s queue, assigning it a fresh
    /// reservation id and inserting its wait-for edges. Returns the id.
    pub fn push(&mut self, a: u32, mut entry: QueueEntry) -> ReservationId {
        self.next_id += 1;
        let id = ReservationId(self.next_id);
        entry.reservation = id;
        // Incremental edge insertion: the new back entry waits for every
        // distinct task already queued ahead of it.
        let waiters: Vec<TaskId> = self.queues[a as usize]
            .iter()
            .map(|e| e.task)
            .filter(|&t| t != entry.task)
            .collect();
        for holder in waiters {
            self.add_edge(entry.task, holder);
        }
        self.queues[a as usize].push(entry);
        id
    }

    /// [`Self::push`] tagged with the shards involved: `owner` is the home
    /// shard of the claiming task, `host` the shard hosting ancilla `a`.
    /// The claim itself is identical to a plain push — arbitration is by
    /// queue seniority and the wait-for graph, never by shard — but
    /// cross-shard claims are counted so a sharded engine can observe how
    /// often work crosses region boundaries (e.g. a CNOT route leaving its
    /// home region).
    pub fn push_claim(
        &mut self,
        a: u32,
        entry: QueueEntry,
        owner: ShardId,
        host: ShardId,
    ) -> ReservationId {
        if owner != host {
            self.stats.claims_cross_shard += 1;
        }
        self.push(a, entry)
    }

    /// Pops the top entry of ancilla `a`, releasing the edges it held.
    pub fn pop(&mut self, a: u32) -> Option<QueueEntry> {
        self.mutate(a, |q| q.pop())
    }

    /// Removes every entry of `task` from ancilla `a`'s queue, releasing the
    /// edges. Returns how many entries were removed.
    pub fn remove_task(&mut self, a: u32, task: TaskId) -> usize {
        if !self.queues[a as usize].contains_task(task) {
            return 0;
        }
        self.mutate(a, |q| q.remove_task(task))
    }

    /// Rewrites the ladder angle of `task`'s entry on ancilla `a` in place
    /// (§4.1's `Rθ → R2θ` update; queue position — and therefore the wait
    /// graph — is untouched).
    pub fn update_angle(&mut self, a: u32, task: TaskId, angle: Angle) -> bool {
        self.queues[a as usize].update_angle(task, angle)
    }

    /// Sets the status of ancilla `a`'s top entry, if any.
    pub fn set_top_status(&mut self, a: u32, status: EntryStatus) {
        self.queues[a as usize].set_status_at(0, status);
    }

    /// Sets the status of ancilla `a`'s top entry only when it belongs to
    /// `task`.
    pub fn set_top_status_if(&mut self, a: u32, task: TaskId, status: EntryStatus) {
        if self.queues[a as usize]
            .top()
            .is_some_and(|e| e.task == task)
        {
            self.queues[a as usize].set_status_at(0, status);
        }
    }

    /// Attempts to reorder `task`'s entry on ancilla `a` to the top, ahead
    /// of the speculative preparations currently blocking it.
    ///
    /// Eligibility (checked first; failures return
    /// [`Preemption::NotEligible`] and change nothing): `task` must have an
    /// entry that is not already the top, and **every** entry ahead of it
    /// must be a speculative preparation of a strictly *younger* task that
    /// is not executing and not holding a finished state — seniority-safe
    /// means only older work may overtake, and only work that can actually
    /// yield.
    ///
    /// The reorder reverses wait-for edges (each displaced preparation now
    /// waits for `task`). Those insertions are committed only if an
    /// incremental cycle check proves the graph stays acyclic; otherwise the
    /// queue is restored and [`Preemption::RejectedCycle`] is returned —
    /// this is precisely the case where a naive yield would have deadlocked.
    pub fn try_preempt(&mut self, task: TaskId, a: u32) -> Preemption {
        self.try_preempt_with(task, a, |e| e.task > task)
    }

    /// [`Self::try_preempt_with`] tagged with the shards involved: `owner`
    /// is the preempting task's home shard, `host` the shard hosting
    /// ancilla `a`.
    ///
    /// Cross-shard preemptions go through exactly the same ledger-level
    /// arbitration — the structural eligibility check and the incremental
    /// acyclicity proof are shard-agnostic, which is what makes them safe
    /// regardless of which scheduling worker proposed the reorder — but
    /// applied reorders that crossed a shard boundary are counted in
    /// [`LedgerStats::preemptions_cross_shard`].
    pub fn try_preempt_across(
        &mut self,
        task: TaskId,
        a: u32,
        owner: ShardId,
        host: ShardId,
        may_displace: impl Fn(&QueueEntry) -> bool,
    ) -> Preemption {
        let outcome = self.try_preempt_with(task, a, may_displace);
        if owner != host {
            if let Preemption::Applied { .. } = outcome {
                self.stats.preemptions_cross_shard += 1;
            }
        }
        outcome
    }

    /// [`Self::try_preempt`] with a caller-supplied speculation test.
    ///
    /// The ledger still enforces the structural half of eligibility (every
    /// entry ahead is a preparation that is not executing and not holding a
    /// state) and the acyclicity check; `may_displace` decides *which*
    /// preparations count as speculative enough to yield. The default
    /// [`Self::try_preempt`] passes strict seniority (`prep.task > task`);
    /// an engine that knows more — e.g. that a preparation's owner cannot
    /// inject yet because its predecessor gates are incomplete — can widen
    /// the test without touching the safety invariant.
    pub fn try_preempt_with(
        &mut self,
        task: TaskId,
        a: u32,
        may_displace: impl Fn(&QueueEntry) -> bool,
    ) -> Preemption {
        let q = &self.queues[a as usize];
        let Some(pos) = q.position(task) else {
            return Preemption::NotEligible;
        };
        if pos == 0 {
            return Preemption::NotEligible;
        }
        for e in q.iter().take(pos) {
            // Preparations may yield while not yet done (no state is lost);
            // helper entries are pure claims and may always structurally
            // yield. Executing or state-holding entries never yield.
            let structurally_yields = (e.role.is_prep()
                && matches!(e.status, EntryStatus::Ready | EntryStatus::Preparing))
                || (e.role == Role::Helper && e.status == EntryStatus::Ready);
            if !structurally_yields || !may_displace(e) {
                return Preemption::NotEligible;
            }
        }
        let displaced_top = q.top().expect("pos > 0").task;
        // Incremental cycle check. The reorder changes exactly one set of
        // edges: each `task → p` pair this queue contributed (for every
        // entry `p` ahead of `task`) reverses into `p → task`. Adding
        // `p → task` closes a cycle iff `task` already reaches `p` without
        // the removed pairs — so one targeted reachability walk from `task`
        // (skipping this queue's doomed `task → p` multiplicities) decides
        // the whole reorder, touching only the reachable subgraph and
        // mutating nothing on rejection. This is the check whose absence
        // made the naive yield deadlock on inconsistent cross-ancilla
        // orders.
        let mut displaced: HashMap<TaskId, u32> = HashMap::new();
        for e in q.iter().take(pos) {
            *displaced.entry(e.task).or_insert(0) += 1;
        }
        if self.reaches_any_without(task, &displaced) {
            self.stats.preemptions_rejected_cycle += 1;
            return Preemption::RejectedCycle;
        }
        self.mutate(a, |q| q.move_to_front(pos));
        debug_assert!(self.is_acyclic(), "accepted preemption broke acyclicity");
        // Displaced preparations restart from Ready when they return to
        // the top (their in-flight preparation is cancelled by the
        // caller via the returned `displaced_top`).
        for i in 1..=pos {
            self.queues[a as usize].set_status_at(i, EntryStatus::Ready);
        }
        self.stats.preemptions += 1;
        Preemption::Applied { displaced_top }
    }

    /// Whether `from` reaches any key of `doomed` in the wait-for graph
    /// *minus* the about-to-be-removed `from → key` multiplicities (the
    /// value is how many of that pair's edges the reorder deletes). Edges
    /// between other nodes — including this queue's surviving pairs — stay
    /// traversable.
    fn reaches_any_without(&self, from: TaskId, doomed: &HashMap<TaskId, u32>) -> bool {
        let mut stack = vec![from];
        let mut seen: HashSet<TaskId> = HashSet::new();
        seen.insert(from);
        while let Some(u) = stack.pop() {
            let Some(succs) = self.edges.get(&u) else {
                continue;
            };
            for (&v, &count) in succs {
                let removed = if u == from {
                    doomed.get(&v).copied().unwrap_or(0)
                } else {
                    0
                };
                if count <= removed {
                    continue; // every such edge disappears with the reorder
                }
                if doomed.contains_key(&v) {
                    return true;
                }
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Whether the wait-for graph is acyclic (it always is after any public
    /// mutation; exposed for property tests and debug assertions).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-colour DFS over the adjacency map.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<TaskId, Colour> = HashMap::new();
        let mut starts: Vec<TaskId> = self.edges.keys().copied().collect();
        starts.sort_unstable();
        for start in starts {
            if *colour.get(&start).unwrap_or(&Colour::White) != Colour::White {
                continue;
            }
            // Stack of (node, next-neighbour cursor).
            let mut stack: Vec<(TaskId, Vec<TaskId>)> = vec![(start, self.successors(start))];
            colour.insert(start, Colour::Grey);
            while let Some((node, succs)) = stack.last_mut() {
                if let Some(next) = succs.pop() {
                    match *colour.get(&next).unwrap_or(&Colour::White) {
                        Colour::Grey => return false,
                        Colour::Black => {}
                        Colour::White => {
                            colour.insert(next, Colour::Grey);
                            let s = self.successors(next);
                            stack.push((next, s));
                        }
                    }
                } else {
                    colour.insert(*node, Colour::Black);
                    stack.pop();
                }
            }
        }
        true
    }

    /// Ordered successor list of `task` (deterministic iteration).
    fn successors(&self, task: TaskId) -> Vec<TaskId> {
        let mut s: Vec<TaskId> = self
            .edges
            .get(&task)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        s.sort_unstable();
        s
    }

    /// Applies `f` to queue `a` and reconciles the wait-for graph with the
    /// queue's new contents (remove old contribution, insert new one).
    fn mutate<R>(&mut self, a: u32, f: impl FnOnce(&mut AncillaQueue) -> R) -> R {
        let old = Self::queue_pairs(&self.queues[a as usize]);
        let r = f(&mut self.queues[a as usize]);
        let new = Self::queue_pairs(&self.queues[a as usize]);
        if old != new {
            for &(w, h) in &old {
                self.remove_edge(w, h);
            }
            for &(w, h) in &new {
                self.add_edge(w, h);
            }
        }
        r
    }

    /// The (waiter, holder) pairs a queue contributes: entry `j` waits for
    /// every distinct-task entry `i < j`.
    fn queue_pairs(q: &AncillaQueue) -> Vec<(TaskId, TaskId)> {
        let tasks: Vec<TaskId> = q.iter().map(|e| e.task).collect();
        let mut pairs = Vec::new();
        for j in 1..tasks.len() {
            for i in 0..j {
                if tasks[i] != tasks[j] {
                    pairs.push((tasks[j], tasks[i]));
                }
            }
        }
        pairs
    }

    fn add_edge(&mut self, waiter: TaskId, holder: TaskId) {
        let m = self.edges.entry(waiter).or_default();
        let count = m.entry(holder).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.edge_count += 1;
            self.stats.waitgraph_peak_edges = self.stats.waitgraph_peak_edges.max(self.edge_count);
        }
    }

    fn remove_edge(&mut self, waiter: TaskId, holder: TaskId) {
        let Some(m) = self.edges.get_mut(&waiter) else {
            debug_assert!(false, "removing unknown edge {waiter}->{holder}");
            return;
        };
        let Some(count) = m.get_mut(&holder) else {
            debug_assert!(false, "removing unknown edge {waiter}->{holder}");
            return;
        };
        *count -= 1;
        if *count == 0 {
            m.remove(&holder);
            self.edge_count -= 1;
            if m.is_empty() {
                self.edges.remove(&waiter);
            }
        }
    }
}

// Send/Sync audit: a sharded engine hands read-only views of the ledger and
// its queues to scheduling workers on other threads, so every type on that
// path must be `Send + Sync`. Asserted at compile time — a field change that
// introduces interior mutability or a thread-bound type fails the build
// here, not in a data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReservationLedger>();
    assert_send_sync::<AncillaQueue>();
    assert_send_sync::<QueueEntry>();
    assert_send_sync::<EntryStatus>();
    assert_send_sync::<ReservationId>();
    assert_send_sync::<ShardId>();
    assert_send_sync::<Preemption>();
    assert_send_sync::<LedgerStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Role;

    fn prep(task: u32) -> QueueEntry {
        QueueEntry::new(TaskId(task), Role::PrepZz, Angle::T)
    }

    fn route(task: u32) -> QueueEntry {
        QueueEntry::new(TaskId(task), Role::Route, Angle::ZERO)
    }

    #[test]
    fn push_assigns_fresh_reservation_ids() {
        let mut l = ReservationLedger::new(2);
        let a = l.push(0, route(0));
        let b = l.push(1, route(0));
        assert_ne!(a, b);
        assert_ne!(a, ReservationId::UNREGISTERED);
        assert_eq!(l.queue(0).top().unwrap().reservation, a);
    }

    #[test]
    fn fifo_pushes_keep_edges_younger_to_older() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(0));
        l.push(0, route(1));
        l.push(0, route(2));
        // Edges 1->0, 2->0, 2->1.
        assert_eq!(l.current_edges(), 3);
        assert!(l.is_acyclic());
        l.pop(0);
        assert_eq!(l.current_edges(), 1);
        l.remove_task(0, TaskId(2));
        assert_eq!(l.current_edges(), 0);
        assert_eq!(l.stats().waitgraph_peak_edges, 3);
    }

    #[test]
    fn duplicate_task_entries_contribute_no_self_edges() {
        let mut l = ReservationLedger::new(1);
        l.push(0, route(5));
        l.push(0, QueueEntry::new(TaskId(5), Role::EdgeRotate, Angle::ZERO));
        assert_eq!(l.current_edges(), 0);
        assert_eq!(l.remove_task(0, TaskId(5)), 2);
    }

    #[test]
    fn preempt_applies_when_cycle_free() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(3));
        l.push(0, prep(4));
        l.push(0, route(1));
        let got = l.try_preempt(TaskId(1), 0);
        assert_eq!(
            got,
            Preemption::Applied {
                displaced_top: TaskId(3)
            }
        );
        let order: Vec<u32> = l.queue(0).iter().map(|e| e.task.0).collect();
        assert_eq!(order, vec![1, 3, 4]);
        assert!(l.is_acyclic());
        assert_eq!(l.stats().preemptions, 1);
        // Displaced preparations are reset to Ready.
        assert!(l
            .queue(0)
            .iter()
            .skip(1)
            .all(|e| e.status == EntryStatus::Ready));
    }

    #[test]
    fn preempt_requires_strict_seniority() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(1));
        l.push(0, route(2));
        // Task 2 is younger than the prep ahead of it: not eligible.
        assert_eq!(l.try_preempt(TaskId(2), 0), Preemption::NotEligible);
    }

    #[test]
    fn preempt_refuses_executing_and_holding_preps() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(5));
        l.push(0, route(1));
        l.set_top_status(0, EntryStatus::DonePreparing);
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::NotEligible);
        l.set_top_status(0, EntryStatus::Executing);
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::NotEligible);
        l.set_top_status(0, EntryStatus::Preparing);
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
    }

    #[test]
    fn preempt_rejects_the_naive_yield_deadlock() {
        // The counterexample that sank the naive move-top-to-back yield:
        // after a re-plan, task 1's route entries sit behind task 2's preps
        // on BOTH ancillas. Reordering either queue alone reverses only one
        // of the two `1 → 2` waits, leaving `1 → 2` (other queue) and
        // `2 → 1` (this queue) — a cycle, i.e. the naive yield's deadlock.
        let mut l = ReservationLedger::new(2);
        l.push(0, prep(2));
        l.push(0, route(1));
        l.push(1, prep(2));
        l.push(1, route(1));
        assert_eq!(l.try_preempt(TaskId(1), 0), Preemption::RejectedCycle);
        assert_eq!(l.try_preempt(TaskId(1), 1), Preemption::RejectedCycle);
        assert_eq!(l.stats().preemptions_rejected_cycle, 2);
        // The ledger is untouched: still acyclic, original order intact.
        assert!(l.is_acyclic());
        let order: Vec<u32> = l.queue(0).iter().map(|e| e.task.0).collect();
        assert_eq!(order, vec![2, 1]);
        // Once task 2's prep on the *other* ancilla completes and its entry
        // leaves, the same preemption becomes safe.
        l.remove_task(1, TaskId(2));
        assert!(matches!(
            l.try_preempt(TaskId(1), 0),
            Preemption::Applied { .. }
        ));
        assert!(l.is_acyclic());
    }

    #[test]
    fn preempt_missing_or_top_entry_is_not_eligible() {
        let mut l = ReservationLedger::new(1);
        assert_eq!(l.try_preempt(TaskId(0), 0), Preemption::NotEligible);
        l.push(0, route(0));
        assert_eq!(l.try_preempt(TaskId(0), 0), Preemption::NotEligible);
    }

    #[test]
    fn cross_shard_preemptions_are_counted_but_arbitrated_identically() {
        // The same reorder, once within a shard and once across shards:
        // identical queue outcome, the cross-shard one counted.
        let mut l = ReservationLedger::new(2);
        l.push(0, prep(3));
        l.push(0, route(1));
        l.push(1, prep(4));
        l.push(1, route(2));
        let same =
            l.try_preempt_across(TaskId(1), 0, ShardId(0), ShardId(0), |e| e.task > TaskId(1));
        assert!(matches!(same, Preemption::Applied { .. }));
        let cross =
            l.try_preempt_across(TaskId(2), 1, ShardId(0), ShardId(1), |e| e.task > TaskId(2));
        assert!(matches!(cross, Preemption::Applied { .. }));
        assert_eq!(l.stats().preemptions, 2);
        assert_eq!(l.stats().preemptions_cross_shard, 1);
        // Rejections never count as cross-shard applications.
        let mut l2 = ReservationLedger::new(2);
        for a in 0..2u32 {
            l2.push(a, prep(2));
            l2.push(a, route(1));
        }
        let out =
            l2.try_preempt_across(TaskId(1), 0, ShardId(0), ShardId(1), |e| e.task > TaskId(1));
        assert_eq!(out, Preemption::RejectedCycle);
        assert_eq!(l2.stats().preemptions_cross_shard, 0);
    }

    #[test]
    fn cross_shard_claims_are_counted() {
        let mut l = ReservationLedger::new(2);
        let id = l.push_claim(0, route(0), ShardId(0), ShardId(0));
        assert_ne!(id, ReservationId::UNREGISTERED);
        l.push_claim(1, route(0), ShardId(0), ShardId(1));
        assert_eq!(l.stats().claims_cross_shard, 1);
        assert_eq!(l.queue(1).top().unwrap().task, TaskId(0));
    }

    #[test]
    fn angle_update_keeps_graph_untouched() {
        let mut l = ReservationLedger::new(1);
        l.push(0, prep(0));
        l.push(0, prep(1));
        let before = l.current_edges();
        assert!(l.update_angle(0, TaskId(1), Angle::S));
        assert_eq!(l.current_edges(), before);
        assert_eq!(l.queue(0).entry(TaskId(1)).unwrap().angle, Angle::S);
    }
}
