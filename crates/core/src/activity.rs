//! Ancilla activity tracking (paper §4.2).
//!
//! `activity = #cycles active in the last c cycles / c` estimates how likely
//! an ancilla is to be busy in the near future; the MST edge weights are the
//! pairwise maxima of endpoint activities. The window `c` is 100 cycles in
//! the evaluation (§5.1), which fits in one `u128` bitmask per ancilla —
//! recording a cycle is a shift and the count a popcount.

/// Sliding-window activity tracker for every ancilla.
///
/// # Example
///
/// ```
/// use rescq_core::ActivityTracker;
///
/// let mut t = ActivityTracker::new(2, 4);
/// t.record_cycle(&[true, false]);
/// t.record_cycle(&[true, true]);
/// assert_eq!(t.count(0), 2);
/// assert_eq!(t.count(1), 1);
/// assert!((t.activity(1) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ActivityTracker {
    window: u32,
    mask: u128,
    bits: Vec<u128>,
    cycles_seen: u64,
}

impl ActivityTracker {
    /// Creates a tracker for `num_ancillas` ancillas over a `window`-cycle
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or exceeds 128 (the paper uses c = 100).
    pub fn new(num_ancillas: usize, window: u32) -> Self {
        assert!(
            (1..=128).contains(&window),
            "activity window must be in 1..=128, got {window}"
        );
        let mask = if window == 128 {
            u128::MAX
        } else {
            (1u128 << window) - 1
        };
        ActivityTracker {
            window,
            mask,
            bits: vec![0; num_ancillas],
            cycles_seen: 0,
        }
    }

    /// Number of tracked ancillas.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the tracker has no ancillas.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The window length `c`.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Records one completed cycle: `active[i]` says whether ancilla `i` was
    /// busy at any point during it.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the tracker size.
    pub fn record_cycle(&mut self, active: &[bool]) {
        assert_eq!(active.len(), self.bits.len());
        for (bits, &a) in self.bits.iter_mut().zip(active) {
            *bits = ((*bits << 1) | u128::from(a)) & self.mask;
        }
        self.cycles_seen += 1;
    }

    /// Number of active cycles for ancilla `i` within the window.
    pub fn count(&self, i: usize) -> u32 {
        self.bits[i].count_ones()
    }

    /// Activity ratio in `[0, 1]`.
    pub fn activity(&self, i: usize) -> f64 {
        self.count(i) as f64 / self.window as f64
    }

    /// Total cycles recorded since construction.
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen
    }

    /// MST edge weight between ancillas `a` and `b`: `max(activity)` as an
    /// integer count (exact, avoids float comparisons in the MST).
    pub fn edge_weight(&self, a: usize, b: usize) -> u32 {
        self.count(a).max(self.count(b))
    }

    /// Snapshot of all edge weights for the given edge list (dense ancilla
    /// indices) — what an MST recomputation "reads" when it starts (Fig 8).
    pub fn edge_weights(&self, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut out = Vec::with_capacity(edges.len());
        self.edge_weights_into(edges, &mut out);
        out
    }

    /// [`Self::edge_weights`] into a caller-provided buffer (appended) —
    /// the allocation-free path the realtime engine pairs with
    /// [`MstPipeline::on_cycle`](crate::MstPipeline::on_cycle)'s recycled
    /// snapshot buffers.
    pub fn edge_weights_into(&self, edges: &[(u32, u32)], out: &mut Vec<u32>) {
        out.extend(
            edges
                .iter()
                .map(|&(a, b)| self.edge_weight(a as usize, b as usize)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rolls_off() {
        let mut t = ActivityTracker::new(1, 3);
        t.record_cycle(&[true]);
        t.record_cycle(&[false]);
        t.record_cycle(&[false]);
        assert_eq!(t.count(0), 1);
        t.record_cycle(&[false]); // the active cycle leaves the window
        assert_eq!(t.count(0), 0);
        assert_eq!(t.cycles_seen(), 4);
    }

    #[test]
    fn paper_window_of_100_supported() {
        let mut t = ActivityTracker::new(2, 100);
        for _ in 0..250 {
            t.record_cycle(&[true, false]);
        }
        assert_eq!(t.count(0), 100);
        assert!((t.activity(0) - 1.0).abs() < 1e-12);
        assert_eq!(t.count(1), 0);
    }

    #[test]
    fn edge_weight_is_max() {
        let mut t = ActivityTracker::new(3, 4);
        t.record_cycle(&[true, false, true]);
        t.record_cycle(&[true, false, false]);
        assert_eq!(t.edge_weight(0, 1), 2);
        assert_eq!(t.edge_weight(1, 2), 1);
        let w = t.edge_weights(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(w, vec![2, 1, 2]);
    }

    #[test]
    fn window_128_works() {
        let mut t = ActivityTracker::new(1, 128);
        for _ in 0..130 {
            t.record_cycle(&[true]);
        }
        assert_eq!(t.count(0), 128);
    }

    #[test]
    #[should_panic(expected = "activity window")]
    fn oversized_window_rejected() {
        let _ = ActivityTracker::new(1, 129);
    }
}
