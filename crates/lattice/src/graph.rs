//! The ancilla routing graph: dense-indexed adjacency over ancilla tiles,
//! shortest paths (for the greedy/AutoBraid baselines), and connectivity.

use crate::{Grid, TileId};
use std::collections::VecDeque;

/// Disjoint-set forest with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Dense index of an ancilla within an [`AncillaGraph`].
pub type AncillaIndex = u32;

/// The routing graph over the fabric's ancilla tiles.
///
/// Nodes are densely indexed `0..len`; edges connect grid-adjacent ancillas.
///
/// # Example
///
/// ```
/// use rescq_lattice::{AncillaGraph, Layout, LayoutKind};
///
/// let layout = Layout::new(LayoutKind::Star2x2, 4).unwrap();
/// let g = AncillaGraph::from_grid(layout.grid());
/// assert_eq!(g.len(), 12);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct AncillaGraph {
    nodes: Vec<TileId>,
    /// Per-tile dense index (`u32::MAX` = not an ancilla).
    index: Vec<u32>,
    adj: Vec<Vec<AncillaIndex>>,
    /// Unique undirected edges, `a < b`.
    edges: Vec<(AncillaIndex, AncillaIndex)>,
}

impl AncillaGraph {
    /// Builds the graph from the current ancilla tiles of `grid`.
    pub fn from_grid(grid: &Grid) -> Self {
        let nodes: Vec<TileId> = grid.ancilla_tiles().collect();
        let mut index = vec![u32::MAX; grid.len()];
        for (i, &t) in nodes.iter().enumerate() {
            index[t.index()] = i as u32;
        }
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut edges = Vec::new();
        for (i, &t) in nodes.iter().enumerate() {
            for n in grid.ancilla_neighbors(t) {
                let j = index[n.index()];
                debug_assert_ne!(j, u32::MAX);
                adj[i].push(j);
                if (i as u32) < j {
                    edges.push((i as u32, j));
                }
            }
        }
        AncillaGraph {
            nodes,
            index,
            adj,
            edges,
        }
    }

    /// Number of ancilla nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tile backing dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tile(&self, i: AncillaIndex) -> TileId {
        self.nodes[i as usize]
    }

    /// Dense index of `tile`, if it is an ancilla node.
    pub fn index_of(&self, tile: TileId) -> Option<AncillaIndex> {
        match self.index[tile.index()] {
            u32::MAX => None,
            i => Some(i),
        }
    }

    /// Neighbours of node `i`.
    pub fn neighbors(&self, i: AncillaIndex) -> &[AncillaIndex] {
        &self.adj[i as usize]
    }

    /// Unique undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> &[(AncillaIndex, AncillaIndex)] {
        &self.edges
    }

    /// Whether all ancilla nodes form a single connected component.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut uf = UnionFind::new(self.nodes.len());
        for &(a, b) in &self.edges {
            uf.union(a, b);
        }
        let root = uf.find(0);
        (1..self.nodes.len() as u32).all(|i| uf.find(i) == root)
    }

    /// BFS shortest path from any node in `sources` to any node in `targets`,
    /// avoiding nodes for which `blocked` returns `true`. Returns the node
    /// sequence including both endpoints, or `None` when unreachable.
    ///
    /// Blocked sources/targets are skipped entirely.
    pub fn shortest_path(
        &self,
        sources: &[AncillaIndex],
        targets: &[AncillaIndex],
        mut blocked: impl FnMut(AncillaIndex) -> bool,
    ) -> Option<Vec<AncillaIndex>> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut is_target = vec![false; self.nodes.len()];
        for &t in targets {
            if !blocked(t) {
                is_target[t as usize] = true;
            }
        }
        let mut prev: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &s in sources {
            if !seen[s as usize] && !blocked(s) {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            if is_target[u as usize] {
                let mut path = vec![u];
                let mut cur = u;
                while prev[cur as usize] != u32::MAX {
                    cur = prev[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &v in &self.adj[u as usize] {
                if !seen[v as usize] && !blocked(v) {
                    seen[v as usize] = true;
                    prev[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

/// Whether the grid's ancilla tiles form one connected component (used by
/// [`crate::Layout::compress`] to veto disconnecting removals).
pub fn ancilla_network_connected(grid: &Grid) -> bool {
    let mut start = None;
    let mut total = 0usize;
    for t in grid.ancilla_tiles() {
        total += 1;
        if start.is_none() {
            start = Some(t);
        }
    }
    let Some(start) = start else { return true };
    let mut seen = vec![false; grid.len()];
    let mut queue = VecDeque::from([start]);
    seen[start.index()] = true;
    let mut count = 1usize;
    while let Some(t) = queue.pop_front() {
        for n in grid.ancilla_neighbors(t) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                count += 1;
                queue.push_back(n);
            }
        }
    }
    count == total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileKind;

    fn line_grid(n: u32) -> Grid {
        Grid::filled(n, 1, TileKind::Ancilla)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(2, 3);
        uf.union(0, 3);
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn graph_from_line() {
        let g = AncillaGraph::from_grid(&line_grid(5));
        assert_eq!(g.len(), 5);
        assert_eq!(g.edges().len(), 4);
        assert!(g.is_connected());
        let path = g.shortest_path(&[0], &[4], |_| false).unwrap();
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn blocked_node_forces_detour_or_failure() {
        let g = AncillaGraph::from_grid(&line_grid(5));
        assert!(g.shortest_path(&[0], &[4], |i| i == 2).is_none());

        let grid = Grid::filled(3, 3, TileKind::Ancilla);
        let g = AncillaGraph::from_grid(&grid);
        let center = g.index_of(grid.tile_at(1, 1)).unwrap();
        let from = g.index_of(grid.tile_at(0, 1)).unwrap();
        let to = g.index_of(grid.tile_at(2, 1)).unwrap();
        let direct = g.shortest_path(&[from], &[to], |_| false).unwrap();
        assert_eq!(direct.len(), 3);
        let detour = g.shortest_path(&[from], &[to], |i| i == center).unwrap();
        assert_eq!(detour.len(), 5);
    }

    #[test]
    fn multi_source_multi_target() {
        let grid = Grid::filled(4, 4, TileKind::Ancilla);
        let g = AncillaGraph::from_grid(&grid);
        let s1 = g.index_of(grid.tile_at(0, 0)).unwrap();
        let s2 = g.index_of(grid.tile_at(3, 3)).unwrap();
        let t1 = g.index_of(grid.tile_at(3, 2)).unwrap();
        let path = g.shortest_path(&[s1, s2], &[t1], |_| false).unwrap();
        // s2 is adjacent to t1.
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], s2);
    }

    #[test]
    fn source_equals_target() {
        let g = AncillaGraph::from_grid(&line_grid(3));
        let p = g.shortest_path(&[1], &[1], |_| false).unwrap();
        assert_eq!(p, vec![1]);
    }

    #[test]
    fn disconnection_detected() {
        let mut grid = Grid::filled(5, 1, TileKind::Ancilla);
        grid.set_kind(grid.tile_at(2, 0), TileKind::Void);
        assert!(!ancilla_network_connected(&grid));
        let g = AncillaGraph::from_grid(&grid);
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let grid = Grid::filled(2, 2, TileKind::Void);
        assert!(ancilla_network_connected(&grid));
        let g = AncillaGraph::from_grid(&grid);
        assert!(g.is_connected());
        assert!(g.is_empty());
    }
}
