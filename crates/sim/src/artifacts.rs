//! Shareable, immutable simulation artifacts.
//!
//! Parameter sweeps run the same circuit on the same fabric geometry many
//! times (different seeds, schedulers, decoder models). The expensive,
//! *deterministic* pieces of a run — the parsed [`Circuit`], its
//! [`DependencyDag`], the (possibly compressed) [`Layout`] and its dense
//! [`AncillaGraph`] — never change across those runs, so they are bundled
//! here behind [`Arc`]s and shared read-only between any number of
//! concurrent simulations (see `rescq-harness` for the sweep orchestrator
//! that caches them content-addressed).
//!
//! [`simulate`](crate::simulate) remains the one-shot entry point and builds
//! a fresh bundle per call; [`simulate_prepared`]
//! skips straight to the engines.

use crate::engine::run_with_artifacts;
use crate::metrics::ExecutionReport;
use crate::{SimConfig, SimError};
use rescq_circuit::{Circuit, DependencyDag};
use rescq_lattice::{AncillaGraph, Layout};
use std::sync::Arc;

/// The immutable inputs of a simulation run, shareable across threads.
///
/// All four pieces are functions of `(circuit, config)` alone: building them
/// through [`SimArtifacts::prepare`] and running with
/// [`simulate_prepared`] is bit-identical to
/// calling [`simulate`](crate::simulate) directly.
#[derive(Debug, Clone)]
pub struct SimArtifacts {
    /// The circuit to execute.
    pub circuit: Arc<Circuit>,
    /// Its gate-dependency DAG (layers, qubit chains, remaining depth).
    pub dag: Arc<DependencyDag>,
    /// The compressed fabric layout the configuration describes.
    pub layout: Arc<Layout>,
    /// The dense-indexed ancilla routing graph over that layout.
    pub graph: Arc<AncillaGraph>,
}

impl SimArtifacts {
    /// Builds every artifact fresh from a circuit and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadInput`] on empty circuits or unroutable
    /// layouts.
    pub fn prepare(circuit: Arc<Circuit>, config: &SimConfig) -> Result<Self, SimError> {
        let dag = Arc::new(DependencyDag::new(&circuit));
        let layout = Arc::new(build_layout(circuit.num_qubits(), config)?);
        let graph = Arc::new(AncillaGraph::from_grid(layout.grid()));
        Ok(SimArtifacts {
            circuit,
            dag,
            layout,
            graph,
        })
    }

    /// Assembles a bundle from independently cached pieces (the harness
    /// caches circuit/DAG and layout/graph under different keys because a
    /// layout is shared by every circuit of the same width).
    pub fn assemble(
        circuit: Arc<Circuit>,
        dag: Arc<DependencyDag>,
        layout: Arc<Layout>,
        graph: Arc<AncillaGraph>,
    ) -> Self {
        SimArtifacts {
            circuit,
            dag,
            layout,
            graph,
        }
    }

    /// Checks the bundle is internally consistent and matches `config`:
    /// circuit/layout widths agree, the DAG covers exactly the circuit's
    /// gates, the routing graph indexes exactly the layout's ancillas, and
    /// the layout kind matches the configuration.
    fn validate(&self, config: &SimConfig) -> Result<(), SimError> {
        if self.circuit.num_qubits() == 0 {
            return Err(SimError::BadInput("circuit has no qubits".into()));
        }
        if self.layout.num_qubits() != self.circuit.num_qubits() {
            return Err(SimError::BadInput(format!(
                "layout hosts {} qubits but circuit has {}",
                self.layout.num_qubits(),
                self.circuit.num_qubits()
            )));
        }
        if self.dag.len() != self.circuit.len() {
            return Err(SimError::BadInput(format!(
                "DAG covers {} gates but circuit has {} (DAG built from a different circuit?)",
                self.dag.len(),
                self.circuit.len()
            )));
        }
        if self.graph.len() != self.layout.ancilla_tiles().len() {
            return Err(SimError::BadInput(format!(
                "routing graph indexes {} ancillas but layout has {} (graph built from a different layout?)",
                self.graph.len(),
                self.layout.ancilla_tiles().len()
            )));
        }
        if self.layout.kind() != config.layout {
            return Err(SimError::BadInput(format!(
                "layout kind {:?} does not match config {:?}",
                self.layout.kind(),
                config.layout
            )));
        }
        Ok(())
    }
}

/// Builds the (possibly compressed) layout a configuration describes, for
/// `num_qubits` data qubits.
///
/// # Errors
///
/// Returns [`SimError::BadInput`] when the layout cannot host the qubits or
/// compression leaves it unroutable.
pub fn build_layout(num_qubits: u32, config: &SimConfig) -> Result<Layout, SimError> {
    if num_qubits == 0 {
        return Err(SimError::BadInput("circuit has no qubits".into()));
    }
    let mut layout = match config.block_columns {
        Some(cols) => Layout::with_block_columns(config.layout, num_qubits, cols),
        None => Layout::new(config.layout, num_qubits),
    }
    .map_err(|e| SimError::BadInput(e.to_string()))?;
    if config.compression > 0.0 {
        layout.compress(config.compression, config.compression_seed);
    }
    if !layout.is_routable() {
        return Err(SimError::BadInput("layout is not routable".into()));
    }
    Ok(layout)
}

/// Runs one seeded simulation over pre-built shared artifacts.
///
/// Bit-identical to [`simulate`](crate::simulate) on the same
/// `(circuit, config)` pair: the artifacts carry no run state, only
/// deterministic derived structure.
///
/// # Errors
///
/// Returns [`SimError`] on artifact/config mismatch or any engine error.
pub fn simulate_prepared(
    artifacts: &SimArtifacts,
    config: &SimConfig,
) -> Result<ExecutionReport, SimError> {
    simulate_prepared_traced(artifacts, config, None)
}

/// [`simulate_prepared`] with an optional structured-trace
/// [`Recorder`](rescq_telemetry::Recorder) attached (see
/// [`simulate_traced`](crate::simulate_traced) for the tracing contract:
/// recorders observe, they never perturb the schedule).
///
/// # Errors
///
/// Same as [`simulate_prepared`].
pub fn simulate_prepared_traced(
    artifacts: &SimArtifacts,
    config: &SimConfig,
    recorder: Option<&dyn rescq_telemetry::Recorder>,
) -> Result<ExecutionReport, SimError> {
    artifacts.validate(config)?;
    run_with_artifacts(artifacts, config, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use rescq_circuit::Angle;

    fn circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0)
            .cnot(0, 1)
            .rz(1, Angle::radians(0.3))
            .cnot(2, 3)
            .rz(3, Angle::T);
        c
    }

    #[test]
    fn prepared_run_matches_one_shot() {
        let c = circuit();
        for compression in [0.0, 0.5] {
            for scheduler in rescq_core::SchedulerKind::ALL {
                let cfg = SimConfig::builder()
                    .scheduler(scheduler)
                    .compression(compression)
                    .seed(9)
                    .build();
                let art = SimArtifacts::prepare(Arc::new(c.clone()), &cfg).unwrap();
                let shared = simulate_prepared(&art, &cfg).unwrap();
                let fresh = simulate(&c, &cfg).unwrap();
                assert_eq!(shared, fresh, "{scheduler} at {compression}");
            }
        }
    }

    #[test]
    fn artifacts_shared_across_seeds() {
        let c = circuit();
        let cfg = SimConfig::default();
        let art = SimArtifacts::prepare(Arc::new(c.clone()), &cfg).unwrap();
        for seed in 1..4 {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            let shared = simulate_prepared(&art, &cfg).unwrap();
            assert_eq!(shared, simulate(&c, &cfg).unwrap());
        }
    }

    #[test]
    fn mismatched_artifacts_rejected() {
        let cfg = SimConfig::default();
        let art = SimArtifacts::prepare(Arc::new(circuit()), &cfg).unwrap();
        // Wrong width.
        let mut small = Circuit::new(2);
        small.h(0).cnot(0, 1);
        let wrong_width = SimArtifacts::assemble(
            Arc::new(small),
            art.dag.clone(),
            art.layout.clone(),
            art.graph.clone(),
        );
        assert!(matches!(
            simulate_prepared(&wrong_width, &cfg),
            Err(SimError::BadInput(_))
        ));
        // Same width, different gate count: the DAG belongs to another circuit.
        let mut other = circuit();
        other.h(2);
        let wrong_dag = SimArtifacts::assemble(
            Arc::new(other),
            art.dag.clone(),
            art.layout.clone(),
            art.graph.clone(),
        );
        assert!(matches!(
            simulate_prepared(&wrong_dag, &cfg),
            Err(SimError::BadInput(_))
        ));
        // Graph built from a differently compressed layout of equal width.
        let compressed = SimConfig::builder().compression(1.0).build();
        let other_art = SimArtifacts::prepare(Arc::new(circuit()), &compressed).unwrap();
        let wrong_graph = SimArtifacts::assemble(
            art.circuit.clone(),
            art.dag.clone(),
            art.layout.clone(),
            other_art.graph.clone(),
        );
        assert!(matches!(
            simulate_prepared(&wrong_graph, &cfg),
            Err(SimError::BadInput(_))
        ));
    }
}
