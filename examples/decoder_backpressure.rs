//! Decoder back-pressure: the same circuit under the `ideal` and `adaptive`
//! decoders, with stall-cycle deltas.
//!
//! Every `|mθ⟩` injection outcome is a syndrome window the classical decoder
//! must process before the scheduler may rewrite the correction ladder. The
//! ideal decoder answers instantly; a throughput-limited adaptive decoder
//! builds a backlog during rotation bursts, and the schedule stretches by
//! the stall cycles feed-forward decisions spend waiting.
//!
//! ```sh
//! cargo run --release --example decoder_backpressure
//! ```

use rescq_decoder::DecoderConfig;
use rescq_repro::prelude::*;

fn main() {
    // A bursty rotation workload: the scenario family built for the decoder
    // subsystem (4 bursts of 3 dense rotation layers on 9 qubits).
    let circuit = rescq_repro::workloads::generate("decoder_stress_n9", 7).expect("stress family");
    println!(
        "circuit: {} qubits, {} gates ({})",
        circuit.num_qubits(),
        circuit.len(),
        circuit.stats()
    );
    println!();

    let decoders = [
        ("ideal", DecoderConfig::ideal()),
        ("adaptive W=4", DecoderConfig::adaptive(0.5, 4)),
        ("adaptive W=1", DecoderConfig::adaptive(0.5, 1)),
    ];

    let mut baseline_cycles = None;
    for (label, decoder) in decoders {
        let config = SimConfig::builder()
            .scheduler(SchedulerKind::Rescq)
            .decoder(decoder)
            .seed(42)
            .build();
        let report = simulate(&circuit, &config).expect("simulation runs");
        let cycles = report.total_cycles();
        let baseline = *baseline_cycles.get_or_insert(cycles);
        println!(
            "{label:>14}: {cycles:>6.0} cycles (+{delta:.0} vs ideal), \
             {windows} windows decoded, stall {stall:.0} cycles, \
             decode latency mean {lat:.1}cy, peak backlog {peak}",
            delta = cycles - baseline,
            windows = report.counters.decode_windows,
            stall = report.decoder_stall_cycles(),
            lat = report.decode_latency.mean(),
            peak = report.counters.decoder_peak_backlog,
        );
    }

    println!();
    println!("fewer decode workers => deeper backlog => more stall cycles:");
    println!("the adaptive ring absorbs part of each burst, but a single");
    println!("worker at half throughput pushes the run decoder-limited.");
}
