//! The RESCQ realtime engine (paper §4) — the coordinator of the sharded
//! realtime architecture (worker machinery in [`crate::engine::shard`]).
//!
//! # The cycle-phase protocol
//!
//! Sharding forced the engine's implicit ordering to become an explicit
//! protocol shared by every scheduling worker. Event handling retires
//! strictly in `(round, insertion-order)` sequence — inject outcomes,
//! decode completions, preparation completions, surgeries — and each
//! retirement triggers a *scheduling pass* with four phases:
//!
//! 1. **schedule** — the qubit worklist drains deepest-remaining-chain
//!    first; new gate tasks enqueue their claims through the ledger;
//! 2. **start** — live tasks attempt injections and surgeries; a stalled
//!    CNOT may preempt younger speculative claims here, cross-shard
//!    preemptions going through the ledger's arbitration
//!    ([`rescq_core::ReservationLedger::try_preempt_across`]), which
//!    preserves the acyclicity proof regardless of the shards involved;
//! 3. **propose** — shard workers scan their regions of the *frozen*
//!    engine state in parallel and propose candidate ancillas (reclaims,
//!    preparation starts/restarts). Workers never mutate;
//! 4. **commit** — the coordinator revalidates each proposal against
//!    committed state and applies it through the ledger, in canonical
//!    ascending-ancilla order. This is the deterministic barrier that
//!    reconciles shard frontiers: commit order — and therefore the RNG
//!    draw order, the event order and every counter — is independent of
//!    the thread count, so the schedule is bit-identical for 1, 2 or N
//!    engine threads (`engine_threads = 1` reproduces the historical
//!    monolithic engine exactly; golden-pinned in `tests/engines.rs`).
//!
//! The pass repeats until a fixpoint (no phase made progress).
//!
//! Realtime behaviours implemented here, with their paper anchors:
//!
//! - gates are scheduled the moment the previous gate on their data qubit
//!   allows it, not layer-by-layer (§3.1);
//! - rotation gates are enqueued *preemptively* into every valid neighbouring
//!   ancilla queue while the previous gate is still executing (§4.1, Fig 7);
//! - multiple ancillas prepare `|mθ⟩` in parallel; the first success rewrites
//!   the siblings' queue entries in place to the `|m2θ⟩` correction state
//!   (eager preparation, Fig 1e);
//! - injections choose the cheapest available strategy (ZZ through a Z-edge
//!   neighbour, CNOT through an X-edge helper — Table 1);
//! - CNOTs route along the activity-weighted MST using Algorithm 1, with the
//!   stale pipelined recomputation of Fig 8;
//! - ancillas stuck preparing while other operations queue behind them are
//!   *reclaimed* when the rotation has other prep sites (§3.2's `n − m`
//!   redistribution);
//! - when several gates become schedulable simultaneously, qubits with
//!   larger remaining circuit depth go first (Fig 7 caption).

use crate::engine::shard::{RegionPartition, ShardExecutor};
use crate::engine::EventQueue;
use crate::fabric::Fabric;
use crate::metrics::{ExecutionReport, LatencyHistogram, RunCounters};
use crate::{SimConfig, SimError};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rescq_circuit::{Angle, Circuit, DependencyDag, Gate, GateId, GateQubits, QubitId};
use rescq_core::{
    plan_cnot_route_into, ActivityTracker, Bitset, EntryStatus, LedgerEvent, MstPipeline,
    PathCache, Preemption, QueueEntry, ReservationLedger, Role, RouteScratch, SchedulerKind,
    ShardId, SurgeryCosts, TaskClass, TaskId, VecPool,
};
use rescq_decoder::{DecoderRuntime, WindowId};
use rescq_lattice::{AncillaIndex, DataAdjacency, EdgeType};
use rescq_rus::{InjectionLadder, LadderStep, PreparationModel};
use rescq_telemetry::{Event as TraceEvent, Phase, Recorder, StallCause};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Cycles without any gate completion before the stall breaker fires.
const STALL_BREAK_CYCLES: u64 = 300;

/// Recycled scratch buffers of the cycle loop (the hot-path memory model):
/// every per-pass working set lives here, `mem::take`n out for the duration
/// of the pass and put back cleared, so capacity plateaus at each buffer's
/// high-water mark and the steady-state loop never touches the allocator.
#[derive(Debug, Default)]
struct EngineScratch {
    /// Propose-phase candidate ancillas (committed in ascending order).
    candidates: Vec<u32>,
    /// Dense `E[f_a]` vector staged for route planning.
    expected_free: Vec<u64>,
    /// `(depth, insertion index, qubit)` triples for the schedule-phase
    /// priority sort (an unstable sort over this key reproduces the stable
    /// deepest-first order without a merge-sort buffer).
    worklist_order: Vec<(std::cmp::Reverse<u32>, u32, QubitId)>,
    /// Candidate-path staging for Algorithm 1.
    route: RouteScratch,
    /// Speculative-task snapshot taken per preemption-eligible ancilla.
    spec_tasks: Vec<TaskId>,
    /// Stale-holder staging for correction retargets and the stall breaker.
    stale: Vec<AncillaIndex>,
    /// X-side neighbours while enqueueing a rotation's sites.
    x_side: Vec<AncillaIndex>,
    /// The propose-phase scan frontier: `dirty ∩ nonempty` words snapshot
    /// taken at pass start (the ledger's dirty set is cleared immediately
    /// after, so commit-time mutations re-mark for the next pass).
    scan_words: Vec<u64>,
}

/// Capacity-recycling pools for the `Vec`s embedded in task bodies (CNOT
/// paths, rotation site lists). A completing task returns its buffers here;
/// the next scheduled gate reuses them.
#[derive(Debug, Default)]
struct VecPools {
    paths: VecPool<AncillaIndex>,
    sites: VecPool<(AncillaIndex, bool)>,
    helpers: VecPool<AncillaIndex>,
    holders: VecPool<(AncillaIndex, Angle)>,
}

#[derive(Debug)]
enum TaskBody {
    Cnot {
        control: QubitId,
        target: QubitId,
        path: Vec<AncillaIndex>,
        rotating: bool,
        surgery_started: bool,
        /// Round the current path was planned (drives stalled re-planning
        /// on constrained fabrics).
        planned_round: u64,
    },
    Rz {
        qubit: QubitId,
        ladder: InjectionLadder,
        /// Prep sites with whether they are side-adjacent to the data qubit
        /// (side-adjacent sites can always inject on their own; diagonal
        /// sites need a helper).
        prep_sites: Vec<(AncillaIndex, bool)>,
        helper_sites: Vec<AncillaIndex>,
        /// Ancillas holding prepared states, with the angle they hold.
        holders: Vec<(AncillaIndex, Angle)>,
        injecting: bool,
        /// The injection's measurement is in but its feed-forward window is
        /// still queued at the decoder (stall attribution: decoder backlog).
        awaiting_decode: bool,
        /// Preparation-verification windows in flight for this task
        /// (`decode_prep` runs only; same attribution).
        pending_prep_decodes: u32,
    },
    Hadamard {
        qubit: QubitId,
        started: bool,
    },
}

#[derive(Debug)]
struct Task {
    gate: GateId,
    sched_round: u64,
    done: bool,
    /// Priority class of every queue entry this task claims (the default
    /// [`TaskClass::COMPUTE`] when no lattice is configured, so class-blind
    /// runs stay uniform and bit-identical).
    class: TaskClass,
    body: TaskBody,
}

/// The resolved priority policy of one run: the canonical class ranks of
/// the configured [`rescq_core::ClassLattice`] plus the per-qubit factory
/// classification. Present only when [`SimConfig::priority_classes`] is
/// set; its absence short-circuits every class-aware code path back to the
/// historical engine.
#[derive(Debug, Clone)]
struct PriorityPolicy {
    speculative: TaskClass,
    compute: TaskClass,
    injection: TaskClass,
    factory: TaskClass,
    /// Which data qubits are T-gate factory tiles
    /// ([`crate::priority::factory_qubits`]).
    factory_qubit: Vec<bool>,
}

/// A shard worker's proposal for one ancilla (the *propose* phase of the
/// protocol). Proposals carry no payload: the commit phase recomputes the
/// decision against committed state, so a stale proposal is simply dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AncillaAction {
    /// Return a still-preparing ancilla to the pool (§3.2 reclaim).
    Reclaim,
    /// An in-place angle rewrite hit a running preparation: restart it.
    RestartPrep,
    /// Hold the ancilla and start preparing the queue-top rotation state.
    StartPrep,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    PrepDone {
        ancilla: AncillaIndex,
        task: TaskId,
        angle: Angle,
        epoch: u64,
    },
    InjectDone {
        task: TaskId,
        holder: AncillaIndex,
        /// Syndrome rounds the injection's measurement window spans.
        rounds: u32,
    },
    /// The classical decoder finished a feed-forward window; the injection
    /// outcome it carries becomes visible to the scheduler now.
    DecodeDone {
        task: TaskId,
        success: bool,
        window: WindowId,
    },
    /// The classical decoder finished a preparation-verification window
    /// ([`rescq_decoder::DecoderConfig::decode_prep`]); the prepared state
    /// becomes usable now.
    PrepDecoded {
        ancilla: AncillaIndex,
        task: TaskId,
        angle: Angle,
        epoch: u64,
        window: WindowId,
    },
    RotationDone {
        task: TaskId,
        qubit: QubitId,
    },
    SurgeryDone {
        task: TaskId,
    },
    HDone {
        task: TaskId,
    },
    CycleTick,
}

struct RtEngine<'a> {
    circuit: &'a Circuit,
    dag: Arc<DependencyDag>,
    fabric: Fabric,
    costs: SurgeryCosts,
    d: u32,
    clock: u64,
    rng: ChaCha8Rng,
    prep_model: PreparationModel,

    cursor: Vec<usize>,
    gate_done: Vec<bool>,
    gate_scheduled: Vec<bool>,
    done_count: usize,
    last_completion: u64,
    /// Round of the most recent forward progress (gate completion or stall
    /// break) — drives the stall breaker, not the makespan metric.
    last_progress: u64,

    tasks: Vec<Task>,
    live_tasks: Vec<TaskId>,
    /// Every ancilla queue plus the explicit task wait-for graph over them;
    /// all queue mutations (claim, reclaim, re-plan, preemption) go through
    /// it so the acyclicity invariant is checkable instead of implicit.
    ledger: ReservationLedger,
    prep_epoch: Vec<u64>,
    /// Angle currently being prepared on each ancilla, if any.
    prepping: Vec<Option<Angle>>,

    activity: ActivityTracker,
    mst: MstPipeline,
    path_cache: PathCache,
    events: EventQueue<Ev>,
    sched_worklist: Vec<QubitId>,
    /// Recycled per-pass working sets (see [`EngineScratch`]).
    scratch: EngineScratch,
    /// Recycled task-body buffers (see [`VecPools`]).
    pools: VecPools,

    /// Resource-constrained fabric (fewer than ~2 ancillas per data qubit,
    /// i.e. heavily compressed): speculative preparation is throttled so the
    /// scarce ancillas stay available for injections and routing.
    constrained: bool,

    /// Contiguous regions of the ancilla network, one per scheduling shard.
    /// A function of the fabric alone (never the thread count), so every
    /// region-derived quantity is thread-count invariant.
    partition: RegionPartition,
    /// Executes region scans: inline for one thread, over the persistent
    /// shard worker pool otherwise. Invisible to the schedule by
    /// construction (workers only propose; commits are canonical-order).
    exec: ShardExecutor,
    /// Resolved worker-thread count (reported).
    engine_threads: u32,
    /// Class-aware arbitration policy (`None` = class-blind, the default).
    priority: Option<PriorityPolicy>,

    counters: RunCounters,
    cnot_latency: LatencyHistogram,
    rz_latency: LatencyHistogram,
    decoder: DecoderRuntime,
    decode_latency: LatencyHistogram,
    gates_executed: usize,
    /// Expected rounds an Rz queue entry occupies its ancilla (precomputed).
    rz_entry_cost: u64,

    /// Structured-trace sink. `None` (the default) keeps instrumentation to
    /// one inlined check per site; the schedule is bit-identical either way
    /// — recorders only *observe*, every counter they see is also computed
    /// untraced.
    recorder: Option<&'a dyn Recorder>,
    /// Wall-clock nanoseconds per dispatch phase (accumulated only when
    /// traced; reported through [`ExecutionReport::phase_nanos`]).
    phase_nanos: [u64; 4],
    /// Optional per-cycle observation hook (the allocation-regression
    /// harness); observes only, never feeds back into the schedule.
    cycle_probe: Option<&'a (dyn Fn(u64) + Sync)>,
    /// Per-qubit tile adjacency, precomputed once from the static layout:
    /// the hot loop (injection starts, Rz site enqueueing, class lookups)
    /// borrows these instead of rebuilding — and heap-allocating — them
    /// per call.
    adjacency: &'a [DataAdjacency],
    /// Pending fabric-occupancy expiries as `(free_at, ancilla)`: every
    /// `occupy_ancilla` with a future release round is recorded here, and
    /// the ancilla is re-marked in the dispatch frontier the moment the
    /// clock reaches that round. Without this, an ancilla freed purely by
    /// time passage (its surgery/rotation/injection window ending) would
    /// never re-enter the incremental propose scan.
    occupancy_expiries: std::collections::BinaryHeap<std::cmp::Reverse<(u64, AncillaIndex)>>,
    /// Tasks whose preparation was displaced by a class-won preemption and
    /// has not restarted yet — the `ClassDisplacement` stall bucket.
    /// Maintained unconditionally (it feeds deterministic counters); only
    /// membership is queried, never iteration order. A packed bitset sized
    /// to the task count, so the per-cycle stall sampler probes one word
    /// instead of hashing.
    displaced_by_class: Bitset,
    /// Submission round of each in-flight decoder window, kept only while
    /// traced (drives `WindowRetired::stalled_rounds`).
    traced_windows: HashMap<WindowId, u64>,
    /// Last emitted `(depth, busy)` occupancy state per ancilla, kept only
    /// while traced — the cycle tick emits [`TraceEvent::AncillaState`]
    /// transitions (not per-cycle dumps) against this. Empty untraced.
    traced_occupancy: Vec<(u32, bool)>,
}

// Shard workers scan a frozen `&RtEngine` concurrently during the propose
// phase, so the whole engine state must be `Sync`; asserted at compile time
// (part of the sharding refactor's Send/Sync audit).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<RtEngine<'static>>();
};

/// Runs the realtime RESCQ schedule. `recorder` attaches a structured
/// trace sink; `None` runs untraced (identical schedule, no timing).
pub(crate) fn run_realtime(
    circuit: &Circuit,
    dag: Arc<DependencyDag>,
    config: &SimConfig,
    fabric: Fabric,
    rng: ChaCha8Rng,
    recorder: Option<&dyn Recorder>,
    cycle_probe: Option<&(dyn Fn(u64) + Sync)>,
) -> Result<ExecutionReport, SimError> {
    let d = config.rounds_per_cycle();
    let prep_model = PreparationModel::with_calibration(config.rus_params(), config.calibration);
    let num_ancillas = fabric.num_ancillas();
    let edges: Vec<(u32, u32)> = fabric.graph.edges().to_vec();
    let mst = MstPipeline::new(num_ancillas, &edges, config.k_policy, config.tau_model);
    let activity = ActivityTracker::new(num_ancillas, config.activity_window.clamp(1, 128));
    let rz_entry_cost = prep_model.expected_rounds().ceil() as u64
        + 2 * config.costs.cnot_injection_cycles as u64 * d as u64;
    // Static per-qubit tile adjacency, computed once: geometry never
    // changes mid-run, and rebuilding these per injection was the last
    // steady-state allocation (caught by the counting-allocator test).
    let adjacency: Vec<DataAdjacency> = (0..circuit.num_qubits())
        .map(|q| fabric.layout.data_adjacency(QubitId(q)))
        .collect();
    // More executors than regions would idle; the clamp only affects the
    // reported thread count, never the schedule.
    let mut partition = RegionPartition::for_fabric(num_ancillas);
    let priority = config
        .priority_classes
        .as_ref()
        .map(|lattice| PriorityPolicy {
            speculative: lattice.speculative(),
            compute: lattice.compute(),
            injection: lattice.injection(),
            factory: lattice.factory(),
            factory_qubit: crate::priority::factory_qubits(circuit),
        });
    if let Some(p) = &priority {
        // Region urgency: a region whose ancilla frontage is dominated by
        // T-gate factory tiles is promoted to the factory class, so *all*
        // work homed there — not just the rotations themselves — outranks
        // compute regions. Majority rule, not any-touch: a region shared
        // with a larger compute block stays a compute region, otherwise a
        // coarse region (small fabrics are a single region) would promote
        // everything and collapse the lattice back to uniform seniority.
        // A pure function of the circuit and fabric — regions, overrides
        // and therefore every class-driven decision are identical for any
        // thread count.
        let mut frontage = vec![(0u32, 0u32); partition.num_regions()];
        for q in 0..circuit.num_qubits() {
            let adj = &adjacency[q as usize];
            for &(_, tile) in &adj.side {
                if let Some(a) = fabric.graph.index_of(tile) {
                    let slot = &mut frontage[partition.region_of(a) as usize];
                    if p.factory_qubit[q as usize] {
                        slot.0 += 1;
                    } else {
                        slot.1 += 1;
                    }
                }
            }
        }
        for (r, &(factory, compute)) in frontage.iter().enumerate() {
            if factory > compute {
                partition.raise_region_class(r as u32, p.factory);
            }
        }
    }
    let threads = config
        .resolved_engine_threads()
        .clamp(1, partition.num_regions());
    let exec = ShardExecutor::new(threads, num_ancillas);

    let mut ledger = ReservationLedger::new(num_ancillas);
    // One task per non-free gate at most: sizing the ledger's edge lists
    // (and the task vectors below) up front keeps task creation off the
    // allocator once the run is warm.
    ledger.reserve_tasks(circuit.len());
    if let Some(lattice) = &config.priority_classes {
        // Attribute per-class preemption counters to the canonical classes
        // whatever ranks a custom lattice assigns them (counters only;
        // arbitration compares raw ranks).
        ledger.set_class_buckets(lattice.canonical_buckets());
    }
    if recorder.is_some() {
        // Arbitration events are buffered only for traced runs; the engine
        // drains them (stamped with the current round) after each dispatch.
        ledger.enable_event_log();
    }

    let mut engine = RtEngine {
        circuit,
        dag,
        fabric,
        costs: config.costs,
        d,
        clock: 0,
        rng,
        prep_model,
        cursor: vec![0; circuit.num_qubits() as usize],
        gate_done: vec![false; circuit.len()],
        gate_scheduled: vec![false; circuit.len()],
        done_count: 0,
        last_completion: 0,
        last_progress: 0,
        tasks: Vec::with_capacity(circuit.len()),
        live_tasks: Vec::with_capacity(circuit.len()),
        ledger,
        prep_epoch: vec![0; num_ancillas],
        prepping: vec![None; num_ancillas],
        activity,
        mst,
        path_cache: PathCache::new(),
        events: EventQueue::new(),
        sched_worklist: Vec::new(),
        scratch: EngineScratch::default(),
        pools: VecPools::default(),
        constrained: 2 * num_ancillas <= 4 * circuit.num_qubits() as usize,
        partition,
        engine_threads: exec.threads() as u32,
        exec,
        priority,
        counters: RunCounters::default(),
        cnot_latency: LatencyHistogram::new(),
        rz_latency: LatencyHistogram::new(),
        decoder: DecoderRuntime::with_channel(&config.decoder, d, config.decoder_channel()),
        decode_latency: LatencyHistogram::new(),
        gates_executed: 0,
        rz_entry_cost,
        recorder,
        phase_nanos: [0; 4],
        cycle_probe,
        adjacency: &adjacency,
        occupancy_expiries: std::collections::BinaryHeap::new(),
        displaced_by_class: {
            let mut b = Bitset::default();
            b.reserve(circuit.len());
            b
        },
        traced_windows: HashMap::new(),
        traced_occupancy: if recorder.is_some() {
            vec![(0, false); num_ancillas]
        } else {
            Vec::new()
        },
    };
    engine.run(config)
}

impl RtEngine<'_> {
    fn run(&mut self, config: &SimConfig) -> Result<ExecutionReport, SimError> {
        let max_rounds = config.max_cycles.saturating_mul(self.d as u64);
        for q in 0..self.circuit.num_qubits() {
            self.sched_worklist.push(QubitId(q));
        }
        self.events.push(self.d as u64, Ev::CycleTick);

        while self.done_count < self.circuit.len() {
            self.dispatch();
            if self.done_count >= self.circuit.len() {
                break;
            }
            let Some((t, ev)) = self.events.pop() else {
                return Err(SimError::Deadlock {
                    round: self.clock,
                    detail: format!(
                        "{} of {} gates pending with no events",
                        self.circuit.len() - self.done_count,
                        self.circuit.len()
                    ),
                });
            };
            self.clock = t;
            // Fabric occupancies that end at or before the new clock free
            // their ancillas *now*, before any event at this round is
            // handled — put them back in the dispatch frontier exactly
            // where the historical full rescan would have seen them.
            while let Some(&std::cmp::Reverse((when, a))) = self.occupancy_expiries.peek() {
                if when > self.clock {
                    break;
                }
                self.occupancy_expiries.pop();
                self.ledger.mark_dirty(a);
            }
            if self.clock > max_rounds {
                if std::env::var("RESCQ_DEBUG_STUCK").is_ok() {
                    self.dump_stuck_state();
                }
                return Err(SimError::WatchdogExceeded {
                    cycles: self.clock / self.d as u64,
                });
            }
            self.handle_event(ev);
        }

        Ok(ExecutionReport {
            scheduler: SchedulerKind::Rescq,
            seed: config.seed,
            engine_threads: self.engine_threads,
            distance: self.d,
            total_rounds: self.last_completion,
            gates_executed: self.gates_executed,
            cnot_latency: std::mem::take(&mut self.cnot_latency),
            rz_latency: std::mem::take(&mut self.rz_latency),
            decode_latency: std::mem::take(&mut self.decode_latency),
            data_busy_rounds: self.fabric.total_qubit_busy_rounds(),
            num_qubits: self.circuit.num_qubits(),
            achieved_compression: self.fabric.layout.compression(),
            k_used: self.mst.k(),
            tau_used: self.mst.tau(),
            counters: {
                let mut c = std::mem::take(&mut self.counters);
                c.mst_computations = self.mst.completed_computations();
                c.mst_incremental_updates = self.mst.incremental_updates();
                c.path_cache_hits = self.path_cache.hits();
                c.path_cache_misses = self.path_cache.misses();
                let dec = self.decoder.stats();
                debug_assert!(self.decoder.backlog().is_conserved());
                debug_assert_eq!(self.decoder.backlog().in_flight(), 0);
                c.decode_windows = dec.windows_submitted;
                c.decoder_stall_rounds = dec.stall_rounds;
                c.decoder_peak_backlog = dec.peak_backlog;
                c.decode_defects = dec.defects;
                c.decode_growth_steps = dec.growth_steps;
                c.decode_failures = dec.logical_failures;
                let ls = self.ledger.stats();
                c.preemptions = ls.preemptions;
                c.preemptions_rejected_cycle = ls.preemptions_rejected_cycle;
                c.preemptions_cross_shard = ls.preemptions_cross_shard;
                c.claims_cross_shard = ls.claims_cross_shard;
                c.preemptions_class = ls.preemptions_class;
                c.preemptions_by_class = ls.preemptions_by_class;
                c.preemptions_by_rank = ls.preemptions_by_rank.clone();
                c.waitgraph_peak_edges = ls.waitgraph_peak_edges;
                c
            },
            phase_nanos: self.phase_nanos,
        })
    }

    /// Debug helper: prints the state of every incomplete task (enabled via
    /// `RESCQ_DEBUG_STUCK=1`).
    fn dump_stuck_state(&self) {
        eprintln!("--- stuck at round {} ---", self.clock);
        for (i, t) in self.tasks.iter().enumerate() {
            if t.done {
                continue;
            }
            if let TaskBody::Rz {
                qubit,
                ladder,
                holders,
                helper_sites,
                injecting,
                ..
            } = &t.body
            {
                eprintln!(
                    "rz-diag task {i}: injecting={injecting} complete={} qubit_free={} preds_done={}",
                    ladder.is_complete(),
                    self.fabric.qubit_free(*qubit, self.clock),
                    self.dag.preds(t.gate).all(|p| self.gate_done[p.index()]),
                );
                let current = ladder.current_angle();
                let data = self.fabric.layout.data_tile(*qubit);
                for &(a, angle) in holders {
                    let tile = self.fabric.graph.tile(a);
                    let side = self.fabric.layout.grid().side_towards(data, tile);
                    eprintln!(
                        "  holder a={a} tile={tile} angle_match={} side={side:?}",
                        angle == current
                    );
                    if side.is_none() {
                        for &h in helper_sites {
                            eprintln!(
                                "    helper h={h} tile={} adj={} free={} top_is_task={}",
                                self.fabric.graph.tile(h),
                                self.fabric.graph.neighbors(h).contains(&a),
                                self.fabric.ancilla_free(h, self.clock),
                                self.ledger.queue(h).top().map(|e| e.task.0).unwrap_or(9999)
                            );
                        }
                        let adj = self.fabric.layout.data_adjacency(*qubit);
                        for &(side, h_tile) in &adj.side {
                            let h = self.fabric.graph.index_of(h_tile);
                            eprintln!(
                                "    chan side={side:?} tile={h_tile} dense={h:?} adj={:?} top={:?} free={:?}",
                                h.map(|h| self.fabric.graph.neighbors(h).contains(&a)),
                                h.map(|h| self.ledger.queue(h).top().map(|e| e.task.0)),
                                h.map(|h| self.fabric.ancilla_free(h, self.clock)),
                            );
                        }
                    }
                }
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.done {
                continue;
            }
            eprintln!(
                "task {i} gate {:?} body {:?}",
                self.circuit.gate(t.gate),
                t.body
            );
        }
        for (i, q) in self.ledger.queues() {
            if !q.is_empty() {
                let entries: Vec<String> = q
                    .iter()
                    .map(|e| format!("{}:{:?}:{:?}", e.task.0, e.role, e.status))
                    .collect();
                eprintln!(
                    "queue {i} free_at={} held={} prepping={:?}: {entries:?}",
                    self.fabric.ancilla_free_at(i),
                    self.fabric.is_held(i),
                    self.prepping[i as usize]
                );
            }
        }
        for q in 0..self.circuit.num_qubits() {
            let qq = QubitId(q);
            let chain = self.dag.qubit_chain(qq);
            if self.cursor[q as usize] < chain.len() {
                eprintln!(
                    "qubit {q} cursor {}/{} free={} next={:?}",
                    self.cursor[q as usize],
                    chain.len(),
                    self.fabric.qubit_free(qq, self.clock),
                    chain
                        .get(self.cursor[q as usize])
                        .map(|&g| self.circuit.gate(g)),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let traced = self.recorder.is_some();
        loop {
            let mut progress = false;
            // Phase 1 — schedule: new tasks claim queue positions.
            let t0 = traced.then(Instant::now);
            progress |= self.drain_sched_worklist();
            self.note_phase(Phase::Schedule, t0);
            // Phase 2 — start: real work (injections, surgeries) grabs
            // resources before new speculative preparations are started.
            let t1 = traced.then(Instant::now);
            for i in 0..self.live_tasks.len() {
                let id = self.live_tasks[i];
                progress |= self.try_start_task(id);
            }
            self.note_phase(Phase::Start, t1);
            // Phases 3 + 4 — propose and commit (the shard barrier).
            progress |= self.dispatch_ancillas();
            self.live_tasks.retain(|&id| !self.tasks[id.index()].done);
            if !progress {
                break;
            }
        }
        self.drain_ledger_events();
    }

    /// Closes a timed phase: accumulates its wall-clock and emits a
    /// [`TraceEvent::PhaseSpan`]. A no-op for untraced runs (`start` is
    /// `None`) — wall-clock never feeds back into the schedule.
    fn note_phase(&mut self, phase: Phase, start: Option<Instant>) {
        let Some(t0) = start else { return };
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.phase_nanos[phase.index()] += dur_ns;
        self.emit_with(|| TraceEvent::PhaseSpan {
            phase,
            round: self.clock,
            dur_ns,
        });
    }

    /// Records one trace event, built lazily: the closure runs only when
    /// a recorder is attached, so untraced runs pay one inlined branch and
    /// never evaluate the payload (the disabled-instrumentation contract,
    /// pinned by the allocation-count test).
    #[inline]
    fn emit_with(&self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(r) = self.recorder {
            r.record(ev());
        }
    }

    /// Forwards the ledger's buffered arbitration events (claims,
    /// preemptions, rejected reorders) to the recorder, stamped with the
    /// current round. Empty — and skipped — for untraced runs, which never
    /// enable the ledger's event log.
    fn drain_ledger_events(&mut self) {
        let Some(rec) = self.recorder else { return };
        let round = self.clock;
        for ev in self.ledger.take_events() {
            rec.record(match ev {
                LedgerEvent::Claim {
                    task,
                    ancilla,
                    cross_shard,
                } => TraceEvent::Claim {
                    round,
                    task: task.0 as u64,
                    ancilla,
                    cross_shard,
                },
                LedgerEvent::Preempted {
                    task,
                    ancilla,
                    class_won,
                } => TraceEvent::Preemption {
                    round,
                    task: task.0 as u64,
                    ancilla,
                    class_won,
                },
                LedgerEvent::Rejected { task, ancilla } => TraceEvent::PreemptionRejected {
                    round,
                    task: task.0 as u64,
                    ancilla,
                },
                LedgerEvent::WaitEdge {
                    waiter,
                    holder,
                    ancilla,
                } => TraceEvent::WaitEdge {
                    round,
                    waiter: waiter.0 as u64,
                    holder: holder.0 as u64,
                    ancilla,
                },
            });
        }
    }

    /// The shard phases of one scheduling pass: every region is scanned
    /// (in parallel for `engine_threads > 1`) against the frozen pass-start
    /// state, producing candidate ancillas; the coordinator then commits
    /// the candidates serially in ascending-ancilla order, recomputing each
    /// decision against committed state.
    ///
    /// Why this is bit-identical to the historical mutate-as-you-scan loop
    /// (`for a in 0..n { dispatch_ancilla(a) }`): within the ancilla phase,
    /// committing an action on ancilla `a` can *disable* a pending action
    /// on another ancilla (a reclaim shrinks its task's remaining prep
    /// sites) but can never *enable* one — every enabling condition reads
    /// only state local to the candidate ancilla (its queue, its fabric
    /// slot, its preparation) or task state the phase never grows. So the
    /// committed set of one pass equals exactly the snapshot-enabled set
    /// minus commit-time invalidations — the same set, in the same
    /// ascending order, as the sequential loop — and anything enabled by
    /// this pass's commits is picked up by the next pass of the fixpoint,
    /// again matching the sequential loop. RNG draws, event pushes and
    /// counters therefore occur in an identical total order for any thread
    /// count.
    fn dispatch_ancillas(&mut self) -> bool {
        let traced = self.recorder.is_some();
        let t0 = traced.then(Instant::now);
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        // The scan frontier is `dirty ∩ nonempty`: an empty queue can never
        // propose an action, and an *unmarked* ancilla provably re-proposes
        // the `None` it proposed last pass (every enabling mutation — ledger
        // writes, fabric holds expiring, preparations finishing — marks the
        // ancilla dirty). Clearing before the scan means commit-time
        // mutations land in the next pass's frontier, exactly like the
        // historical full rescan.
        let mut words = std::mem::take(&mut self.scratch.scan_words);
        words.clear();
        words.extend(
            self.ledger
                .dirty_words()
                .iter()
                .zip(self.ledger.nonempty_words())
                .map(|(d, n)| d & n),
        );
        self.ledger.clear_dirty();
        {
            let this = &*self;
            // Word-parallel scan over the frontier words: 64 idle or
            // untouched ancillas are skipped per word-compare.
            this.exec.scan_words_into(
                &this.partition,
                &words,
                &|a| this.ancilla_action(a).is_some(),
                &mut candidates,
            );
        }
        words.clear();
        self.scratch.scan_words = words;
        self.note_phase(Phase::Propose, t0);
        let t1 = traced.then(Instant::now);
        let mut progress = false;
        for &candidate in &candidates {
            progress |= self.commit_ancilla(candidate);
        }
        candidates.clear();
        self.scratch.candidates = candidates;
        self.note_phase(Phase::Commit, t1);
        progress
    }

    /// Processes qubits waiting for scheduling, deepest-remaining-chain
    /// first (Fig 7's priority rule).
    fn drain_sched_worklist(&mut self) -> bool {
        if self.sched_worklist.is_empty() {
            return false;
        }
        let mut order = std::mem::take(&mut self.scratch.worklist_order);
        order.clear();
        order.extend(self.sched_worklist.iter().enumerate().map(|(i, &q)| {
            let chain = self.dag.qubit_chain(q);
            let depth = chain
                .get(self.cursor[q.index()])
                .map_or(0, |&g| self.dag.remaining_depth(g));
            (std::cmp::Reverse(depth), i as u32, q)
        }));
        self.sched_worklist.clear();
        // `(Reverse(depth), insertion index)` is a total order, so the
        // unstable sort reproduces the historical stable deepest-first
        // order exactly — without the stable sort's merge buffer.
        order.sort_unstable_by_key(|&(depth, idx, _)| (depth, idx));
        let mut progress = false;
        let mut prev: Option<QubitId> = None;
        for &(_, _, q) in &order {
            // The historical `dedup()` collapsed consecutive duplicates
            // only; replicate that exactly (advance_qubit is idempotent,
            // so non-adjacent duplicates were — and are — simply re-run).
            if prev == Some(q) {
                continue;
            }
            prev = Some(q);
            progress |= self.advance_qubit(q);
        }
        order.clear();
        self.scratch.worklist_order = order;
        progress
    }

    /// Scheduling for one qubit: completes free gates, creates tasks for the
    /// cursor gate, and preemptively enqueues a following rotation.
    fn advance_qubit(&mut self, q: QubitId) -> bool {
        let mut progress = false;
        loop {
            let cursor = self.cursor[q.index()];
            let (gid, next_gid) = {
                let chain = self.dag.qubit_chain(q);
                (chain.get(cursor).copied(), chain.get(cursor + 1).copied())
            };
            let Some(gid) = gid else {
                return progress;
            };
            if self.gate_done[gid.index()] {
                self.cursor[q.index()] += 1;
                continue;
            }
            let gate = self.circuit.gate(gid);
            let preds_done = self.dag.preds(gid).all(|p| self.gate_done[p.index()]);
            if gate.is_free() {
                if preds_done {
                    self.complete_free_gate(gid);
                    progress = true;
                    continue;
                }
                return progress;
            }
            if !self.gate_scheduled[gid.index()] && preds_done {
                self.schedule_gate(gid);
                progress = true;
            }
            // Preemptive rotation enqueue: while the cursor gate is
            // scheduled/executing, the following continuous rotation on this
            // qubit already claims its prep ancillas (§4.1). Still skipped
            // on constrained fabrics — the ledger's preemption makes the
            // speculative claims *safe* there (stalled older CNOTs provably
            // overtake them without wait-graph cycles), but measurement says
            // they are not *profitable*: the claims push CNOT routes onto
            // detours at planning time, which no amount of claim-time
            // preemption can undo (suite geomean at 50% compression drops
            // ~5% with them on).
            if self.gate_scheduled[gid.index()] && !self.constrained {
                if let Some(next) = next_gid {
                    let g = self.circuit.gate(next);
                    if g.is_continuous_rotation() && !self.gate_scheduled[next.index()] {
                        self.schedule_gate(next);
                        progress = true;
                    }
                }
            }
            return progress;
        }
    }

    fn complete_free_gate(&mut self, gid: GateId) {
        self.gate_done[gid.index()] = true;
        self.done_count += 1;
        self.gates_executed += 1;
        self.last_completion = self.last_completion.max(self.clock);
        self.last_progress = self.clock;
        for q in self.circuit.gate(gid).qubits() {
            self.sched_worklist.push(q);
        }
        for s in self.dag.succs(gid) {
            for q in self.circuit.gate(*s).qubits() {
                self.sched_worklist.push(q);
            }
        }
    }

    /// The priority class of a new task: factory for work homed in a
    /// promoted region, injection for a rotation whose predecessors are
    /// already done, speculative for a preemptively enqueued rotation,
    /// compute for everything else — and the plain default when no lattice
    /// is configured (uniform classes ⇒ the pre-lattice engine bit for
    /// bit).
    fn task_class(&self, gid: GateId) -> TaskClass {
        let Some(p) = &self.priority else {
            return TaskClass::default();
        };
        let gate = self.circuit.gate(gid);
        // The task's home qubit: where its ancilla claims are anchored (the
        // control side for a CNOT — a factory tile's delivery CNOT rides
        // the factory's urgency so the produced state leaves the tile).
        let home = match gate.qubits() {
            GateQubits::One(q) => q,
            GateQubits::Two(control, _) => control,
        };
        let base = if p.factory_qubit[home.index()] {
            p.factory
        } else {
            match gate {
                Gate::Rz { .. } => {
                    if self.dag.preds(gid).all(|pr| self.gate_done[pr.index()]) {
                        p.injection
                    } else {
                        p.speculative
                    }
                }
                _ => p.compute,
            }
        };
        // Per-region urgency override on top: work homed next to a
        // promoted region's ancillas is raised to the region's class —
        // a factory region outranks compute regions.
        let adj = &self.adjacency[home.index()];
        let promoted = adj
            .side
            .iter()
            .filter_map(|&(_, tile)| {
                let a = self.fabric.graph.index_of(tile)?;
                self.partition.region_class(self.partition.region_of(a))
            })
            .max();
        match promoted {
            Some(region_class) if region_class > base => region_class,
            _ => base,
        }
    }

    fn schedule_gate(&mut self, gid: GateId) {
        self.gate_scheduled[gid.index()] = true;
        let id = TaskId(self.tasks.len() as u32);
        let class = self.task_class(gid);
        let body = match self.circuit.gate(gid) {
            Gate::H { qubit } => TaskBody::Hadamard {
                qubit,
                started: false,
            },
            Gate::Rz { qubit, angle } => {
                let (prep_sites, helper_sites) = self.enqueue_rz_sites(id, qubit, angle, class);
                TaskBody::Rz {
                    qubit,
                    ladder: InjectionLadder::new(angle),
                    prep_sites,
                    helper_sites,
                    holders: self.pools.holders.take(),
                    injecting: false,
                    awaiting_decode: false,
                    pending_prep_decodes: 0,
                }
            }
            Gate::Cnot { control, target } => {
                let path = self.plan_and_enqueue_cnot(id, control, target, class);
                TaskBody::Cnot {
                    control,
                    target,
                    path,
                    rotating: false,
                    surgery_started: false,
                    planned_round: self.clock,
                }
            }
            other => unreachable!("free gate {other} reached scheduling"),
        };
        self.tasks.push(Task {
            gate: gid,
            sched_round: self.clock,
            done: false,
            class,
            body,
        });
        self.live_tasks.push(id);
    }

    /// Enqueues a rotation into every valid neighbouring ancilla (Fig 7):
    /// Z-edge neighbours prepare for ZZ injection, diagonals prepare for CNOT
    /// injection through an X-edge helper, X-edge neighbours are reserved as
    /// helpers (or become prep sites themselves when nothing better exists).
    fn enqueue_rz_sites(
        &mut self,
        id: TaskId,
        qubit: QubitId,
        angle: Angle,
        class: TaskClass,
    ) -> (Vec<(AncillaIndex, bool)>, Vec<AncillaIndex>) {
        let orient = self.fabric.orientation[qubit.index()];
        let adj = &self.adjacency[qubit.index()];
        let mut prep_sites = self.pools.sites.take();
        let mut helper_sites = self.pools.helpers.take();
        let mut x_side = std::mem::take(&mut self.scratch.x_side);
        x_side.clear();

        for &(side, tile) in &adj.side {
            let Some(a) = self.fabric.graph.index_of(tile) else {
                continue;
            };
            if orient.edge_at(side) == EdgeType::Z {
                self.ledger.push(
                    a,
                    QueueEntry::new(id, Role::PrepZz, angle).with_class(class),
                );
                prep_sites.push((a, true));
            } else {
                x_side.push(a);
            }
        }
        for &(_, tile, ref helpers) in &adj.diagonal {
            let Some(a) = self.fabric.graph.index_of(tile) else {
                continue;
            };
            let Some(h) = helpers.iter().find_map(|&t| self.fabric.graph.index_of(t)) else {
                continue;
            };
            self.ledger.push(
                a,
                QueueEntry::new(
                    id,
                    Role::PrepDiagonal {
                        helper: self.fabric.graph.tile(h),
                    },
                    angle,
                )
                .with_class(class),
            );
            prep_sites.push((a, false));
        }
        if prep_sites.is_empty() {
            // Constrained geometry: prepare on the X-edge neighbours.
            for &a in &x_side {
                self.ledger
                    .push(a, QueueEntry::new(id, Role::PrepX, angle).with_class(class));
                prep_sites.push((a, true));
            }
        } else {
            for &a in &x_side {
                self.ledger.push(
                    a,
                    QueueEntry::new(id, Role::Helper, angle).with_class(class),
                );
                helper_sites.push(a);
            }
        }
        if self.constrained {
            // §3.2's n − m redistribution taken to its limit: on a heavily
            // compressed fabric each rotation keeps its single best prep
            // site (side-adjacent preferred — it can inject alone) plus at
            // most one helper, returning every other claim to the pool.
            if let Some(keep_at) = prep_sites.iter().position(|&(_, side)| side) {
                let keep = prep_sites[keep_at];
                for &(a, _) in prep_sites.iter().filter(|&&(a, _)| a != keep.0) {
                    self.ledger.remove_task(a, id);
                }
                prep_sites.clear();
                prep_sites.push(keep);
                for &h in &helper_sites {
                    self.ledger.remove_task(h, id);
                }
                helper_sites.clear();
            } else if prep_sites.len() > 1 {
                for &(a, _) in &prep_sites[1..] {
                    self.ledger.remove_task(a, id);
                }
                prep_sites.truncate(1);
                // The one helper kept must actually flank the kept diagonal
                // site — an arbitrary X-side claim would be useless to it.
                let keep_site = prep_sites[0].0;
                let keep_helper = helper_sites
                    .iter()
                    .copied()
                    .find(|&h| self.fabric.graph.neighbors(h).contains(&keep_site));
                for &h in &helper_sites {
                    if Some(h) != keep_helper {
                        self.ledger.remove_task(h, id);
                    }
                }
                helper_sites.clear();
                helper_sites.extend(keep_helper);
            }
        }
        x_side.clear();
        self.scratch.x_side = x_side;
        (prep_sites, helper_sites)
    }

    /// Plans a route for `id`'s CNOT into `best` (cleared; left empty when
    /// no route exists). `id` matters for re-planning: the task's own
    /// queued Route entries are excluded from the load estimate, so holding
    /// a path never biases the planner against that same path.
    fn plan_cnot_path_into(
        &mut self,
        id: TaskId,
        control: QubitId,
        target: QubitId,
        best: &mut Vec<AncillaIndex>,
    ) {
        let mut expected_free = std::mem::take(&mut self.scratch.expected_free);
        self.fill_expected_free(id, &mut expected_free);
        let mut route = std::mem::take(&mut self.scratch.route);
        let adjacency = self.adjacency;
        let _ = plan_cnot_route_into(
            &self.fabric.graph,
            self.mst.current(),
            self.mst.generation(),
            &mut self.path_cache,
            control,
            target,
            &adjacency[control.index()],
            &adjacency[target.index()],
            &self.fabric.orientation,
            &self.costs,
            self.d,
            |a| expected_free[a as usize],
            &mut route,
            best,
        );
        self.scratch.route = route;
        self.scratch.expected_free = expected_free;
    }

    fn plan_and_enqueue_cnot(
        &mut self,
        id: TaskId,
        control: QubitId,
        target: QubitId,
        class: TaskClass,
    ) -> Vec<AncillaIndex> {
        let mut path = self.pools.paths.take();
        self.plan_cnot_path_into(id, control, target, &mut path);
        self.enqueue_route_claims(id, &path, class);
        self.emit_with(|| TraceEvent::RoutePlanned {
            round: self.clock,
            task: id.0 as u64,
            hops: path.len() as u32,
            replanned: false,
        });
        path
    }

    /// Registers a CNOT path's Route claims with the ledger, tagged with
    /// the shards involved: the task's home shard is the region of the
    /// path's control-side endpoint, and every claim on an ancilla hosted
    /// in another region is a cross-shard claim (counted by the ledger's
    /// arbitration; the claims themselves are ordinary seniority-ordered
    /// reservations). Each claim carries the proposing task's priority
    /// class, so cross-shard arbitration is class-aware without any change
    /// to the barrier protocol — the class travels with the reservation.
    fn enqueue_route_claims(&mut self, id: TaskId, path: &[AncillaIndex], class: TaskClass) {
        let Some(&first) = path.first() else { return };
        let home = ShardId(self.partition.region_of(first));
        for &a in path {
            let host = ShardId(self.partition.region_of(a));
            self.ledger.push_claim(
                a,
                QueueEntry::new(id, Role::Route, Angle::ZERO).with_class(class),
                home,
                host,
            );
        }
    }

    /// `E[f_a]` for every ancilla into `out`: the sum of expected durations
    /// of its queued operations (§4.2), excluding entries of `exclude`
    /// itself. Per-ancilla terms are independent, so the shard executor
    /// computes region slices in parallel — the planner's hottest read.
    /// An empty queue's estimate is exactly `clock`, so the fill is sparse
    /// over the ledger's nonempty bitmap: idle ancillas cost one word-wide
    /// memset lane instead of a queue walk each.
    fn fill_expected_free(&self, exclude: TaskId, out: &mut Vec<u64>) {
        let d = self.d as u64;
        let cnot = self.costs.cnot_cycles as u64 * d;
        let inj = self.costs.cnot_injection_cycles as u64 * d;
        let rz = self.rz_entry_cost;
        let clock = self.clock;
        self.exec.fill_u64_sparse_into(
            &self.partition,
            self.ledger.nonempty_words(),
            clock,
            &|a| {
                clock
                    + self.ledger.queue(a).expected_free_rounds(|e| {
                        if e.task == exclude {
                            return 0;
                        }
                        match e.role {
                            Role::Route => cnot,
                            Role::Helper => inj,
                            Role::EdgeRotate => 3 * d,
                            _ => rz,
                        }
                    })
            },
            out,
        );
    }

    // ------------------------------------------------------------------
    // Ancilla queue processing
    // ------------------------------------------------------------------

    /// The pure per-ancilla scheduling decision — the shard workers'
    /// *propose* half. Reads only frozen state (this runs concurrently on
    /// worker threads), and is re-evaluated by [`Self::commit_ancilla`]
    /// against committed state before anything is applied.
    fn ancilla_action(&self, a: AncillaIndex) -> Option<AncillaAction> {
        let top = self.ledger.queue(a).top()?;
        if !top.role.is_prep() {
            return None;
        }
        let task_id = top.task;
        // Reclaim (§3.2): a still-preparing ancilla with work queued behind
        // it is returned to the pool when the rotation has other prep sites
        // *and* the remaining sites can still complete an injection (at
        // least one side-adjacent site, or a diagonal site with helpers).
        if self.ledger.queue(a).len() > 1
            && !self.is_holding(task_id, a)
            && self.can_reclaim(task_id, a)
        {
            return Some(AncillaAction::Reclaim);
        }
        if self.is_holding(task_id, a) {
            return None; // holding a finished state, waiting for injection
        }
        // Eager correction preparation (Fig 1e) runs even on constrained
        // fabrics now: PR 1 had to forbid re-preparing while the task's
        // injection was in flight because the held ancilla could starve CNOT
        // routes with no safe way to take it back. The ledger changed that —
        // stalled routes preempt speculative claims (cycle-checked), ready
        // injections evict speculative holds, and the stall breaker discards
        // holds whose owner cannot consume them — so the correction ladder
        // may pipeline its next state behind the in-flight injection, which
        // is where the constrained-fabric rotation win comes from.
        match self.prepping[a as usize] {
            Some(angle) if angle == top.angle => None, // already preparing it
            // In-place rewrite hit a running preparation: restart it.
            Some(_) => Some(AncillaAction::RestartPrep),
            None => {
                let owner = task_id.0 as u64;
                if self.fabric.ancilla_free(a, self.clock) || self.fabric.is_held_by(a, owner) {
                    Some(AncillaAction::StartPrep)
                } else {
                    None
                }
            }
        }
    }

    /// Whether `task`'s rotation keeps enough other prep sites to inject if
    /// site `a` is reclaimed: a remaining side-adjacent site injects on its
    /// own; a diagonal site needs a recorded helper it actually touches.
    fn can_reclaim(&self, task_id: TaskId, a: AncillaIndex) -> bool {
        match &self.tasks[task_id.index()].body {
            TaskBody::Rz {
                prep_sites,
                helper_sites,
                ..
            } => prep_sites.iter().any(|&(s, side)| {
                s != a
                    && (side
                        || helper_sites
                            .iter()
                            .any(|&h| self.fabric.graph.neighbors(h).contains(&s)))
            }),
            _ => false,
        }
    }

    /// The *commit* half: revalidates a shard proposal against committed
    /// state (earlier commits of the same pass may have invalidated it, or
    /// changed which action applies) and executes it through the ledger.
    /// Always called in ascending-ancilla order — the canonical commit
    /// order the determinism contract rests on.
    fn commit_ancilla(&mut self, a: AncillaIndex) -> bool {
        let Some(action) = self.ancilla_action(a) else {
            return false; // proposal invalidated by an earlier commit
        };
        let ai = a as usize;
        let top = *self.ledger.queue(a).top().expect("action implies an entry");
        let task_id = top.task;
        match action {
            AncillaAction::Reclaim => {
                self.cancel_prep_for(a, task_id);
                self.ledger.remove_task(a, task_id);
                if let TaskBody::Rz { prep_sites, .. } = &mut self.tasks[task_id.index()].body {
                    prep_sites.retain(|&(s, _)| s != a);
                }
                self.counters.preps_cancelled += 1;
            }
            AncillaAction::RestartPrep => {
                self.prep_epoch[ai] += 1;
                self.counters.preps_cancelled += 1;
                self.start_prep(a, task_id, top.angle);
            }
            AncillaAction::StartPrep => {
                let owner = task_id.0 as u64;
                if !self.fabric.is_held_by(a, owner) {
                    self.fabric.hold_ancilla(a, owner);
                }
                self.start_prep(a, task_id, top.angle);
            }
        }
        true
    }

    fn start_prep(&mut self, a: AncillaIndex, task: TaskId, angle: Angle) {
        let rounds = self.prep_model.sample_prep_rounds(&mut self.rng);
        // The task is preparing again: its class displacement (if any) is
        // over for stall-attribution purposes.
        self.displaced_by_class.remove(task.0 as usize);
        self.prepping[a as usize] = Some(angle);
        self.ledger.set_top_status(a, EntryStatus::Preparing);
        self.counters.preps_started += 1;
        self.events.push(
            self.clock + rounds,
            Ev::PrepDone {
                ancilla: a,
                task,
                angle,
                epoch: self.prep_epoch[a as usize],
            },
        );
    }

    /// Cancels an in-flight preparation on `a` *if it belongs to `task`*
    /// (preparations always serve the queue-top entry, so ownership is
    /// checked against the top).
    fn cancel_prep_for(&mut self, a: AncillaIndex, task: TaskId) {
        let ai = a as usize;
        if self.ledger.queue(a).top().is_none_or(|e| e.task != task) {
            return;
        }
        if self.prepping[ai].is_some() {
            self.prep_epoch[ai] += 1;
            self.prepping[ai] = None;
        }
        if self.fabric.is_held_by(a, task.0 as u64) {
            self.fabric.release_ancilla(a, self.clock);
        }
    }

    fn is_holding(&self, task: TaskId, a: AncillaIndex) -> bool {
        match &self.tasks[task.index()].body {
            TaskBody::Rz { holders, .. } => holders.iter().any(|&(h, _)| h == a),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Task starts
    // ------------------------------------------------------------------

    fn try_start_task(&mut self, id: TaskId) -> bool {
        if self.tasks[id.index()].done {
            return false;
        }
        let gate = self.tasks[id.index()].gate;
        let preds_done = self.dag.preds(gate).all(|p| self.gate_done[p.index()]);
        match &self.tasks[id.index()].body {
            TaskBody::Hadamard { qubit, started } => {
                let (qubit, started) = (*qubit, *started);
                if started || !preds_done || !self.fabric.qubit_free(qubit, self.clock) {
                    return false;
                }
                let until = self.clock + self.costs.hadamard_cycles as u64 * self.d as u64;
                self.fabric.occupy_qubit(qubit, self.clock, until);
                if let TaskBody::Hadamard { started, .. } = &mut self.tasks[id.index()].body {
                    *started = true;
                }
                self.events.push(until, Ev::HDone { task: id });
                true
            }
            TaskBody::Rz { .. } => {
                if !preds_done {
                    // No class preemption while speculative: reordering a
                    // not-yet-runnable task ahead of work its own
                    // predecessors transitively depend on closes a wait
                    // cycle *through the dependency DAG* that the ledger's
                    // queue-level acyclicity check cannot see (the held
                    // ancilla then starves the dependency into a
                    // stall-breaker livelock). Once the predecessors are
                    // done, no displaced task can sit on the preemptor's
                    // dependency chain, so the reorder is live as well as
                    // acyclic.
                    return false;
                }
                // Class-aware prep-site preemption (lattice runs only): a
                // runnable rotation queued behind strictly lower-class
                // claims asks the ledger to reorder it to the top of its
                // prep sites so its |mθ⟩ pipeline starts now — the
                // factory-over-compute urgency of the class lattice. Equal
                // classes fall back to seniority inside the ledger, and
                // every reorder is still cycle-checked; class-blind runs
                // never reach this path.
                let mut progress = false;
                if self.priority.is_some() {
                    self.promote_runnable_class(id);
                    progress = self.class_preempt_prep_sites(id);
                }
                self.try_start_injection(id) || progress
            }
            TaskBody::Cnot { .. } => {
                if !preds_done {
                    return false;
                }
                self.try_start_surgery(id)
            }
        }
    }

    /// Asks the ledger to reorder `id`'s entry to the top of each of its
    /// prep sites (class-aware arbitration; see the call site in
    /// [`Self::try_start_task`]). Applied reorders cancel the displaced
    /// preparation exactly like a stalled-CNOT preemption.
    /// Promotes a now-runnable rotation from the speculative class to the
    /// injection class, rewriting its queue entries in place. A rotation
    /// enqueued preemptively (predecessors incomplete) is stamped
    /// speculative at claim time; once its predecessors finish, its
    /// injection is the latency-critical feed-forward step, so the lattice's
    /// injection-over-compute urgency must apply — and compute work must no
    /// longer displace its claims by class. Entry positions (and the wait
    /// graph) are untouched.
    fn promote_runnable_class(&mut self, id: TaskId) {
        let Some(p) = &self.priority else { return };
        let injection = p.injection;
        if self.tasks[id.index()].class >= injection {
            return; // already injection-or-better (e.g. factory)
        }
        self.tasks[id.index()].class = injection;
        let (num_sites, num_helpers) = match &self.tasks[id.index()].body {
            TaskBody::Rz {
                prep_sites,
                helper_sites,
                ..
            } => (prep_sites.len(), helper_sites.len()),
            _ => return, // only rotations are ever enqueued speculatively
        };
        // Indexed re-fetch: `update_class` rewrites ledger entries, never
        // the task body, so the site lists are stable across iterations.
        for i in 0..num_sites {
            let a = match &self.tasks[id.index()].body {
                TaskBody::Rz { prep_sites, .. } => prep_sites[i].0,
                _ => unreachable!("task body cannot change kind"),
            };
            self.ledger.update_class(a, id, injection);
        }
        for i in 0..num_helpers {
            let a = match &self.tasks[id.index()].body {
                TaskBody::Rz { helper_sites, .. } => helper_sites[i],
                _ => unreachable!("task body cannot change kind"),
            };
            self.ledger.update_class(a, id, injection);
        }
    }

    fn class_preempt_prep_sites(&mut self, id: TaskId) -> bool {
        let TaskBody::Rz { ref prep_sites, .. } = self.tasks[id.index()].body else {
            return false;
        };
        // Indexed iteration: nothing this loop calls mutates `prep_sites`
        // (only a Reclaim commit does, in a different phase), and indexing
        // avoids cloning the site list on a per-dispatch hot path.
        // Eligibility (position, structural yield, class rule, cycle
        // check) is entirely `try_preempt`'s job.
        let mut progress = false;
        for i in 0..prep_sites.len() {
            let TaskBody::Rz { ref prep_sites, .. } = self.tasks[id.index()].body else {
                unreachable!("task body cannot change kind");
            };
            let a = prep_sites[i].0;
            if let Preemption::Applied {
                displaced_top,
                class_won,
            } = self.ledger.try_preempt(id, a)
            {
                debug_assert!(
                    self.ledger.is_acyclic(),
                    "class preemption broke acyclicity"
                );
                self.cancel_displaced_prep(a, displaced_top);
                if class_won {
                    self.displaced_by_class.insert(displaced_top.0 as usize);
                }
                progress = true;
            }
        }
        progress
    }

    fn try_start_injection(&mut self, id: TaskId) -> bool {
        let TaskBody::Rz {
            qubit,
            ref ladder,
            ref holders,
            ref helper_sites,
            injecting,
            ..
        } = self.tasks[id.index()].body
        else {
            return false;
        };
        if injecting || ladder.is_complete() || !self.fabric.qubit_free(qubit, self.clock) {
            return false;
        }
        let _ = helper_sites;
        let current = ladder.current_angle();
        let data = self.fabric.layout.data_tile(qubit);
        let orient = self.fabric.orientation[qubit.index()];
        let adj = &self.adjacency[qubit.index()];

        // Pick the cheapest feasible injection among ready holders (Table 1).
        // Diagonal holders route through any side-adjacent ancilla touching
        // them; the channel may even be one of our *own* eager-correction
        // holders, whose state is then discarded ("any additional successful
        // preparations can be discarded if necessary", §3.2).
        // (cycles, holder, optional (channel ancilla, channel is ours)).
        type InjectionOption = (u32, AncillaIndex, Option<(AncillaIndex, bool)>);
        let mut best: Option<InjectionOption> = None;
        for &(a, angle) in holders {
            if angle != current {
                continue;
            }
            let tile = self.fabric.graph.tile(a);
            let option = match self.fabric.layout.grid().side_towards(data, tile) {
                Some(side) if orient.edge_at(side) == EdgeType::Z => {
                    Some((self.costs.zz_injection_cycles, a, None))
                }
                Some(_) => Some((self.costs.cnot_injection_cycles, a, None)),
                None => {
                    let mut channel: Option<(u32, AncillaIndex, bool)> = None;
                    for &(side, h_tile) in &adj.side {
                        let Some(h) = self.fabric.graph.index_of(h_tile) else {
                            continue;
                        };
                        if !self.fabric.graph.neighbors(h).contains(&a) {
                            continue;
                        }
                        // The channel must be available to us: our task is
                        // at the head of its queue, nobody queued for it, or
                        // every queued claimant is *younger* — seniority
                        // entitles the older gate to the resource (§4.1).
                        let top = self.ledger.queue(h).top();
                        if !(top.is_none() || top.is_some_and(|e| e.task >= id)) {
                            continue;
                        }
                        // An "ours" channel must actually carry our fabric
                        // hold (discarding our own eager state frees it); a
                        // foreign one must simply be free — or freeable by
                        // evicting a still-speculative preparation's claim
                        // (the prep keeps its queue position and restarts).
                        let ours = self.is_holding(id, h) && self.fabric.is_held_by(h, id.0 as u64);
                        let evictable = !ours && self.speculative_hold_on(h).is_some();
                        if !ours && !evictable && !self.fabric.ancilla_free(h, self.clock) {
                            continue;
                        }
                        // A Z-side channel supports the 1-cycle ZZ merge
                        // (Pauli products are distance-independent, §2); an
                        // X-side channel is the Fig 6b CNOT injection.
                        let cycles = if orient.edge_at(side) == EdgeType::Z {
                            self.costs.zz_injection_cycles
                        } else {
                            self.costs.cnot_injection_cycles
                        };
                        if channel.is_none_or(|c| cycles < c.0) {
                            channel = Some((cycles, h, ours));
                        }
                    }
                    channel.map(|(cycles, h, ours)| (cycles, a, Some((h, ours))))
                }
            };
            if let Some(opt) = option {
                if best.as_ref().is_none_or(|b| opt.0 < b.0) {
                    best = Some(opt);
                }
            }
        }
        let Some((cycles, holder, helper)) = best else {
            return false;
        };

        let until = self.clock + cycles as u64 * self.d as u64;
        self.fabric.occupy_qubit(qubit, self.clock, until);
        if let Some((h, ours)) = helper {
            if !ours && !self.fabric.ancilla_free(h, self.clock) {
                // Claim eviction: the channel is held by a speculative
                // preparation that could not be consumed yet; reclaim the
                // fabric for the injection that is ready *now*.
                if let Some(t) = self.speculative_hold_on(h) {
                    self.cancel_displaced_prep(h, t);
                }
            }
            if ours {
                // Discard our own eager state blocking the channel.
                self.fabric.release_ancilla(h, self.clock);
                if let TaskBody::Rz { holders, .. } = &mut self.tasks[id.index()].body {
                    holders.retain(|&(x, _)| x != h);
                }
                self.ledger.set_top_status_if(h, id, EntryStatus::Ready);
                self.counters.states_discarded += 1;
            }
            self.fabric.occupy_ancilla(h, self.clock, until);
            self.occupancy_expiries.push(std::cmp::Reverse((until, h)));
        }
        if let TaskBody::Rz {
            holders, injecting, ..
        } = &mut self.tasks[id.index()].body
        {
            holders.retain(|&(a, _)| a != holder);
            *injecting = true;
        }
        self.ledger.set_top_status(holder, EntryStatus::Executing);
        self.displaced_by_class.remove(id.0 as usize);
        self.counters.injections += 1;
        self.events.push(
            until,
            Ev::InjectDone {
                task: id,
                holder,
                rounds: (until - self.clock) as u32,
            },
        );
        true
    }

    fn try_start_surgery(&mut self, id: TaskId) -> bool {
        let TaskBody::Cnot {
            control,
            target,
            ref path,
            rotating,
            surgery_started,
            planned_round,
        } = self.tasks[id.index()].body
        else {
            return false;
        };
        if rotating || surgery_started || path.is_empty() {
            return false;
        }
        if !self.fabric.qubit_free(control, self.clock)
            || !self.fabric.qubit_free(target, self.clock)
        {
            return false;
        }
        // Take the path out of the task body for the duration of the
        // attempt (restored on every exit) — the historical code cloned it
        // here, once per attempt on the hot path.
        let path = match &mut self.tasks[id.index()].body {
            TaskBody::Cnot { path, .. } => std::mem::take(path),
            _ => unreachable!("checked above"),
        };
        let mut all_ready = self.cnot_path_ready(id, &path);
        // Preemption for stalled CNOTs: always armed on constrained fabrics
        // (where routes starve without it), and on any fabric when the
        // priority lattice is enabled (a factory delivery CNOT may outrank
        // the compute claims blocking its path).
        if !all_ready && (self.constrained || self.priority.is_some()) {
            // Seniority-safe preemption (the mechanism the naive yield
            // lacked): ask the ledger to reorder this stalled CNOT ahead of
            // the younger speculative preparations blocking its path. The
            // ledger commits a reorder only when the incremental cycle
            // check proves the wait-for graph stays acyclic — the proof is
            // shard-agnostic, so a path spanning several regions preempts
            // across shard boundaries through the same arbitration (the
            // ledger tags such reorders in its cross-shard counter).
            let home = ShardId(self.partition.region_of(path[0]));
            let mut preempted = false;
            let mut spec = std::mem::take(&mut self.scratch.spec_tasks);
            for &a in &path {
                if self.ledger.queue(a).top().is_some_and(|e| e.task == id) {
                    continue;
                }
                // A preparation may yield when its task is younger than the
                // stalled CNOT, or when it is still fully speculative — its
                // owner's predecessor gates are incomplete, so the prepared
                // state could not be consumed yet anyway. (Snapshotted into
                // recycled scratch: each task has at most one entry per
                // queue, so the per-entry filter equals set membership.)
                spec.clear();
                for e in self.ledger.queue(a).iter() {
                    if e.task != id
                        && (e.role.is_prep() || e.role == Role::Helper)
                        && self.is_speculative(e.task)
                    {
                        spec.push(e.task);
                    }
                }
                let host = ShardId(self.partition.region_of(a));
                let outcome = self.ledger.try_preempt_across(id, a, home, host, |e| {
                    e.task > id || spec.contains(&e.task)
                });
                if let Preemption::Applied {
                    displaced_top,
                    class_won,
                } = outcome
                {
                    debug_assert!(self.ledger.is_acyclic(), "preemption broke acyclicity");
                    self.cancel_displaced_prep(a, displaced_top);
                    if class_won {
                        self.displaced_by_class.insert(displaced_top.0 as usize);
                    }
                    preempted = true;
                }
            }
            spec.clear();
            self.scratch.spec_tasks = spec;
            if preempted {
                all_ready = self.cnot_path_ready(id, &path);
            }
        }
        if !all_ready {
            // On a constrained fabric a committed path can stay blocked
            // while an alternative route is free: re-plan a stalled CNOT
            // against current queue estimates (greedy gets this adaptivity
            // for free by routing at dispatch time).
            let stalled_rounds = self.costs.cnot_cycles as u64 * self.d as u64;
            if self.constrained && self.clock.saturating_sub(planned_round) >= stalled_rounds {
                // Plan first and only move if the route actually changes:
                // re-enqueueing an identical path would surrender the
                // task's queue seniority for nothing (priority inversion).
                let mut new_path = self.pools.paths.take();
                self.plan_cnot_path_into(id, control, target, &mut new_path);
                if new_path != path {
                    let class = self.tasks[id.index()].class;
                    for &a in &path {
                        self.ledger.remove_task(a, id);
                    }
                    self.enqueue_route_claims(id, &new_path, class);
                    self.emit_with(|| TraceEvent::RoutePlanned {
                        round: self.clock,
                        task: id.0 as u64,
                        hops: new_path.len() as u32,
                        replanned: true,
                    });
                    self.counters.cnot_replans += 1;
                    self.pools.paths.put(path);
                    if let TaskBody::Cnot {
                        path,
                        planned_round,
                        ..
                    } = &mut self.tasks[id.index()].body
                    {
                        *path = new_path;
                        *planned_round = self.clock;
                    }
                    return false;
                }
                self.pools.paths.put(new_path);
                if let TaskBody::Cnot { planned_round, .. } = &mut self.tasks[id.index()].body {
                    *planned_round = self.clock;
                }
            }
            if let TaskBody::Cnot { path: p, .. } = &mut self.tasks[id.index()].body {
                *p = path;
            }
            return false;
        }
        // Validate boundary orientations at the endpoints; rotate lazily if a
        // Hadamard (or an earlier rotation) flipped them since planning.
        let mut rotate: Option<(AncillaIndex, QubitId)> = None;
        for (endpoint, qubit, want) in [
            (*path.first().expect("non-empty"), control, EdgeType::Z),
            (*path.last().expect("non-empty"), target, EdgeType::X),
        ] {
            let data = self.fabric.layout.data_tile(qubit);
            let tile = self.fabric.graph.tile(endpoint);
            let side = self
                .fabric
                .layout
                .grid()
                .side_towards(data, tile)
                .expect("endpoint adjacent to its data qubit");
            if self.fabric.orientation[qubit.index()].edge_at(side) != want {
                rotate = Some((endpoint, qubit));
                break;
            }
        }
        if let Some((endpoint, qubit)) = rotate {
            let until = self.clock + self.costs.edge_rotation_cycles as u64 * self.d as u64;
            self.fabric.occupy_qubit(qubit, self.clock, until);
            self.fabric.occupy_ancilla(endpoint, self.clock, until);
            self.occupancy_expiries
                .push(std::cmp::Reverse((until, endpoint)));
            if let TaskBody::Cnot {
                path: p, rotating, ..
            } = &mut self.tasks[id.index()].body
            {
                *p = path;
                *rotating = true;
            }
            self.counters.edge_rotations += 1;
            self.events
                .push(until, Ev::RotationDone { task: id, qubit });
            return true;
        }
        // All clear: run the 2-cycle merge/split surgery.
        let until = self.clock + self.costs.cnot_cycles as u64 * self.d as u64;
        self.fabric.occupy_qubit(control, self.clock, until);
        self.fabric.occupy_qubit(target, self.clock, until);
        for &a in &path {
            self.fabric.occupy_ancilla(a, self.clock, until);
            self.occupancy_expiries.push(std::cmp::Reverse((until, a)));
            self.ledger.set_top_status(a, EntryStatus::Executing);
        }
        if let TaskBody::Cnot {
            path: p,
            surgery_started,
            ..
        } = &mut self.tasks[id.index()].body
        {
            *p = path;
            *surgery_started = true;
        }
        self.counters.cnot_surgeries += 1;
        self.events.push(until, Ev::SurgeryDone { task: id });
        true
    }

    /// Whether every ancilla of a CNOT path is free with the task's Route
    /// entry at the top of its queue.
    fn cnot_path_ready(&self, id: TaskId, path: &[AncillaIndex]) -> bool {
        path.iter().all(|&a| {
            self.fabric.ancilla_free(a, self.clock)
                && self.ledger.queue(a).top().is_some_and(|e| e.task == id)
        })
    }

    /// Whether `t` is still speculative: its gate's predecessors are not all
    /// done, so it could not consume a prepared state yet.
    fn is_speculative(&self, t: TaskId) -> bool {
        let task = &self.tasks[t.index()];
        !task.done && !self.dag.preds(task.gate).all(|p| self.gate_done[p.index()])
    }

    /// The task whose *speculative* in-flight preparation holds ancilla `a`,
    /// if that claim is evictable: the preparation serves the queue top, has
    /// not completed (no state would be lost), and its owner cannot consume
    /// the state yet. Constrained fabrics only.
    fn speculative_hold_on(&self, a: AncillaIndex) -> Option<TaskId> {
        if !self.constrained || self.prepping[a as usize].is_none() {
            return None;
        }
        let e = self.ledger.queue(a).top()?;
        if e.role.is_prep()
            && e.status == EntryStatus::Preparing
            && self.fabric.is_held_by(a, e.task.0 as u64)
            && self.is_speculative(e.task)
        {
            Some(e.task)
        } else {
            None
        }
    }

    /// After a ledger preemption displaced `task`'s preparation from the top
    /// of ancilla `a`'s queue: cancel the in-flight preparation (it restarts
    /// when the entry returns to the top) and release the displaced task's
    /// open-ended claim on the ancilla.
    fn cancel_displaced_prep(&mut self, a: AncillaIndex, task: TaskId) {
        let ai = a as usize;
        if self.prepping[ai].is_some() {
            self.prep_epoch[ai] += 1;
            self.prepping[ai] = None;
            self.counters.preps_cancelled += 1;
        }
        if self.fabric.is_held_by(a, task.0 as u64) {
            self.fabric.release_ancilla(a, self.clock);
        }
    }

    /// Last-resort stall breaker: when no gate has completed for
    /// [`STALL_BREAK_CYCLES`], speculative eager-correction holds (states for
    /// an angle the ladder does not currently need) are discarded so the
    /// ancillas return to the pool — the paper's reclaim rule applied
    /// globally. States held by tasks whose predecessor gates are incomplete
    /// are discarded too: they cannot be consumed yet, and such holds can
    /// close a wait cycle *through the dependency DAG* that the ledger's
    /// queue-level wait-for graph cannot see. Real work restarts on the next
    /// dispatch.
    fn break_stall(&mut self) {
        let mut stale = std::mem::take(&mut self.scratch.stale);
        for i in 0..self.tasks.len() {
            if self.tasks[i].done {
                continue;
            }
            let speculative = self.is_speculative(TaskId(i as u32));
            let TaskBody::Rz {
                ref ladder,
                ref holders,
                ..
            } = self.tasks[i].body
            else {
                continue;
            };
            let current = ladder.current_angle();
            stale.clear();
            stale.extend(
                holders
                    .iter()
                    .filter(|&&(_, ang)| speculative || ang != current)
                    .map(|&(a, _)| a),
            );
            let discarded = !stale.is_empty();
            for &a in &stale {
                self.fabric.release_ancilla(a, self.clock);
                self.ledger
                    .set_top_status_if(a, TaskId(i as u32), EntryStatus::Ready);
                if let TaskBody::Rz { holders, .. } = &mut self.tasks[i].body {
                    holders.retain(|&(x, _)| x != a);
                }
                self.counters.states_discarded += 1;
            }
            if discarded {
                // Retarget the surviving (non-holding) prep-site entries
                // back to the angle the ladder actually needs. A discarded
                // state can be the task's only copy of the current angle
                // while its sibling entries were already rewritten to the
                // |m2θ⟩ correction (eager preparation, §4.1) — without the
                // retarget, every restarted preparation reproduces the
                // stale correction angle and the task livelocks through
                // the stall breaker forever (pinned regression:
                // factory_n12 @ 25% compression, seed 8).
                let num_sites = match &self.tasks[i].body {
                    TaskBody::Rz { prep_sites, .. } => prep_sites.len(),
                    _ => unreachable!("loop body is Rz-only"),
                };
                for si in 0..num_sites {
                    let s = match &self.tasks[i].body {
                        TaskBody::Rz { prep_sites, .. } => prep_sites[si].0,
                        _ => unreachable!("loop body is Rz-only"),
                    };
                    if !self.is_holding(TaskId(i as u32), s) {
                        self.ledger.update_angle(s, TaskId(i as u32), current);
                    }
                }
            }
        }
        stale.clear();
        self.scratch.stale = stale;
        // Reset the stall clock so the breaker does not spin.
        self.last_progress = self.clock;
    }

    // ------------------------------------------------------------------
    // Stall attribution
    // ------------------------------------------------------------------

    /// Samples stall attribution once per cycle tick: every live, runnable
    /// task that cannot make progress charges one cycle to the cause
    /// blocking it (ancilla contention, decoder backlog, route blocked, or
    /// class displacement). Derived purely from simulated state, so the
    /// counters are bit-identical with or without a recorder and for any
    /// thread count.
    fn sample_stalls(&mut self) {
        for i in 0..self.live_tasks.len() {
            let id = self.live_tasks[i];
            let task = &self.tasks[id.index()];
            if task.done {
                continue;
            }
            if !self.dag.preds(task.gate).all(|p| self.gate_done[p.index()]) {
                continue; // waiting on dependencies, not on resources
            }
            let cause = match &task.body {
                TaskBody::Cnot {
                    path,
                    rotating,
                    surgery_started,
                    ..
                } => {
                    if *rotating || *surgery_started {
                        None // executing
                    } else if path.is_empty() {
                        // No route could even be planned: every candidate
                        // channel was taken at planning time.
                        Some(StallCause::AncillaContention)
                    } else {
                        Some(StallCause::RouteBlocked)
                    }
                }
                TaskBody::Rz {
                    ladder,
                    injecting,
                    awaiting_decode,
                    pending_prep_decodes,
                    ..
                } => {
                    if ladder.is_complete() {
                        None // ladder finished, completion event in flight
                    } else if *awaiting_decode {
                        Some(StallCause::DecoderBacklog)
                    } else if *injecting {
                        None // executing
                    } else if *pending_prep_decodes > 0 {
                        Some(StallCause::DecoderBacklog)
                    } else if self.displaced_by_class.contains(id.0 as usize) {
                        Some(StallCause::ClassDisplacement)
                    } else {
                        Some(StallCause::AncillaContention)
                    }
                }
                // A Hadamard waits only on its own data qubit, never on
                // shared resources — not a stall in this taxonomy.
                TaskBody::Hadamard { .. } => None,
            };
            let Some(cause) = cause else { continue };
            match cause {
                StallCause::AncillaContention => self.counters.stall_ancilla_cycles += 1,
                StallCause::DecoderBacklog => self.counters.stall_decoder_cycles += 1,
                StallCause::RouteBlocked => self.counters.stall_route_cycles += 1,
                StallCause::ClassDisplacement => self.counters.stall_class_cycles += 1,
            }
            self.emit_with(|| TraceEvent::Stall {
                round: self.clock,
                task: id.0 as u64,
                cause,
            });
        }
    }

    /// Emits [`TraceEvent::AncillaState`] transitions for every ancilla
    /// whose occupancy changed since the last cycle tick (traced runs
    /// only). State is read at the deterministic tick point — fabric
    /// occupancy and ledger queue depth are pure schedule state — and
    /// ancillas are scanned in ascending order, so the emitted stream is
    /// identical at any `engine_threads`.
    fn sample_occupancy(&mut self) {
        let Some(rec) = self.recorder else { return };
        let round = self.clock;
        for a in 0..self.fabric.num_ancillas() as u32 {
            let busy = !self.fabric.ancilla_free(a, round);
            let depth = self.ledger.queue(a).len() as u32;
            let last = &mut self.traced_occupancy[a as usize];
            if *last != (depth, busy) {
                *last = (depth, busy);
                rec.record(TraceEvent::AncillaState {
                    round,
                    ancilla: a,
                    region: self.partition.region_of(a),
                    depth,
                    busy,
                });
            }
        }
    }

    /// Traces a decoder-window submission (traced runs only; the window's
    /// submission round is kept so retirement can report its stall).
    fn trace_window_enqueued(&mut self, window: WindowId, ready_at: u64) {
        if self.recorder.is_some() {
            self.traced_windows.insert(window, self.clock);
            self.emit_with(|| TraceEvent::WindowEnqueued {
                round: self.clock,
                window: window.0,
                ready_at,
            });
        }
    }

    /// Traces a decoder-window retirement with the rounds it spent in
    /// flight (traced runs only).
    fn trace_window_retired(&mut self, window: WindowId) {
        if self.recorder.is_some() {
            let submitted = self.traced_windows.remove(&window).unwrap_or(self.clock);
            self.emit_with(|| TraceEvent::WindowRetired {
                round: self.clock,
                window: window.0,
                stalled_rounds: self.clock - submitted,
            });
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::CycleTick => {
                let act = self.fabric.end_cycle_activity(self.clock);
                self.activity.record_cycle(act);
                self.sample_stalls();
                self.sample_occupancy();
                let cycle = self.clock / self.d as u64;
                let activity = &self.activity;
                self.mst
                    .on_cycle(cycle, |edges, out| activity.edge_weights_into(edges, out));
                if self.clock.saturating_sub(self.last_progress)
                    > STALL_BREAK_CYCLES * self.d as u64
                {
                    self.break_stall();
                }
                if let Some(probe) = self.cycle_probe {
                    probe(cycle);
                }
                if self.done_count < self.circuit.len() {
                    self.events.push(self.clock + self.d as u64, Ev::CycleTick);
                }
            }
            Ev::HDone { task } => {
                let gate = self.tasks[task.index()].gate;
                if let TaskBody::Hadamard { qubit, .. } = self.tasks[task.index()].body {
                    self.fabric.flip_orientation(qubit);
                }
                self.complete_task(task, gate);
            }
            Ev::PrepDone {
                ancilla,
                task,
                angle,
                epoch,
            } => {
                // Verification of the prepared state is itself a decoded
                // measurement when `decode_prep` is on: the state becomes
                // usable only once its one-cycle window is decoded.
                if self.decoder.decodes_prep() {
                    let (window, ready_at) = self.decoder.submit(ancilla, self.d, self.clock);
                    self.trace_window_enqueued(window, ready_at);
                    if ready_at > self.clock {
                        if let TaskBody::Rz {
                            pending_prep_decodes,
                            ..
                        } = &mut self.tasks[task.index()].body
                        {
                            *pending_prep_decodes += 1;
                        }
                        self.events.push(
                            ready_at,
                            Ev::PrepDecoded {
                                ancilla,
                                task,
                                angle,
                                epoch,
                                window,
                            },
                        );
                        return;
                    }
                    let cycles = self.decoder.retire(window, self.clock);
                    self.trace_window_retired(window);
                    self.decode_latency.record(cycles);
                }
                self.on_prep_done(ancilla, task, angle, epoch);
            }
            Ev::PrepDecoded {
                ancilla,
                task,
                angle,
                epoch,
                window,
            } => {
                // Retire unconditionally (backlog conservation), then let the
                // epoch check in `on_prep_done` drop cancelled preparations.
                let cycles = self.decoder.retire(window, self.clock);
                self.trace_window_retired(window);
                self.decode_latency.record(cycles);
                if let TaskBody::Rz {
                    pending_prep_decodes,
                    ..
                } = &mut self.tasks[task.index()].body
                {
                    *pending_prep_decodes = pending_prep_decodes.saturating_sub(1);
                }
                self.on_prep_done(ancilla, task, angle, epoch);
            }
            Ev::InjectDone {
                task,
                holder,
                rounds,
            } => self.on_inject_done(task, holder, rounds),
            Ev::DecodeDone {
                task,
                success,
                window,
            } => {
                let cycles = self.decoder.retire(window, self.clock);
                self.trace_window_retired(window);
                self.decode_latency.record(cycles);
                self.apply_inject_outcome(task, success);
            }
            Ev::RotationDone { task, qubit } => {
                self.fabric.flip_orientation(qubit);
                if let TaskBody::Cnot { rotating, .. } = &mut self.tasks[task.index()].body {
                    *rotating = false;
                }
            }
            Ev::SurgeryDone { task } => {
                let gate = self.tasks[task.index()].gate;
                if let TaskBody::Cnot { path, .. } = &mut self.tasks[task.index()].body {
                    let path = std::mem::take(path);
                    for &a in &path {
                        self.ledger.remove_task(a, task);
                    }
                    self.pools.paths.put(path);
                }
                let latency =
                    (self.clock - self.tasks[task.index()].sched_round).div_ceil(self.d as u64);
                self.cnot_latency.record(latency);
                self.complete_task(task, gate);
            }
        }
    }

    fn on_prep_done(&mut self, a: AncillaIndex, task: TaskId, angle: Angle, epoch: u64) {
        if self.prep_epoch[a as usize] != epoch {
            return; // cancelled or restarted
        }
        self.prepping[a as usize] = None;
        self.counters.preps_succeeded += 1;
        self.ledger.set_top_status(a, EntryStatus::DonePreparing);
        let TaskBody::Rz {
            ref ladder,
            ref prep_sites,
            ..
        } = self.tasks[task.index()].body
        else {
            return;
        };
        let current = ladder.current_angle();
        let next = ladder.next_correction_angle();
        let fresh_current = angle == current;
        let num_sites = prep_sites.len();
        if let TaskBody::Rz { holders, .. } = &mut self.tasks[task.index()].body {
            holders.push((a, angle));
        }
        if fresh_current && !next.is_clifford() {
            // First success for the needed angle: rewrite every sibling prep
            // entry in place to the correction state |m2θ⟩ (§4.1 / Fig 1e).
            // Indexed re-fetch: neither `is_holding` nor `update_angle`
            // mutates the task body, so the site list is stable.
            for si in 0..num_sites {
                let s = match &self.tasks[task.index()].body {
                    TaskBody::Rz { prep_sites, .. } => prep_sites[si].0,
                    _ => unreachable!("task body cannot change kind"),
                };
                if s == a || self.is_holding(task, s) {
                    continue;
                }
                self.ledger.update_angle(s, task, next);
            }
        }
        self.try_start_injection(task);
    }

    /// The injection's measurements are in: the physical state is consumed
    /// immediately, but the *outcome* must pass through the classical
    /// decoder before the scheduler may act on it (feed-forward
    /// back-pressure). Under the ideal decoder the result is visible this
    /// round and the original behaviour is reproduced exactly.
    fn on_inject_done(&mut self, task: TaskId, holder: AncillaIndex, rounds: u32) {
        let success = self.rng.gen_bool(0.5);
        if !success {
            self.counters.injection_failures += 1;
        }
        // The injected state is consumed either way — but the ancilla's hold
        // must survive if eager preparation re-used it mid-injection (a new
        // prep is running on it, or a completed one put it back in
        // `holders`); releasing then would let other operations occupy the
        // ancilla while the task still counts on its state, double-booking
        // it later.
        let reused = self.is_holding(task, holder) || self.prepping[holder as usize].is_some();
        if !reused {
            self.fabric.release_ancilla(holder, self.clock);
        }
        // The holder's injection occupancy expires now (whether or not the
        // hold survives) — re-examine it on the next dispatch pass.
        self.ledger.mark_dirty(holder);
        let (window, ready_at) = self.decoder.submit(holder, rounds.max(1), self.clock);
        self.trace_window_enqueued(window, ready_at);
        if ready_at > self.clock {
            if let TaskBody::Rz {
                awaiting_decode, ..
            } = &mut self.tasks[task.index()].body
            {
                *awaiting_decode = true;
            }
            self.events.push(
                ready_at,
                Ev::DecodeDone {
                    task,
                    success,
                    window,
                },
            );
            return;
        }
        let cycles = self.decoder.retire(window, self.clock);
        self.trace_window_retired(window);
        self.decode_latency.record(cycles);
        self.apply_inject_outcome(task, success);
    }

    /// Applies a decoded injection outcome: advance the ladder and rewrite
    /// sibling queue entries (`AncillaQueue::update_angle`) to the next
    /// correction angle.
    fn apply_inject_outcome(&mut self, task: TaskId, success: bool) {
        let gate = self.tasks[task.index()].gate;
        let step;
        {
            let TaskBody::Rz {
                ladder,
                injecting,
                awaiting_decode,
                ..
            } = &mut self.tasks[task.index()].body
            else {
                return;
            };
            *injecting = false;
            *awaiting_decode = false;
            step = ladder.record_outcome(success);
        }
        match step {
            LadderStep::Done => {
                self.complete_rz(task, gate);
            }
            LadderStep::NeedCorrection(next) => {
                // Discard holders of stale angles; retarget every non-holding
                // site (including the consumed holder) to the new angle.
                let mut stale = std::mem::take(&mut self.scratch.stale);
                stale.clear();
                let num_sites = match &self.tasks[task.index()].body {
                    TaskBody::Rz {
                        prep_sites,
                        holders,
                        ..
                    } => {
                        stale.extend(
                            holders
                                .iter()
                                .filter(|&&(_, ang)| ang != next)
                                .map(|&(a, _)| a),
                        );
                        prep_sites.len()
                    }
                    _ => unreachable!(),
                };
                for &a in &stale {
                    self.fabric.release_ancilla(a, self.clock);
                    self.counters.states_discarded += 1;
                }
                stale.clear();
                self.scratch.stale = stale;
                if let TaskBody::Rz { holders, .. } = &mut self.tasks[task.index()].body {
                    holders.retain(|&(_, ang)| ang == next);
                }
                // Indexed re-fetch: nothing in this loop mutates the task
                // body, so the site list is stable across iterations.
                for si in 0..num_sites {
                    let s = match &self.tasks[task.index()].body {
                        TaskBody::Rz { prep_sites, .. } => prep_sites[si].0,
                        _ => unreachable!("task body cannot change kind"),
                    };
                    if !self.is_holding(task, s) {
                        self.ledger.update_angle(s, task, next);
                        if self.ledger.queue(s).top().is_some_and(|e| {
                            e.task == task && e.status == EntryStatus::DonePreparing
                        }) {
                            self.ledger.set_top_status(s, EntryStatus::Ready);
                        }
                    }
                }
                self.try_start_injection(task);
            }
        }
    }

    fn complete_rz(&mut self, task: TaskId, gate: GateId) {
        // The task is finished: take its site lists outright (nothing below
        // reads them back through the body) and recycle the buffers.
        let (sites, helpers, holders) = match &mut self.tasks[task.index()].body {
            TaskBody::Rz {
                prep_sites,
                helper_sites,
                holders,
                ..
            } => (
                std::mem::take(prep_sites),
                std::mem::take(helper_sites),
                std::mem::take(holders),
            ),
            _ => unreachable!(),
        };
        for &(a, _) in &holders {
            self.fabric.release_ancilla(a, self.clock);
            self.counters.states_discarded += 1;
        }
        for &(a, _) in &sites {
            self.cancel_prep_for(a, task);
            self.ledger.remove_task(a, task);
        }
        for &h in &helpers {
            self.ledger.remove_task(h, task);
        }
        self.pools.sites.put(sites);
        self.pools.helpers.put(helpers);
        self.pools.holders.put(holders);
        let latency = (self.clock - self.tasks[task.index()].sched_round).div_ceil(self.d as u64);
        self.rz_latency.record(latency);
        self.complete_task(task, gate);
    }

    fn complete_task(&mut self, task: TaskId, gate: GateId) {
        self.displaced_by_class.remove(task.0 as usize);
        self.ledger.recycle_task(task);
        self.tasks[task.index()].done = true;
        self.gate_done[gate.index()] = true;
        self.done_count += 1;
        self.gates_executed += 1;
        self.last_completion = self.last_completion.max(self.clock);
        self.last_progress = self.clock;
        for q in self.circuit.gate(gate).qubits() {
            self.sched_worklist.push(q);
        }
        for s in self.dag.succs(gate) {
            for q in self.circuit.gate(*s).qubits() {
                self.sched_worklist.push(q);
            }
        }
    }
}
