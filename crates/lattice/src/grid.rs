//! The rectangular tile grid backing a surface-code fabric.

use crate::{Corner, Side, TileId, TileKind};
use rescq_circuit::QubitId;

/// A `width × height` grid of surface-code tiles, row-major.
///
/// # Example
///
/// ```
/// use rescq_lattice::{Grid, Side, TileKind};
///
/// let mut g = Grid::filled(3, 2, TileKind::Ancilla);
/// let t = g.tile_at(1, 0);
/// assert_eq!(g.neighbor(t, Side::East), Some(g.tile_at(2, 0)));
/// assert_eq!(g.neighbor(g.tile_at(0, 0), Side::West), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: u32,
    height: u32,
    tiles: Vec<TileKind>,
}

impl Grid {
    /// Creates a grid with every tile set to `kind`.
    pub fn filled(width: u32, height: u32, kind: TileKind) -> Self {
        Grid {
            width,
            height,
            tiles: vec![kind; (width * height) as usize],
        }
    }

    /// Grid width in tiles.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in tiles.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the grid has zero tiles.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tile id at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn tile_at(&self, x: u32, y: u32) -> TileId {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        TileId(y * self.width + x)
    }

    /// The `(x, y)` coordinates of a tile.
    pub fn coords(&self, t: TileId) -> (u32, u32) {
        (t.0 % self.width, t.0 / self.width)
    }

    /// The kind of tile `t`.
    pub fn kind(&self, t: TileId) -> TileKind {
        self.tiles[t.index()]
    }

    /// Sets the kind of tile `t`.
    pub fn set_kind(&mut self, t: TileId, kind: TileKind) {
        self.tiles[t.index()] = kind;
    }

    /// The neighbour across `side`, if inside the grid.
    pub fn neighbor(&self, t: TileId, side: Side) -> Option<TileId> {
        let (x, y) = self.coords(t);
        let (dx, dy) = side.delta();
        self.offset(x, y, dx, dy)
    }

    /// The diagonal neighbour at `corner`, if inside the grid.
    pub fn diag_neighbor(&self, t: TileId, corner: Corner) -> Option<TileId> {
        let (x, y) = self.coords(t);
        let (dx, dy) = corner.delta();
        self.offset(x, y, dx, dy)
    }

    fn offset(&self, x: u32, y: u32, dx: i32, dy: i32) -> Option<TileId> {
        let nx = x as i64 + dx as i64;
        let ny = y as i64 + dy as i64;
        if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
            None
        } else {
            Some(self.tile_at(nx as u32, ny as u32))
        }
    }

    /// The four edge-adjacent neighbours (fewer at borders).
    pub fn neighbors(&self, t: TileId) -> impl Iterator<Item = TileId> + '_ {
        Side::ALL
            .into_iter()
            .filter_map(move |s| self.neighbor(t, s))
    }

    /// Edge-adjacent *ancilla* neighbours.
    pub fn ancilla_neighbors(&self, t: TileId) -> impl Iterator<Item = TileId> + '_ {
        self.neighbors(t).filter(|&n| self.kind(n).is_ancilla())
    }

    /// Iterator over all tile ids.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.tiles.len() as u32).map(TileId)
    }

    /// Iterator over ancilla tile ids.
    pub fn ancilla_tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        self.tiles().filter(|&t| self.kind(t).is_ancilla())
    }

    /// Iterator over `(TileId, QubitId)` for data tiles.
    pub fn data_tiles(&self) -> impl Iterator<Item = (TileId, QubitId)> + '_ {
        self.tiles().filter_map(|t| match self.kind(t) {
            TileKind::Data(q) => Some((t, q)),
            _ => None,
        })
    }

    /// Manhattan distance between two tiles.
    pub fn manhattan(&self, a: TileId, b: TileId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The side of `a` that faces `b`, when edge-adjacent.
    pub fn side_towards(&self, a: TileId, b: TileId) -> Option<Side> {
        Side::ALL
            .into_iter()
            .find(|&s| self.neighbor(a, s) == Some(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = Grid::filled(4, 3, TileKind::Ancilla);
        for t in g.tiles() {
            let (x, y) = g.coords(t);
            assert_eq!(g.tile_at(x, y), t);
        }
    }

    #[test]
    fn border_neighbors_are_none() {
        let g = Grid::filled(2, 2, TileKind::Ancilla);
        let tl = g.tile_at(0, 0);
        assert_eq!(g.neighbor(tl, Side::North), None);
        assert_eq!(g.neighbor(tl, Side::West), None);
        assert!(g.neighbor(tl, Side::East).is_some());
        assert_eq!(g.neighbors(tl).count(), 2);
        assert_eq!(
            g.diag_neighbor(tl, Corner::SouthEast),
            Some(g.tile_at(1, 1))
        );
        assert_eq!(g.diag_neighbor(tl, Corner::NorthWest), None);
    }

    #[test]
    fn kinds_and_filters() {
        let mut g = Grid::filled(3, 1, TileKind::Ancilla);
        g.set_kind(g.tile_at(1, 0), TileKind::Data(QubitId(7)));
        g.set_kind(g.tile_at(2, 0), TileKind::Void);
        assert_eq!(g.ancilla_tiles().count(), 1);
        let data: Vec<_> = g.data_tiles().collect();
        assert_eq!(data, vec![(g.tile_at(1, 0), QubitId(7))]);
        assert_eq!(g.ancilla_neighbors(g.tile_at(1, 0)).count(), 1);
    }

    #[test]
    fn manhattan_and_side_towards() {
        let g = Grid::filled(5, 5, TileKind::Ancilla);
        let a = g.tile_at(1, 1);
        let b = g.tile_at(4, 3);
        assert_eq!(g.manhattan(a, b), 5);
        assert_eq!(g.side_towards(a, g.tile_at(1, 2)), Some(Side::South));
        assert_eq!(g.side_towards(a, b), None);
    }
}
